"""Seeded random graph generators.

All generators take an explicit ``seed`` and are deterministic given it.
Vertex ids are consecutive integers starting at 0 (like SNAP exports of the
paper's datasets).
"""

import bisect
import itertools

from repro.common.errors import GraphError
from repro.common.rng import derive_rng
from repro.graph.graph import Graph


class _WeightedSampler:
    """Samples indices proportionally to fixed weights in O(log n)."""

    def __init__(self, weights):
        self._cumulative = list(itertools.accumulate(weights))
        if not self._cumulative or self._cumulative[-1] <= 0:
            raise GraphError("weighted sampler needs positive total weight")

    def sample(self, rng):
        point = rng.random() * self._cumulative[-1]
        return bisect.bisect_right(self._cumulative, point)


def _zipf_weights(num_vertices, exponent):
    """Chung–Lu style expected-degree weights with a power-law tail."""
    return [(rank + 1) ** (-1.0 / (exponent - 1.0)) for rank in range(num_vertices)]


def power_law_graph(
    num_vertices,
    mean_out_degree,
    exponent=2.3,
    seed=0,
    directed=True,
    id_offset=0,
):
    """Web-like graph with heavy-tailed in-degrees (sk-2005 / web-BS stand-in).

    Each vertex draws its out-degree around ``mean_out_degree`` (geometric-ish
    spread) and picks targets with probability proportional to a Zipf weight
    of exponent ``exponent`` — high-weight vertices become hubs, giving the
    skewed in-degree distribution real web crawls show.
    """
    if num_vertices <= 1:
        raise GraphError("power_law_graph needs at least 2 vertices")
    rng = derive_rng(seed, "power_law", num_vertices, mean_out_degree)
    sampler = _WeightedSampler(_zipf_weights(num_vertices, exponent))
    graph = Graph(directed=directed)
    for vertex in range(num_vertices):
        graph.add_vertex(vertex + id_offset)
    for source in range(num_vertices):
        out_degree = min(num_vertices - 1, _draw_degree(rng, mean_out_degree))
        chosen = set()
        attempts = 0
        while len(chosen) < out_degree and attempts < out_degree * 20:
            target = sampler.sample(rng)
            attempts += 1
            if target != source:
                chosen.add(target)
        for target in sorted(chosen):
            if directed:
                graph.add_edge(source + id_offset, target + id_offset)
            else:
                graph.add_undirected_edge(source + id_offset, target + id_offset)
    return graph


def _draw_degree(rng, mean):
    """Draw a non-negative degree with the given mean and geometric spread."""
    if mean <= 0:
        return 0
    # Geometric distribution with success probability 1/(mean+1) has mean `mean`.
    p = 1.0 / (mean + 1.0)
    degree = 0
    while rng.random() > p:
        degree += 1
        if degree > mean * 50:
            break
    return degree


def trust_network(num_vertices, mean_degree=7, reciprocity=0.4, seed=0):
    """Directed who-trusts-whom graph (soc-Epinions stand-in).

    Trust networks show moderate degree skew plus substantial edge
    reciprocity; each generated edge is mirrored with probability
    ``reciprocity``.
    """
    rng = derive_rng(seed, "trust", num_vertices, mean_degree)
    graph = power_law_graph(
        num_vertices, mean_degree, exponent=2.1, seed=derive_seed_for(seed, "base")
    )
    for source, target, _value in list(graph.edges()):
        if not graph.has_edge(target, source) and rng.random() < reciprocity:
            graph.add_edge(target, source)
    return graph


def follower_network(num_vertices, mean_degree=12, seed=0):
    """Directed follower graph with extreme hubs (twitter stand-in)."""
    return power_law_graph(
        num_vertices,
        mean_degree,
        exponent=1.9,
        seed=derive_seed_for(seed, "follower"),
    )


def derive_seed_for(seed, label):
    """Stable child seed so composed generators stay independent."""
    from repro.common.rng import derive_seed

    return derive_seed(seed, "datasets", label)


def bipartite_regular(side_size, degree=3, seed=0):
    """Exactly ``degree``-regular bipartite graph (bipartite-* stand-in).

    Left side ids are ``0 .. side_size-1``, right side ids are
    ``side_size .. 2*side_size-1``. Every vertex on both sides has exactly
    ``degree`` neighbors; edges are undirected (symmetric directed pairs),
    matching the paper's "(u)" encoding. A seeded permutation of the right
    side randomizes which vertices pair up while preserving regularity.
    """
    if degree >= side_size:
        raise GraphError(
            f"degree {degree} must be below side size {side_size} "
            f"for a simple bipartite graph"
        )
    rng = derive_rng(seed, "bipartite", side_size, degree)
    permutation = list(range(side_size))
    rng.shuffle(permutation)
    graph = Graph(directed=False)
    for left in range(side_size):
        for offset in range(degree):
            right = side_size + permutation[(left + offset) % side_size]
            graph.add_undirected_edge(left, right)
    return graph


def erdos_renyi(num_vertices, edge_probability, seed=0, directed=True):
    """Uniform random graph, mostly for tests and property checks."""
    rng = derive_rng(seed, "gnp", num_vertices, edge_probability)
    graph = Graph(directed=directed)
    for vertex in range(num_vertices):
        graph.add_vertex(vertex)
    for source in range(num_vertices):
        for target in range(num_vertices):
            if source != target and rng.random() < edge_probability:
                if directed:
                    graph.add_edge(source, target)
                elif source < target:
                    graph.add_undirected_edge(source, target)
    return graph


def random_symmetric_weights(graph, low=1.0, high=100.0, seed=0, precision=2):
    """Assign each adjacency pair one random weight, symmetric by construction.

    Returns a new graph; the input is untouched. This produces the *correct*
    weighted-undirected encoding that MWM expects.
    """
    rng = derive_rng(seed, "weights", low, high)
    weights = {}
    result = Graph(directed=graph.directed)
    for vertex_id in graph.vertex_ids():
        result.add_vertex(vertex_id, graph.vertex_value(vertex_id))
    for source, target, _value in graph.edges():
        key = (source, target) if repr(source) <= repr(target) else (target, source)
        if key not in weights:
            weights[key] = round(rng.uniform(low, high), precision)
        result.add_edge(source, target, weights[key])
    return result


def corrupt_asymmetric_weights(graph, fraction=0.01, seed=0):
    """Inject the paper's Scenario 4.3 input bug.

    A ``fraction`` of adjacency pairs get their *reverse* edge weight
    replaced by a strictly smaller value, so the two directions disagree —
    and, crucially for reproducing the scenario, one endpoint of a heavy
    edge no longer sees it as heavy. That breaks the mutual-preference
    guarantee maximum-weight matching relies on and lets preference cycles
    (and hence non-termination) form. Returns ``(corrupted_graph,
    corrupted_pairs)``.
    """
    rng = derive_rng(seed, "corrupt", fraction)
    result = graph.copy()
    corrupted = []
    seen = set()
    for source, target, value in graph.edges():
        key = (source, target) if repr(source) <= repr(target) else (target, source)
        if key in seen or not graph.has_edge(target, source):
            continue
        seen.add(key)
        if value is not None and rng.random() < fraction:
            shrunken = round(value * rng.uniform(0.05, 0.6), 4)
            if shrunken == value:
                shrunken = value / 2.0
            result.set_edge_value(target, source, shrunken)
            corrupted.append((source, target))
    return result, corrupted
