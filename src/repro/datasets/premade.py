"""Premade small graphs (the Graft GUI's offline-mode menu).

Section 3.4: "Users can also select premade graphs from a menu." These are
the canonical tiny graphs users pick when constructing end-to-end tests.
"""

from repro.common.errors import GraphError
from repro.graph.builder import GraphBuilder


def _triangle():
    return GraphBuilder(directed=False).cycle(0, 1, 2).build()


def _path(n=5):
    return GraphBuilder(directed=False).path(*range(n)).build()


def _cycle(n=6):
    return GraphBuilder(directed=False).cycle(*range(n)).build()


def _star(n=6):
    builder = GraphBuilder(directed=False)
    for leaf in range(1, n):
        builder.edge(0, leaf)
    return builder.build()


def _complete(n=5):
    return GraphBuilder(directed=False).clique(*range(n)).build()


def _binary_tree(depth=3):
    builder = GraphBuilder(directed=False)
    last = 2 ** (depth + 1) - 1
    for child in range(1, last):
        builder.edge((child - 1) // 2, child)
    return builder.build()


def _two_triangles():
    """Two disconnected triangles — handy for connected-components tests."""
    return GraphBuilder(directed=False).cycle(0, 1, 2).cycle(3, 4, 5).build()


def _petersen():
    builder = GraphBuilder(directed=False).cycle(0, 1, 2, 3, 4)
    for outer in range(5):
        builder.edge(outer, outer + 5)
    for inner in range(5):
        builder.edge(5 + inner, 5 + (inner + 2) % 5)
    return builder.build()


def _weighted_square():
    """4-cycle with distinct symmetric weights (a tiny MWM fixture)."""
    return (
        GraphBuilder(directed=False)
        .edge(0, 1, value=4.0)
        .edge(1, 2, value=1.0)
        .edge(2, 3, value=5.0)
        .edge(3, 0, value=2.0)
        .build()
    )


_MENU = {
    "triangle": _triangle,
    "path5": _path,
    "cycle6": _cycle,
    "star6": _star,
    "complete5": _complete,
    "binary-tree3": _binary_tree,
    "two-triangles": _two_triangles,
    "petersen": _petersen,
    "weighted-square": _weighted_square,
}


def premade_menu():
    """Names of the premade graphs, as the GUI menu lists them."""
    return sorted(_MENU)


def premade_graph(name):
    """Build a premade graph by menu name.

    >>> premade_graph("triangle").num_vertices
    3
    """
    if name not in _MENU:
        raise GraphError(
            f"no premade graph {name!r}; menu: {', '.join(premade_menu())}"
        )
    return _MENU[name]()
