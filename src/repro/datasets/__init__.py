"""Synthetic dataset generators standing in for the paper's graphs.

The paper runs its demo on web-BS, soc-Epinions, and bipartite-1M-3M
(Table 1) and its performance study on sk-2005, twitter, and bipartite-2B-6B
(Table 2). Those graphs are either large downloads or (at 2B vertices) far
beyond a laptop. The generators here reproduce their structural character —
heavy-tailed degrees for the web/social graphs, exact 3-regularity for the
bipartite graphs, directed vs. undirected encodings — at laptop scale, with
every generator fully determined by a seed.
"""

from repro.datasets.generators import (
    bipartite_regular,
    corrupt_asymmetric_weights,
    erdos_renyi,
    follower_network,
    power_law_graph,
    random_symmetric_weights,
    trust_network,
)
from repro.datasets.premade import premade_graph, premade_menu
from repro.datasets.registry import (
    DEMO_DATASETS,
    PERF_DATASETS,
    DatasetSpec,
    dataset_names,
    get_spec,
    load_dataset,
    make,
)
from repro.datasets.streaming import (
    VertexStream,
    stream_bipartite_regular,
    stream_power_law,
)

__all__ = [
    "bipartite_regular",
    "corrupt_asymmetric_weights",
    "erdos_renyi",
    "follower_network",
    "power_law_graph",
    "random_symmetric_weights",
    "trust_network",
    "premade_graph",
    "premade_menu",
    "DEMO_DATASETS",
    "PERF_DATASETS",
    "DatasetSpec",
    "dataset_names",
    "get_spec",
    "load_dataset",
    "make",
    "VertexStream",
    "stream_bipartite_regular",
    "stream_power_law",
]
