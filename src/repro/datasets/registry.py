"""Registry of the paper's datasets with laptop-scale stand-ins.

Each :class:`DatasetSpec` records what the paper used (name, published
vertex/edge counts, description — the literal rows of Tables 1 and 2) and
how this repository regenerates a structurally comparable graph at a scale
a single process handles in seconds. ``load_dataset(name)`` returns the
stand-in graph; the benchmark harness prints both the paper row and the
stand-in row side by side.
"""

from dataclasses import dataclass

from repro.datasets.generators import (
    bipartite_regular,
    derive_seed_for,
    follower_network,
    power_law_graph,
    trust_network,
)
from repro.datasets.streaming import (
    stream_bipartite_regular,
    stream_power_law,
)


@dataclass(frozen=True)
class DatasetSpec:
    """One row of the paper's dataset tables plus its stand-in generator."""

    name: str
    paper_vertices: str
    paper_edges: str
    description: str
    table: str
    default_scale_vertices: int
    #: Vertex count used at ``scale="full"`` — the paper's published size,
    #: capped where the original is beyond any single machine (the 2B/51M/42M
    #: graphs run at 1M-2M, which still exercises the out-of-core path).
    full_scale_vertices: int = 0

    def generate(self, seed=0, num_vertices=None):
        """Build the stand-in graph at ``num_vertices`` (default scaled size)."""
        size = num_vertices or self.default_scale_vertices
        return _GENERATORS[self.name](size, seed)

    def stream(self, seed=0, num_vertices=None):
        """Build the streaming (:class:`VertexStream`) twin, or None.

        Returns None when this dataset has no streaming generator
        (``make`` then falls back to materializing).
        """
        streamer = _STREAMERS.get(self.name)
        if streamer is None:
            return None
        size = num_vertices or self.full_scale_vertices or \
            self.default_scale_vertices
        return streamer(size, seed)


def _gen_web_bs(num_vertices, seed):
    return power_law_graph(num_vertices, mean_out_degree=11, exponent=2.2, seed=seed)


def _gen_epinions(num_vertices, seed):
    return trust_network(num_vertices, mean_degree=7, reciprocity=0.4, seed=seed)


def _gen_bipartite(num_vertices, seed):
    return bipartite_regular(max(4, num_vertices // 2), degree=3, seed=seed)


def _gen_sk2005(num_vertices, seed):
    return power_law_graph(num_vertices, mean_out_degree=8, exponent=2.1, seed=seed)


def _gen_twitter(num_vertices, seed):
    return follower_network(num_vertices, mean_degree=10, seed=seed)


_GENERATORS = {
    "web-BS": _gen_web_bs,
    "soc-Epinions": _gen_epinions,
    "bipartite-1M-3M": _gen_bipartite,
    "sk-2005": _gen_sk2005,
    "twitter": _gen_twitter,
    "bipartite-2B-6B": _gen_bipartite,
}


def _stream_web_bs(num_vertices, seed):
    return stream_power_law(num_vertices, 11, exponent=2.2, seed=seed)


def _stream_bipartite(num_vertices, seed):
    return stream_bipartite_regular(max(4, num_vertices // 2), degree=3,
                                    seed=seed)


def _stream_sk2005(num_vertices, seed):
    return stream_power_law(num_vertices, 8, exponent=2.1, seed=seed)


def _stream_twitter(num_vertices, seed):
    # follower_network(n, 10, seed) == power_law_graph(n, 10, exponent=1.9,
    # seed=derive_seed_for(seed, "follower")); replay the same seed wiring.
    return stream_power_law(
        num_vertices, 10, exponent=1.9,
        seed=derive_seed_for(seed, "follower"),
    )


#: Streaming twins of ``_GENERATORS`` — present for the datasets whose
#: generators admit a one-vertex-at-a-time replay. soc-Epinions is absent:
#: its reciprocity pass needs reverse edges known before their source
#: streams by, so it always materializes (at 76K vertices that is fine).
_STREAMERS = {
    "web-BS": _stream_web_bs,
    "bipartite-1M-3M": _stream_bipartite,
    "sk-2005": _stream_sk2005,
    "twitter": _stream_twitter,
    "bipartite-2B-6B": _stream_bipartite,
}

#: Table 1 of the paper: datasets used in the interactive demo scenarios.
DEMO_DATASETS = (
    DatasetSpec(
        name="web-BS",
        paper_vertices="685K",
        paper_edges="7.6M (d), 12.3M (u)",
        description="A web graph from 2002",
        table="Table 1",
        default_scale_vertices=4000,
        full_scale_vertices=685_000,
    ),
    DatasetSpec(
        name="soc-Epinions",
        paper_vertices="76K",
        paper_edges="500K (d), 780K (u)",
        description='Epinions.com "who trusts whom" network',
        table="Table 1",
        default_scale_vertices=3000,
        full_scale_vertices=76_000,
    ),
    DatasetSpec(
        name="bipartite-1M-3M",
        paper_vertices="1M",
        paper_edges="6M (u)",
        description="A 3-regular bipartite graph",
        table="Table 1",
        default_scale_vertices=4000,
        full_scale_vertices=1_000_000,
    ),
)

#: Table 2 of the paper: datasets used in the performance experiments.
PERF_DATASETS = (
    DatasetSpec(
        name="sk-2005",
        paper_vertices="51M",
        paper_edges="1.9B (d), 3.5B (u)",
        description="Web graph of the .sk domain from 2005",
        table="Table 2",
        default_scale_vertices=8000,
        full_scale_vertices=1_000_000,
    ),
    DatasetSpec(
        name="twitter",
        paper_vertices="42M",
        paper_edges="1.5B (d), 2.7B (u)",
        description='Twitter "who is followed by who" network',
        table="Table 2",
        default_scale_vertices=8000,
        full_scale_vertices=1_000_000,
    ),
    DatasetSpec(
        name="bipartite-2B-6B",
        paper_vertices="2B",
        paper_edges="12B (u)",
        description="A 3-regular bipartite graph",
        table="Table 2",
        default_scale_vertices=8000,
        full_scale_vertices=2_000_000,
    ),
)

_ALL = {spec.name: spec for spec in DEMO_DATASETS + PERF_DATASETS}


def dataset_names():
    """Names of every registered dataset."""
    return sorted(_ALL)


def get_spec(name):
    """Look up a :class:`DatasetSpec` by the paper's dataset name."""
    if name not in _ALL:
        raise KeyError(
            f"unknown dataset {name!r}; known: {', '.join(dataset_names())}"
        )
    return _ALL[name]


def load_dataset(name, seed=0, num_vertices=None):
    """Generate the stand-in graph for a paper dataset.

    >>> g = load_dataset("bipartite-1M-3M", num_vertices=20)
    >>> all(g.out_degree(v) == 3 for v in g.vertex_ids())
    True
    """
    return get_spec(name).generate(seed=seed, num_vertices=num_vertices)


def make(name, scale="demo", seed=0, num_vertices=None):
    """Build a dataset at a named scale.

    ``scale="demo"`` returns the in-memory :class:`~repro.graph.Graph`
    stand-in at ``default_scale_vertices`` (what ``load_dataset`` always
    did). ``scale="full"`` builds at ``full_scale_vertices`` and returns a
    streaming :class:`~repro.datasets.streaming.VertexStream` when the
    dataset has one — the engine's loader consumes it directly into the
    partitioned spill store, so the graph never materializes. A full-scale
    dataset without a streamer (soc-Epinions) materializes normally.

    ``num_vertices`` overrides the scale's size either way.
    """
    if scale not in ("demo", "full"):
        raise ValueError(
            f"unknown scale {scale!r}; expected 'demo' or 'full'"
        )
    spec = get_spec(name)
    if scale == "demo":
        return spec.generate(seed=seed, num_vertices=num_vertices)
    stream = spec.stream(seed=seed, num_vertices=num_vertices)
    if stream is not None:
        return stream
    size = num_vertices or spec.full_scale_vertices or \
        spec.default_scale_vertices
    return spec.generate(seed=seed, num_vertices=size)
