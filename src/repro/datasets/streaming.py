"""Streaming dataset generation: graphs that never become one big dict.

A :class:`VertexStream` is the streaming twin of a generated
:class:`~repro.graph.Graph`: it knows its shape (name, vertex count, an
edge estimate, the id range) and can *iterate* ``(vertex_id, value,
edge_map)`` triples in id order, one vertex's adjacency at a time. The
engine's loader consumes ``iter_vertices`` directly into the partitioned
spill store, so a ≥1M-vertex registry dataset materializes at full scale
without the whole graph ever being resident — peak build memory is one
page-segment buffer.

The streamers replicate their dict-building generators *exactly*:
:func:`stream_bipartite_regular` consumes the same seeded permutation as
:func:`~repro.datasets.generators.bipartite_regular`, and
:func:`stream_power_law` replays
:func:`~repro.datasets.generators.power_law_graph`'s RNG draw-for-draw —
``stream.materialize()`` equals the generator's graph, which the unit
tests assert. The one freedom taken is iteration order (ids ascending,
where a ``Graph`` yields vertices in edge-insertion order); graph
equality and canonical trace digests are insensitive to it.
"""

from repro.common.errors import GraphError
from repro.common.rng import derive_rng
from repro.graph.graph import Graph


class VertexStream:
    """A lazily generated graph: shape up front, adjacency on demand.

    ``factory`` is a zero-argument callable returning a fresh iterator of
    ``(vertex_id, value, edge_map)`` triples; every call to
    :meth:`iter_vertices` re-generates the stream from the seed, so the
    stream is reusable (load + later verification passes).
    """

    def __init__(self, name, num_vertices, num_edges, factory,
                 directed=True, id_range=None):
        self.name = name
        self.num_vertices = num_vertices
        #: Directed adjacency-slot count (estimate for random generators;
        #: exact for regular ones). The engine reports live counts from
        #: its own store — this one feeds sizing decisions like
        #: ``store="auto"`` under a memory ceiling.
        self.num_edges = num_edges
        self.directed = directed
        self._factory = factory
        self._id_range = (
            id_range if id_range is not None else range(num_vertices)
        )

    def iter_vertices(self):
        """Yield ``(vertex_id, value, edge_map)`` in ascending id order."""
        return self._factory()

    def iter_edges(self):
        """Yield ``(source, target, value)`` for every adjacency slot."""
        for vertex_id, _value, edge_map in self.iter_vertices():
            for target, edge_value in edge_map.items():
                yield vertex_id, target, edge_value

    def vertex_ids(self):
        return iter(self._id_range)

    def has_vertex(self, vertex_id):
        return vertex_id in self._id_range

    def neighbors(self, vertex_id):
        """Outgoing neighbor ids of one vertex.

        Costs a stream scan (there is no resident adjacency to index
        into); callers wanting many adjacencies should iterate
        :meth:`iter_vertices` themselves.
        """
        for candidate, _value, edge_map in self.iter_vertices():
            if candidate == vertex_id:
                return list(edge_map)
        return []

    def materialize(self):
        """Build the equivalent :class:`~repro.graph.Graph` (tests, demos)."""
        graph = Graph(directed=self.directed)
        for vertex_id, value, edge_map in self.iter_vertices():
            graph.add_vertex(vertex_id, value)
            for target, edge_value in edge_map.items():
                graph.add_edge(vertex_id, target, edge_value)
        return graph

    def __repr__(self):
        kind = "directed" if self.directed else "undirected"
        return (
            f"<VertexStream {self.name!r}: {self.num_vertices} vertices, "
            f"~{self.num_edges} {kind} edges>"
        )


def stream_bipartite_regular(side_size, degree=3, seed=0):
    """Streaming twin of :func:`~repro.datasets.generators.bipartite_regular`.

    Same seeded permutation, same edges. A left vertex ``L`` lists its
    rights in offset order (as the generator inserted them); a right
    vertex ``side + r`` lists its lefts ascending (the order the
    generator's left-major loop reached them).
    """
    if degree >= side_size:
        raise GraphError(
            f"degree {degree} must be below side size {side_size} "
            f"for a simple bipartite graph"
        )

    def generate():
        rng = derive_rng(seed, "bipartite", side_size, degree)
        permutation = list(range(side_size))
        rng.shuffle(permutation)
        inverse = [0] * side_size
        for index, value in enumerate(permutation):
            inverse[value] = index
        for left in range(side_size):
            yield left, None, {
                side_size + permutation[(left + offset) % side_size]: None
                for offset in range(degree)
            }
        for right in range(side_size):
            lefts = sorted(
                (inverse[right] - offset) % side_size
                for offset in range(degree)
            )
            yield side_size + right, None, {left: None for left in lefts}

    return VertexStream(
        name=f"bipartite-{side_size}x{degree}",
        num_vertices=2 * side_size,
        num_edges=2 * side_size * degree,
        factory=generate,
        directed=False,
    )


def stream_power_law(num_vertices, mean_out_degree, exponent=2.3, seed=0,
                     id_offset=0):
    """Streaming twin of :func:`~repro.datasets.generators.power_law_graph`.

    Replays the generator's RNG draw-for-draw (one degree draw plus its
    rejection-sampled targets per source, sources ascending), so the
    produced adjacency is identical. Directed only — the undirected
    variant needs reverse edges known before their source streams by,
    which is exactly the dict the streaming path exists to avoid.
    """
    if num_vertices <= 1:
        raise GraphError("stream_power_law needs at least 2 vertices")
    from repro.datasets.generators import _WeightedSampler, _draw_degree, \
        _zipf_weights

    def generate():
        rng = derive_rng(seed, "power_law", num_vertices, mean_out_degree)
        sampler = _WeightedSampler(_zipf_weights(num_vertices, exponent))
        for source in range(num_vertices):
            out_degree = min(
                num_vertices - 1, _draw_degree(rng, mean_out_degree)
            )
            chosen = set()
            attempts = 0
            while len(chosen) < out_degree and attempts < out_degree * 20:
                target = sampler.sample(rng)
                attempts += 1
                if target != source:
                    chosen.add(target)
            yield source + id_offset, None, {
                target + id_offset: None for target in sorted(chosen)
            }

    return VertexStream(
        name=f"power-law-{num_vertices}",
        num_vertices=num_vertices,
        num_edges=int(num_vertices * mean_out_degree),
        factory=generate,
        directed=True,
        id_range=range(id_offset, id_offset + num_vertices),
    )
