"""Buffered line-oriented writers over the simulated file system.

Each Graft-instrumented worker holds one :class:`LineWriter` for its trace
file and appends one record per line. Buffering batches small appends into
larger file-system writes, mirroring how real trace producers buffer before
hitting HDFS.

Flushing is adaptive: a flush happens when *either* the line-count
threshold or the byte threshold is reached, so many tiny records batch up
into large appends while a few huge records don't pin megabytes in memory.
"""

from repro.common.errors import SimFsError

DEFAULT_BUFFER_LINES = 1024
DEFAULT_BUFFER_BYTES = 256 * 1024


class LineWriter:
    """Appends text lines to one file with adaptive buffering.

    Flushes when ``buffer_lines`` lines or ``buffer_bytes`` buffered
    characters accumulate, whichever comes first. Usable as a context
    manager; leaving the ``with`` block closes the writer, flushing
    buffered lines even when the block is exiting with an exception (so a
    failing job never loses already-captured trace records). ``close()``
    and ``flush()`` are idempotent.

    >>> from repro.simfs import SimFileSystem
    >>> fs = SimFileSystem()
    >>> with LineWriter(fs, "/t/w0.trace") as w:
    ...     w.write_line("record-1")
    ...     w.write_line("record-2")
    >>> list(fs.read_lines("/t/w0.trace"))
    ['record-1', 'record-2']
    """

    def __init__(
        self,
        filesystem,
        path,
        buffer_lines=DEFAULT_BUFFER_LINES,
        buffer_bytes=DEFAULT_BUFFER_BYTES,
    ):
        if buffer_lines <= 0:
            raise SimFsError(f"buffer_lines must be positive, got {buffer_lines}")
        if buffer_bytes <= 0:
            raise SimFsError(f"buffer_bytes must be positive, got {buffer_bytes}")
        self._fs = filesystem
        self.path = path
        self._buffer = []
        self._buffered_chars = 0
        self._buffer_lines = buffer_lines
        self._buffer_bytes = buffer_bytes
        self._closed = False
        self.lines_written = 0
        filesystem.create(path, overwrite=True)

    def write_line(self, line):
        """Append one line (a newline is added; the line must not contain one)."""
        if self._closed:
            raise SimFsError(f"writer for {self.path!r} is closed")
        if "\n" in line:
            raise SimFsError("write_line() takes a single line without newlines")
        self._buffer.append(line)
        self._buffered_chars += len(line) + 1
        self.lines_written += 1
        if (
            len(self._buffer) >= self._buffer_lines
            or self._buffered_chars >= self._buffer_bytes
        ):
            self.flush()

    def write_lines(self, lines):
        """Append many lines with one threshold check at the end.

        The bulk path for trace drains: per-line flush checks are skipped
        while the batch is buffered, then the usual thresholds apply once.
        """
        if self._closed:
            raise SimFsError(f"writer for {self.path!r} is closed")
        count = 0
        chars = 0
        for line in lines:
            if "\n" in line:
                raise SimFsError(
                    "write_lines() takes single lines without newlines"
                )
            self._buffer.append(line)
            chars += len(line) + 1
            count += 1
        self._buffered_chars += chars
        self.lines_written += count
        if (
            len(self._buffer) >= self._buffer_lines
            or self._buffered_chars >= self._buffer_bytes
        ):
            self.flush()

    @property
    def pending_lines(self):
        """Lines buffered but not yet pushed to the file system."""
        return len(self._buffer)

    def flush(self):
        """Push buffered lines to the file system. Idempotent."""
        if self._buffer:
            self._fs.append_text(self.path, "".join(l + "\n" for l in self._buffer))
            self._buffer = []
            self._buffered_chars = 0

    def close(self):
        """Flush and prevent further writes. Idempotent."""
        if not self._closed:
            self.flush()
            self._closed = True

    @property
    def closed(self):
        return self._closed

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        # Flush-before-propagate: buffered records survive an exception in
        # the with block; the original exception continues unwinding.
        self.close()
        return False
