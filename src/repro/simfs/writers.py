"""Buffered writers over the simulated file system.

Each Graft-instrumented worker holds one writer for its trace file and
appends one record at a time. Buffering batches small appends into larger
file-system writes, mirroring how real trace producers buffer before
hitting HDFS.

Two writers live here:

- :class:`LineWriter` — plain text lines (the v1 trace format and job
  output files). Flushing is adaptive: a flush happens when *either* the
  line-count threshold or the byte threshold is reached, so many tiny
  records batch up into large appends while a few huge records don't pin
  megabytes in memory.
- :class:`BlockWriter` — length-prefixed, optionally zlib-compressed
  binary frames (the v2 trace format's block layer). The caller hands it
  whole payloads; it reports back exactly where each block landed so an
  index sidecar can point at it.
"""

import zlib

from repro.common.errors import SimFsError, SimFsTransientError

DEFAULT_BUFFER_LINES = 1024
DEFAULT_BUFFER_BYTES = 256 * 1024

#: How many times an append is attempted when the file system reports a
#: transient error (which leaves the file unchanged). Real trace producers
#: retry transient HDFS write failures the same bounded way.
TRANSIENT_RETRY_ATTEMPTS = 3


def append_retrying(filesystem, path, data, attempts=TRANSIENT_RETRY_ATTEMPTS):
    """Append bytes or text, retrying bounded :class:`SimFsTransientError`.

    A transient error means nothing landed, so retrying is safe; any other
    failure (including an injected mid-append crash) propagates untouched.
    """
    append = (
        filesystem.append_text if isinstance(data, str)
        else filesystem.append_bytes
    )
    for attempt in range(attempts):
        try:
            append(path, data)
            return
        except SimFsTransientError:
            if attempt == attempts - 1:
                raise


class LineWriter:
    """Appends text lines to one file with adaptive buffering.

    Flushes when ``buffer_lines`` lines or ``buffer_bytes`` buffered
    characters accumulate, whichever comes first. Usable as a context
    manager; leaving the ``with`` block closes the writer, flushing
    buffered lines even when the block is exiting with an exception (so a
    failing job never loses already-captured trace records). ``close()``
    and ``flush()`` are idempotent.

    >>> from repro.simfs import SimFileSystem
    >>> fs = SimFileSystem()
    >>> with LineWriter(fs, "/t/w0.trace") as w:
    ...     w.write_line("record-1")
    ...     w.write_line("record-2")
    >>> list(fs.read_lines("/t/w0.trace"))
    ['record-1', 'record-2']
    """

    def __init__(
        self,
        filesystem,
        path,
        buffer_lines=DEFAULT_BUFFER_LINES,
        buffer_bytes=DEFAULT_BUFFER_BYTES,
    ):
        if buffer_lines <= 0:
            raise SimFsError(f"buffer_lines must be positive, got {buffer_lines}")
        if buffer_bytes <= 0:
            raise SimFsError(f"buffer_bytes must be positive, got {buffer_bytes}")
        self._fs = filesystem
        self.path = path
        self._buffer = []
        self._buffered_chars = 0
        self._buffer_lines = buffer_lines
        self._buffer_bytes = buffer_bytes
        self._closed = False
        self.lines_written = 0
        #: Bytes known to be durably flushed; repair() truncates back here.
        self.offset = 0
        filesystem.create(path, overwrite=True)

    def write_line(self, line):
        """Append one line (a newline is added; the line must not contain one)."""
        if self._closed:
            raise SimFsError(f"writer for {self.path!r} is closed")
        if "\n" in line:
            raise SimFsError("write_line() takes a single line without newlines")
        self._buffer.append(line)
        self._buffered_chars += len(line) + 1
        self.lines_written += 1
        if (
            len(self._buffer) >= self._buffer_lines
            or self._buffered_chars >= self._buffer_bytes
        ):
            self.flush()

    def write_lines(self, lines):
        """Append many lines with one threshold check at the end.

        The bulk path for trace drains: per-line flush checks are skipped
        while the batch is buffered, then the usual thresholds apply once.
        """
        if self._closed:
            raise SimFsError(f"writer for {self.path!r} is closed")
        count = 0
        chars = 0
        for line in lines:
            if "\n" in line:
                raise SimFsError(
                    "write_lines() takes single lines without newlines"
                )
            self._buffer.append(line)
            chars += len(line) + 1
            count += 1
        self._buffered_chars += chars
        self.lines_written += count
        if (
            len(self._buffer) >= self._buffer_lines
            or self._buffered_chars >= self._buffer_bytes
        ):
            self.flush()

    @property
    def pending_lines(self):
        """Lines buffered but not yet pushed to the file system."""
        return len(self._buffer)

    def flush(self):
        """Push buffered lines to the file system. Idempotent.

        Transient file-system errors are retried (nothing landed); a
        mid-append crash propagates with the buffer intact so
        :meth:`repair` can discard the torn tail.
        """
        if self._buffer:
            payload = "".join(l + "\n" for l in self._buffer)
            append_retrying(self._fs, self.path, payload)
            self.offset += len(payload.encode("utf-8"))
            self._buffer = []
            self._buffered_chars = 0

    def repair(self):
        """Restore file/writer consistency after a crash-induced rollback.

        Truncates the file back to the last fully flushed byte (dropping a
        torn partial append) and discards buffered lines — they belong to
        the superstep being rolled back and will be re-captured when it
        re-executes.
        """
        dropped = len(self._buffer)
        self._buffer = []
        self._buffered_chars = 0
        self.lines_written -= dropped
        if self._fs.stat(self.path).size > self.offset:
            self._fs.truncate(self.path, self.offset)

    def close(self):
        """Flush and prevent further writes. Idempotent."""
        if not self._closed:
            self.flush()
            self._closed = True

    @property
    def closed(self):
        return self._closed

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        # Flush-before-propagate: buffered records survive an exception in
        # the with block; the original exception continues unwinding.
        self.close()
        return False


#: Block flag bit: the payload is zlib-compressed.
BLOCK_FLAG_ZLIB = 0x01

#: Payloads below this size are never worth compressing.
DEFAULT_MIN_COMPRESS_BYTES = 256


class BlockWriter:
    """Appends framed binary blocks to one file.

    Each block is stored as ``u32be stored_length | u8 flags | stored
    bytes``; with compression enabled, payloads at least
    ``min_compress_bytes`` long are zlib-compressed when that actually
    shrinks them (flag bit :data:`BLOCK_FLAG_ZLIB`). :meth:`write_block`
    returns ``(offset, length, flags)`` — the absolute extent of the whole
    frame — which is exactly what an index sidecar records so a reader can
    fetch the block back with one ranged read.

    Unlike :class:`LineWriter` this class does not buffer: the trace layer
    above it owns record buffering and decides the flush boundaries (block
    boundaries double as index granularity).
    """

    def __init__(
        self,
        filesystem,
        path,
        compression=True,
        compress_level=6,
        min_compress_bytes=DEFAULT_MIN_COMPRESS_BYTES,
    ):
        self._fs = filesystem
        self.path = path
        self._compression = compression
        self._compress_level = compress_level
        self._min_compress_bytes = min_compress_bytes
        self._closed = False
        self.offset = 0
        self.blocks_written = 0
        self.raw_payload_bytes = 0
        self.stored_payload_bytes = 0
        filesystem.create(path, overwrite=True)

    def write_prelude(self, data):
        """Append raw unframed bytes (file magic + header), before any block."""
        if self._closed:
            raise SimFsError(f"writer for {self.path!r} is closed")
        if self.blocks_written:
            raise SimFsError("prelude must be written before any block")
        append_retrying(self._fs, self.path, data)
        self.offset += len(data)
        return self.offset

    def write_block(self, payload):
        """Append one framed block; returns ``(offset, length, flags)``."""
        if self._closed:
            raise SimFsError(f"writer for {self.path!r} is closed")
        flags = 0
        stored = payload
        if self._compression and len(payload) >= self._min_compress_bytes:
            compressed = zlib.compress(payload, self._compress_level)
            if len(compressed) < len(payload):
                stored = compressed
                flags |= BLOCK_FLAG_ZLIB
        frame = len(stored).to_bytes(4, "big") + bytes([flags]) + stored
        offset = self.offset
        append_retrying(self._fs, self.path, frame)
        self.offset += len(frame)
        self.blocks_written += 1
        self.raw_payload_bytes += len(payload)
        self.stored_payload_bytes += len(stored)
        return offset, len(frame), flags

    def repair(self):
        """Truncate the file back to the last complete frame.

        After a mid-append crash (``offset`` was not advanced) the file may
        carry a torn partial frame; cutting back to ``offset`` restores the
        invariant that every byte on disk belongs to a complete frame.
        """
        if self._fs.stat(self.path).size > self.offset:
            self._fs.truncate(self.path, self.offset)

    def close(self):
        self._closed = True

    @property
    def closed(self):
        return self._closed
