"""Buffered line-oriented writers over the simulated file system.

Each Graft-instrumented worker holds one :class:`LineWriter` for its trace
file and appends one record per line. Buffering batches small appends into
larger file-system writes, mirroring how real trace producers buffer before
hitting HDFS.
"""

from repro.common.errors import SimFsError

DEFAULT_BUFFER_LINES = 256


class LineWriter:
    """Appends text lines to one file, flushing every ``buffer_lines`` lines.

    Usable as a context manager; closing flushes.

    >>> from repro.simfs import SimFileSystem
    >>> fs = SimFileSystem()
    >>> with LineWriter(fs, "/t/w0.trace") as w:
    ...     w.write_line("record-1")
    ...     w.write_line("record-2")
    >>> list(fs.read_lines("/t/w0.trace"))
    ['record-1', 'record-2']
    """

    def __init__(self, filesystem, path, buffer_lines=DEFAULT_BUFFER_LINES):
        if buffer_lines <= 0:
            raise SimFsError(f"buffer_lines must be positive, got {buffer_lines}")
        self._fs = filesystem
        self.path = path
        self._buffer = []
        self._buffer_lines = buffer_lines
        self._closed = False
        self.lines_written = 0
        filesystem.create(path, overwrite=True)

    def write_line(self, line):
        """Append one line (a newline is added; the line must not contain one)."""
        if self._closed:
            raise SimFsError(f"writer for {self.path!r} is closed")
        if "\n" in line:
            raise SimFsError("write_line() takes a single line without newlines")
        self._buffer.append(line)
        self.lines_written += 1
        if len(self._buffer) >= self._buffer_lines:
            self.flush()

    def flush(self):
        """Push buffered lines to the file system."""
        if self._buffer:
            self._fs.append_text(self.path, "".join(l + "\n" for l in self._buffer))
            self._buffer = []

    def close(self):
        """Flush and prevent further writes. Idempotent."""
        if not self._closed:
            self.flush()
            self._closed = True

    @property
    def closed(self):
        return self._closed

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False
