"""A simulated distributed file system (the repository's HDFS stand-in).

Giraph workers write Graft trace files to HDFS; the GUI and Context
Reproducer read them back. :class:`SimFileSystem` reproduces the slice of
HDFS behaviour those paths depend on: a hierarchical namespace, append-only
writers, atomic-rename, listing, and byte/block accounting (the paper's
"small log files" claim is measured against these counters).
"""

from repro.simfs.filesystem import FileStat, SimFileSystem
from repro.simfs.spool import SpoolFileSystem
from repro.simfs.writers import BlockWriter, LineWriter

__all__ = [
    "FileStat",
    "SimFileSystem",
    "SpoolFileSystem",
    "LineWriter",
    "BlockWriter",
]
