"""A disk-backed spill area with the simfs file API.

:class:`SimFileSystem` keeps every byte in process memory — exactly right
for traces and checkpoints whose accounting the tests assert, and exactly
wrong for an out-of-core store whose whole point is that spilled pages
*leave* memory. :class:`SpoolFileSystem` implements the subset of the
simfs surface the partitioned store and :class:`~repro.simfs.BlockWriter`
write against (create / append / positioned read / truncate / glob /
stat), backed by real files under a private temporary directory, so
spilled partition pages and message runs cost disk instead of RSS.

Design notes:

- Every operation opens the backing file, acts, and closes it. No file
  descriptors are cached, which makes the spool safe across ``fork()``:
  the process backend's children read spilled pages without sharing
  seek offsets or buffered writers with the parent.
- Paths keep simfs semantics (absolute, ``/``-separated) and are mapped
  to flat percent-encoded file names, so no simfs path can escape the
  spool root.
- The same read/write accounting counters as :class:`SimFileSystem` are
  maintained; the store's spill telemetry reads them.

The spool directory is deleted when :meth:`close` is called (or the
object is garbage collected). Set the ``REPRO_SPOOL_DIR`` environment
variable to place spools somewhere other than the system temp dir.
"""

import os
import shutil
import tempfile
import urllib.parse
import weakref

from repro.common.errors import SimFsError
from repro.simfs.filesystem import FileStat, normalize_path


class SpoolFileSystem:
    """Disk-backed file namespace for spilled store pages and runs."""

    def __init__(self, root=None):
        base = root or os.environ.get("REPRO_SPOOL_DIR") or None
        self.root = tempfile.mkdtemp(prefix="repro-spool-", dir=base)
        # Authoritative size map: one entry per live file. Sizes are
        # tracked here (not stat()ed) so accounting stays exact even if
        # an external process touches the directory.
        self._sizes = {}
        self.bytes_written = 0
        self.bytes_read = 0
        self.append_calls = 0
        self.read_calls = 0
        self.files_created = 0
        self._finalizer = weakref.finalize(
            self, shutil.rmtree, self.root, True
        )

    # -- path mapping ------------------------------------------------------

    def _local(self, path):
        return os.path.join(
            self.root, urllib.parse.quote(path.lstrip("/"), safe="")
        )

    # -- namespace ---------------------------------------------------------

    def exists(self, path):
        return normalize_path(path) in self._sizes

    def glob_files(self, directory, suffix=""):
        """Files under ``directory`` (recursively) ending with ``suffix``."""
        prefix = normalize_path(directory).rstrip("/") + "/"
        return sorted(
            path
            for path in self._sizes
            if path.startswith(prefix) and path.endswith(suffix)
        )

    def create(self, path, overwrite=False):
        path = normalize_path(path)
        if path in self._sizes and not overwrite:
            raise SimFsError(f"file exists: {path}")
        with open(self._local(path), "wb"):
            pass
        self._sizes[path] = 0
        self.files_created += 1

    def delete(self, path, recursive=False):
        path = normalize_path(path)
        if recursive:
            prefix = path.rstrip("/") + "/"
            doomed = [p for p in self._sizes if p.startswith(prefix)]
            if path in self._sizes:
                doomed.append(path)
            for victim in doomed:
                self._remove(victim)
            return
        if path not in self._sizes:
            raise SimFsError(f"no such file: {path}")
        self._remove(path)

    def _remove(self, path):
        try:
            os.remove(self._local(path))
        except FileNotFoundError:
            pass
        self._sizes.pop(path, None)

    # -- bytes -------------------------------------------------------------

    def append_bytes(self, path, data):
        path = normalize_path(path)
        if path not in self._sizes:
            self.create(path)
        with open(self._local(path), "ab") as handle:
            handle.write(data)
        self._sizes[path] += len(data)
        self.bytes_written += len(data)
        self.append_calls += 1

    def append_text(self, path, text):
        self.append_bytes(path, text.encode("utf-8"))

    def read_bytes(self, path):
        path = normalize_path(path)
        if path not in self._sizes:
            raise SimFsError(f"no such file: {path}")
        with open(self._local(path), "rb") as handle:
            data = handle.read()
        self.bytes_read += len(data)
        self.read_calls += 1
        return data

    def read_range(self, path, offset, length):
        """Positioned read; reads past end-of-file truncate like ``pread``."""
        path = normalize_path(path)
        if path not in self._sizes:
            raise SimFsError(f"no such file: {path}")
        if offset < 0 or length < 0:
            raise SimFsError(
                f"read_range needs offset >= 0 and length >= 0, "
                f"got ({offset}, {length})"
            )
        with open(self._local(path), "rb") as handle:
            handle.seek(offset)
            data = handle.read(length)
        self.bytes_read += len(data)
        self.read_calls += 1
        return data

    def truncate(self, path, size):
        path = normalize_path(path)
        if path not in self._sizes:
            raise SimFsError(f"no such file: {path}")
        current = self._sizes[path]
        if size < 0 or size > current:
            raise SimFsError(
                f"cannot truncate {path!r} to {size} bytes (file has {current})"
            )
        with open(self._local(path), "r+b") as handle:
            handle.truncate(size)
        self._sizes[path] = size

    def stat(self, path):
        path = normalize_path(path)
        if path not in self._sizes:
            raise SimFsError(f"no such file: {path}")
        return FileStat(path=path, size=self._sizes[path], blocks=1)

    def total_bytes(self, directory="/"):
        prefix = normalize_path(directory).rstrip("/") + "/"
        return sum(
            size for path, size in self._sizes.items()
            if path.startswith(prefix) or path == normalize_path(directory)
        )

    # -- lifecycle ---------------------------------------------------------

    def close(self):
        """Delete the spool directory. Idempotent."""
        self._sizes = {}
        self._finalizer()
