"""In-memory hierarchical file system with HDFS-like semantics.

Paths are ``/``-separated absolute strings. Directories exist implicitly
once a file lives under them (HDFS also allows explicit empty directories,
which ``mkdirs`` provides). Files are append-only byte sequences — exactly
the write pattern of a log/trace producer — with whole-file reads, listing,
rename, and deletion.

The class also keeps counters (files created, bytes written/read, append
and read calls, block counts) that the benchmark harness reports when
reproducing the paper's trace-size observations. Read accounting mirrors
the write accounting: whole-file reads, ranged reads, and streamed line
iteration all charge ``bytes_read`` / ``read_calls``, so a benchmark can
show that an index-backed trace reader touches O(result) bytes instead of
the whole file.
"""

import posixpath
from dataclasses import dataclass

from repro.common.errors import SimFsError, SimFsFileExists, SimFsFileNotFound

DEFAULT_BLOCK_SIZE = 64 * 1024


@dataclass(frozen=True)
class FileStat:
    """Metadata for one file, in the spirit of ``hdfs dfs -stat``."""

    path: str
    size: int
    blocks: int


def normalize_path(path):
    """Normalize ``path`` to a canonical absolute form.

    >>> normalize_path("graft//traces/../traces/w0.trace")
    '/graft/traces/w0.trace'
    """
    if not path or path in (".", "/"):
        return "/"
    if not path.startswith("/"):
        path = "/" + path
    # normpath clamps leading ".." at the root, so an absolute path can
    # never escape the namespace.
    return posixpath.normpath(path)


class SimFileSystem:
    """The simulated distributed file system.

    >>> fs = SimFileSystem()
    >>> fs.write_text("/a/b.txt", "hello")
    >>> fs.read_text("/a/b.txt")
    'hello'
    >>> fs.list_dir("/a")
    ['/a/b.txt']
    """

    def __init__(self, block_size=DEFAULT_BLOCK_SIZE):
        if block_size <= 0:
            raise SimFsError(f"block size must be positive, got {block_size}")
        self.block_size = block_size
        self._files = {}
        self._dirs = {"/"}
        self.files_created = 0
        self.bytes_written = 0
        self.append_calls = 0
        self.bytes_read = 0
        self.read_calls = 0

    # -- namespace ----------------------------------------------------------

    def exists(self, path):
        """True if ``path`` is an existing file or directory."""
        path = normalize_path(path)
        return path in self._files or self.is_dir(path)

    def is_file(self, path):
        return normalize_path(path) in self._files

    def is_dir(self, path):
        path = normalize_path(path)
        if path in self._dirs:
            return True
        prefix = path if path.endswith("/") else path + "/"
        return any(existing.startswith(prefix) for existing in self._files)

    def mkdirs(self, path):
        """Create a directory (and ancestors), like ``hdfs dfs -mkdir -p``."""
        path = normalize_path(path)
        if path in self._files:
            raise SimFsFileExists(path)
        while path != "/":
            self._dirs.add(path)
            path = posixpath.dirname(path)

    def list_dir(self, path):
        """Return sorted child paths (files and directories) of ``path``."""
        path = normalize_path(path)
        if not self.is_dir(path):
            raise SimFsFileNotFound(path)
        prefix = path if path.endswith("/") else path + "/"
        children = set()
        for candidate in list(self._files) + list(self._dirs):
            if candidate != path and candidate.startswith(prefix):
                remainder = candidate[len(prefix):]
                children.add(prefix + remainder.split("/", 1)[0])
        return sorted(children)

    def glob_files(self, directory, suffix=""):
        """Return sorted file paths under ``directory`` ending with ``suffix``."""
        directory = normalize_path(directory)
        prefix = directory if directory.endswith("/") else directory + "/"
        return sorted(
            path
            for path in self._files
            if path.startswith(prefix) and path.endswith(suffix)
        )

    # -- file data ----------------------------------------------------------

    def create(self, path, overwrite=False):
        """Create an empty file; with ``overwrite=False`` an existing file errors."""
        path = normalize_path(path)
        if self.is_dir(path) and path in self._dirs:
            raise SimFsFileExists(path)
        if path in self._files and not overwrite:
            raise SimFsFileExists(path)
        self._files[path] = bytearray()
        self.files_created += 1
        self.mkdirs(posixpath.dirname(path))

    def append_bytes(self, path, data):
        """Append ``data`` to ``path``, creating the file if needed."""
        path = normalize_path(path)
        if path not in self._files:
            self.create(path)
        self._files[path] += data
        self.bytes_written += len(data)
        self.append_calls += 1

    def append_text(self, path, text):
        self.append_bytes(path, text.encode("utf-8"))

    def write_text(self, path, text):
        """Create-or-truncate ``path`` with ``text`` as its full contents."""
        self.create(path, overwrite=True)
        self.append_text(path, text)

    def read_bytes(self, path):
        path = normalize_path(path)
        if path not in self._files:
            raise SimFsFileNotFound(path)
        data = bytes(self._files[path])
        self.bytes_read += len(data)
        self.read_calls += 1
        return data

    def read_range(self, path, offset, length):
        """Read ``length`` bytes starting at ``offset`` (a positioned read).

        Like ``pread``: reads past end-of-file are truncated to the
        available bytes (possibly empty) rather than raising, so a reader
        recovering from a truncated file can probe safely. A negative
        offset or length is an error.
        """
        path = normalize_path(path)
        if path not in self._files:
            raise SimFsFileNotFound(path)
        if offset < 0 or length < 0:
            raise SimFsError(
                f"read_range needs offset >= 0 and length >= 0, "
                f"got ({offset}, {length})"
            )
        data = bytes(self._files[path][offset:offset + length])
        self.bytes_read += len(data)
        self.read_calls += 1
        return data

    def read_text(self, path):
        return self.read_bytes(path).decode("utf-8")

    def iter_lines(self, path, chunk_size=None):
        """Stream a text file's lines without materializing the whole file.

        Reads ``chunk_size`` bytes at a time (default: the file system
        block size) through :meth:`read_range`, so read accounting shows
        block-sized accesses; lines are framed by ``\\n`` at the *byte*
        level before UTF-8 decoding, which keeps multi-byte characters
        intact across chunk boundaries.
        """
        path = normalize_path(path)
        if path not in self._files:
            raise SimFsFileNotFound(path)
        chunk_size = chunk_size or self.block_size
        size = len(self._files[path])
        offset = 0
        pending = b""
        while offset < size:
            chunk = self.read_range(path, offset, chunk_size)
            offset += len(chunk)
            pending += chunk
            start = 0
            while True:
                newline = pending.find(b"\n", start)
                if newline < 0:
                    break
                yield pending[start:newline].decode("utf-8")
                start = newline + 1
            pending = pending[start:]
        if pending:
            yield pending.decode("utf-8")

    def read_lines(self, path):
        """Yield the lines of a text file without trailing newlines.

        A generator: lines stream chunk by chunk through
        :meth:`iter_lines` instead of materializing the full file first.
        Lines are framed by ``\\n`` only — unlike ``str.splitlines()``,
        which also splits on exotic Unicode boundaries (``\\x1e``, ``\\x85``,
        ...) and would corrupt records containing such characters.
        """
        return self.iter_lines(path)

    def truncate(self, path, size):
        """Cut a file back to its first ``size`` bytes.

        Recovery support: rollback repair uses this to drop a torn tail
        (bytes a crashed writer appended past its last complete frame).
        Growing a file is not supported — appends are the only way to add
        bytes.
        """
        path = normalize_path(path)
        if path not in self._files:
            raise SimFsFileNotFound(path)
        current = len(self._files[path])
        if size < 0 or size > current:
            raise SimFsError(
                f"cannot truncate {path!r} to {size} bytes (file has {current})"
            )
        del self._files[path][size:]

    def snapshot(self):
        """A deep copy of the current namespace as a plain SimFileSystem.

        Used by the chaos harness to freeze the exact on-disk state at a
        crash instant (torn frames, stale sidecars) so readers can be
        exercised against it while the live run recovers and moves on.
        Accounting counters start fresh in the copy.
        """
        clone = SimFileSystem(block_size=self.block_size)
        clone._files = {
            path: bytearray(data) for path, data in self._files.items()
        }
        clone._dirs = set(self._dirs)
        return clone

    def delete(self, path, recursive=False):
        """Delete a file, or a directory tree when ``recursive`` is set."""
        path = normalize_path(path)
        if path in self._files:
            del self._files[path]
            return
        if self.is_dir(path):
            if not recursive:
                raise SimFsError(f"cannot delete directory {path!r} without recursive")
            prefix = path if path.endswith("/") else path + "/"
            for file_path in [p for p in self._files if p.startswith(prefix)]:
                del self._files[file_path]
            self._dirs = {
                d for d in self._dirs if d != path and not d.startswith(prefix)
            }
            return
        raise SimFsFileNotFound(path)

    def rename(self, source, destination):
        """Atomically move a file, like HDFS rename."""
        source = normalize_path(source)
        destination = normalize_path(destination)
        if source not in self._files:
            raise SimFsFileNotFound(source)
        if destination in self._files:
            raise SimFsFileExists(destination)
        self._files[destination] = self._files.pop(source)
        self.mkdirs(posixpath.dirname(destination))

    # -- accounting ---------------------------------------------------------

    def stat(self, path):
        path = normalize_path(path)
        if path not in self._files:
            raise SimFsFileNotFound(path)
        size = len(self._files[path])
        blocks = max(1, -(-size // self.block_size)) if size else 0
        return FileStat(path=path, size=size, blocks=blocks)

    def total_bytes(self, directory="/"):
        """Total stored bytes under ``directory``."""
        directory = normalize_path(directory)
        prefix = directory if directory.endswith("/") else directory + "/"
        if directory == "/":
            return sum(len(data) for data in self._files.values())
        return sum(
            len(data)
            for path, data in self._files.items()
            if path.startswith(prefix)
        )

    def export_to_directory(self, local_directory):
        """Copy every file to a real directory on local disk for inspection."""
        import os

        for path, data in self._files.items():
            target = os.path.join(local_directory, path.lstrip("/"))
            os.makedirs(os.path.dirname(target), exist_ok=True)
            with open(target, "wb") as handle:
                handle.write(bytes(data))

    def import_from_directory(self, local_directory, prefix="/"):
        """Load a real directory tree (an earlier export) back into the fs.

        The inverse of :meth:`export_to_directory`: every file under
        ``local_directory`` appears at ``prefix`` + its relative path. This
        is how the CLI's ``trace`` subcommands inspect traces that a
        ``DebugRun.export_traces()`` call wrote to local disk — the
        paper's "copy into your IDE" hand-off.
        """
        import os

        if not os.path.isdir(local_directory):
            raise FileNotFoundError(
                f"not a directory: {local_directory!r}"
            )
        prefix = normalize_path(prefix)
        for dirpath, _dirnames, filenames in os.walk(local_directory):
            for filename in filenames:
                source = os.path.join(dirpath, filename)
                relative = os.path.relpath(source, local_directory)
                target = posixpath.join(prefix, *relative.split(os.sep))
                with open(source, "rb") as handle:
                    self.create(target, overwrite=True)
                    self.append_bytes(target, handle.read())
        return self
