"""Command-line interface.

The workflows a Giraph user would drive from a terminal::

    python -m repro datasets                      # Table 1/2 stand-ins
    python -m repro premade                       # offline-mode graph menu
    python -m repro run --algorithm pagerank --dataset web-BS --vertices 500
    python -m repro debug --algorithm gc-buggy --dataset bipartite-1M-3M \\
        --capture-random 10 --neighbors --view tabular --superstep last
    python -m repro debug --algorithm rw-buggy --dataset web-BS \\
        --nonneg-messages --view violations
    python -m repro lint repro.algorithms:BuggyRandomWalk --format json
    python -m repro lint repro.algorithms examples/quickstart.py
    python -m repro trace stats job-0 --dir ./exported-traces
    python -m repro trace stats job-0 --dir ./exported-traces --json
    python -m repro serve --dir ./exported-traces --port 8707
    python -m repro chaos presets
    python -m repro chaos run --plan worker-crash --algorithm pagerank
    python -m repro san --algorithm label-prop-buggy --dataset web-BS \\
        --schedules 3
    python -m repro debug --algorithm pagerank --chaos torn-trace-tail \\
        --capture-all-active
    python -m repro validate --dataset soc-Epinions --vertices 500

Exit status (documented for CI gating):

- 0 — success, and (for ``debug``) no constraint violations captured;
- 1 — failed computation, invalid input, a ``chaos run`` whose recovery
  verification failed, a ``san`` sweep whose harness failed, or (for
  ``lint``) error-severity findings / unresolvable target;
- 2 — the run or analysis itself succeeded but found problems: ``debug``
  captured constraint violations, ``lint`` produced warning-severity
  findings only, or ``san`` observed a delivery-order divergence.
"""

import argparse
import sys

from repro.algorithms import (
    BuggyGraphColoring,
    BuggyLabelPropagation,
    BuggyRandomWalk,
    ConnectedComponents,
    GCMaster,
    GraphColoring,
    KCore,
    LabelPropagation,
    MaximumWeightMatching,
    PageRank,
    RandomWalk,
    ShortestPaths,
    TriangleCount,
)
from repro.bench import render_table
from repro.datasets import (
    DEMO_DATASETS,
    PERF_DATASETS,
    load_dataset,
    make,
    premade_graph,
    premade_menu,
    random_symmetric_weights,
)
from repro.graft import DebugConfig, debug_run
from repro.graph import compute_stats, to_undirected, validate_graph
from repro.pregel import EXECUTOR_NAMES, run_computation


def _algorithm_registry():
    """name -> (description, factory builder, engine kwargs builder)."""
    return {
        "pagerank": (
            "fixed-iteration PageRank",
            lambda args: (lambda: PageRank(iterations=args.iterations)),
            lambda args: {},
        ),
        "components": (
            "connected components (HashMin)",
            lambda args: ConnectedComponents,
            lambda args: {},
        ),
        "sssp": (
            "single-source shortest paths (source = first vertex)",
            lambda args: (lambda: ShortestPaths(args.source)),
            lambda args: {},
        ),
        "gc": (
            "graph coloring by iterated MIS (paper GC, correct)",
            lambda args: GraphColoring,
            lambda args: {"master": GCMaster()},
        ),
        "gc-buggy": (
            "graph coloring with the Scenario 4.1 MIS tie bug",
            lambda args: BuggyGraphColoring,
            lambda args: {"master": GCMaster()},
        ),
        "rw": (
            "random walk simulation (paper RW, correct)",
            lambda args: (
                lambda: RandomWalk(steps=args.steps, initial_walkers=args.walkers)
            ),
            lambda args: {},
        ),
        "rw-buggy": (
            "random walk with the Scenario 4.2 short-overflow bug",
            lambda args: (
                lambda: BuggyRandomWalk(steps=args.steps, initial_walkers=args.walkers)
            ),
            lambda args: {},
        ),
        "mwm": (
            "approximate maximum-weight matching (paper MWM)",
            lambda args: MaximumWeightMatching,
            lambda args: {},
        ),
        "triangles": (
            "triangle counting",
            lambda args: TriangleCount,
            lambda args: {},
        ),
        "kcore": (
            "k-core decomposition (--k)",
            lambda args: (lambda: KCore(args.k)),
            lambda args: {},
        ),
        "label-prop": (
            "label propagation communities (--iterations)",
            lambda args: (lambda: LabelPropagation(iterations=args.iterations)),
            lambda args: {},
        ),
        "label-prop-buggy": (
            "label propagation with a last-wins tie-break (order-sensitive)",
            lambda args: (
                lambda: BuggyLabelPropagation(iterations=args.iterations)
            ),
            lambda args: {},
        ),
    }


def _build_graph(args):
    if getattr(args, "input", None):
        from repro.graph.io import read_adjacency_file

        graph = read_adjacency_file(args.input, directed=not args.undirected)
    else:
        graph = make(
            args.dataset, scale=getattr(args, "scale", "demo"),
            seed=args.seed, num_vertices=args.vertices,
        )
    if args.algorithm == "mwm":
        graph = to_undirected(
            random_symmetric_weights(_materialized(graph), seed=args.seed)
        )
    elif args.algorithm in (
        "triangles", "kcore", "label-prop", "label-prop-buggy", "components"
    ):
        # These expect the undirected (symmetric) encoding.
        graph = to_undirected(_materialized(graph))
    return graph


def _materialized(graph):
    """Collapse a full-scale VertexStream when a transform needs a Graph.

    Weight decoration and undirected symmetrization rewrite edges in
    place, so algorithms that need them cannot stream; at full scale this
    costs the materialization the streaming path normally avoids.
    """
    materialize = getattr(graph, "materialize", None)
    return materialize() if materialize is not None else graph


def _engine_kwargs(args, registry_kwargs):
    kwargs = dict(registry_kwargs)
    kwargs["seed"] = args.seed
    kwargs["num_workers"] = args.workers
    kwargs["executor"] = args.executor
    if getattr(args, "columnar", None) is not None:
        kwargs["columnar"] = args.columnar
    if args.max_supersteps is not None:
        kwargs["max_supersteps"] = args.max_supersteps
    if getattr(args, "store", None) is not None:
        kwargs["store"] = args.store
    if getattr(args, "memory_limit", None) is not None:
        kwargs["memory_limit"] = args.memory_limit * 1024 * 1024
    if getattr(args, "partitions", None) is not None:
        kwargs["num_partitions"] = args.partitions
    return kwargs


# -- subcommands ---------------------------------------------------------------


def cmd_datasets(args, out):
    rows = []
    for spec in DEMO_DATASETS + PERF_DATASETS:
        graph = spec.generate(seed=args.seed)
        stats = compute_stats(graph)
        rows.append(
            [
                spec.name,
                spec.table,
                spec.paper_vertices,
                stats.num_vertices,
                stats.num_directed_edges,
                spec.description,
            ]
        )
    out(
        render_table(
            ["name", "paper table", "paper |V|", "stand-in |V|",
             "stand-in |E|(d)", "description"],
            rows,
            title="Registered datasets (paper originals and generated stand-ins)",
        )
    )
    return 0


def cmd_premade(args, out):
    rows = []
    for name in premade_menu():
        graph = premade_graph(name)
        rows.append([name, graph.num_vertices, graph.num_edges])
    out(render_table(["name", "|V|", "|E|(d)"], rows,
                     title="Premade graphs (offline-mode menu)"))
    return 0


def cmd_run(args, out):
    registry = _algorithm_registry()
    description, factory_builder, kwargs_builder = registry[args.algorithm]
    graph = _build_graph(args)
    out(f"running {args.algorithm} ({description}) on {args.dataset} "
        f"[{graph.num_vertices} vertices, {graph.num_edges} directed edges] "
        f"executor={args.executor} workers={args.workers}")
    result = run_computation(
        factory_builder(args), graph, **_engine_kwargs(args, kwargs_builder(args))
    )
    out(result.summary())
    if args.show_values:
        for vertex_id in list(result.vertex_values)[: args.show_values]:
            out(f"  {vertex_id!r}: {result.vertex_values[vertex_id]!r}")
    return 0


class _CliDebugConfig(DebugConfig):
    """DebugConfig assembled from command-line flags."""

    def __init__(self, args):
        self._args = args
        self._ids = tuple(args.capture_ids or ())

    def vertices_to_capture(self):
        return self._ids

    def num_random_vertices_to_capture(self):
        return self._args.capture_random

    def capture_neighbors_of_vertices(self):
        return self._args.neighbors

    def capture_all_active(self):
        return self._args.capture_all_active

    def should_capture_superstep(self, superstep):
        return superstep >= self._args.from_superstep

    def max_captures(self):
        return self._args.max_captures


class _CliDebugConfigWithMessages(_CliDebugConfig):
    def message_value_constraint(self, message, source_id, target_id, superstep):
        try:
            return not (message < 0)
        except TypeError:
            return True


class _CliDebugConfigWithValues(_CliDebugConfig):
    def vertex_value_constraint(self, value, vertex_id, superstep):
        try:
            return not (value < 0)
        except TypeError:
            return True


class _CliDebugConfigFull(_CliDebugConfigWithMessages):
    def vertex_value_constraint(self, value, vertex_id, superstep):
        try:
            return not (value < 0)
        except TypeError:
            return True


def _config_for(args):
    if args.nonneg_messages and args.nonneg_values:
        return _CliDebugConfigFull(args)
    if args.nonneg_messages:
        return _CliDebugConfigWithMessages(args)
    if args.nonneg_values:
        return _CliDebugConfigWithValues(args)
    return _CliDebugConfig(args)


def _debug_status(run):
    """debug exit code: 0 clean, 1 failed, 2 violations captured (CI gate)."""
    if not run.ok:
        return 1
    return 2 if run.violations() else 0


def _chaos_debug_kwargs(args, out):
    """Extra debug_run kwargs for ``debug --chaos``; (kwargs, injector)."""
    if not getattr(args, "chaos", None):
        return {}, None
    from repro.chaos import ChaosFileSystem, FaultInjector, load_fault_plan
    from repro.pregel import CheckpointConfig

    plan = load_fault_plan(args.chaos)
    injector = FaultInjector(plan)
    filesystem = ChaosFileSystem(injector)
    out(f"chaos: injecting plan {plan.name!r} "
        f"({len(plan.faults)} fault spec(s)), "
        f"checkpoint every {args.checkpoint_every} superstep(s)")
    kwargs = {
        "filesystem": filesystem,
        "fault_injector": injector,
        "checkpoint_config": CheckpointConfig(
            filesystem=filesystem,
            every_n_supersteps=args.checkpoint_every,
        ),
    }
    return kwargs, injector


def cmd_debug(args, out):
    from repro.chaos.faults import FaultPlanError

    registry = _algorithm_registry()
    _description, factory_builder, kwargs_builder = registry[args.algorithm]
    graph = _build_graph(args)
    try:
        chaos_kwargs, injector = _chaos_debug_kwargs(args, out)
    except FaultPlanError as exc:
        out(f"debug: {exc}")
        return 1
    run = debug_run(
        factory_builder(args),
        graph,
        _config_for(args),
        strict=args.strict,
        **chaos_kwargs,
        **_engine_kwargs(args, kwargs_builder(args)),
    )
    out(run.summary())
    superstep_stats = run.superstep_stats()
    if any(s.store_bytes_spilled or s.store_bytes_loaded
           for s in superstep_stats):
        out("out-of-core telemetry (per superstep):")
        for stats in superstep_stats:
            out(f"  {stats.row()}")
    if injector is not None:
        for event in injector.events:
            out(f"chaos: superstep {event.superstep}: {event.kind} "
                f"on {event.target} ({event.detail})")
        if not injector.events:
            out("chaos: no faults fired (plan coordinates never matched)")
    if not run.ok:
        out(f"computation FAILED: {run.failure}")
    if run.capture_count == 0:
        out("nothing captured (adjust the capture flags)")
        return _debug_status(run)

    superstep = args.superstep
    if args.view in ("nodelink", "tabular"):
        view = (
            run.node_link_view() if args.view == "nodelink" else run.tabular_view()
        )
        if superstep == "last":
            view.last()
        elif superstep is not None:
            view.goto(int(superstep))
        out(view.render())
    elif args.view == "violations":
        out(run.violations_view().render(limit=20))

    if args.html_report:
        out(f"wrote {run.export_html_report(args.html_report)}")

    if args.export_traces:
        run.export_traces(args.export_traces)
        out(f"exported traces to {args.export_traces} "
            f"(inspect with: repro trace stats {run.session.job_id} "
            f"--dir {args.export_traces})")

    if args.reproduce:
        vertex_token, step_token = args.reproduce
        try:
            vertex_id = int(vertex_token)
        except ValueError:
            vertex_id = vertex_token
        report = run.reproduce(vertex_id, int(step_token))
        out(report.summary())
        out(run.generate_test_code(vertex_id, int(step_token)))
    status = _debug_status(run)
    if status == 2:
        out(f"exit 2: {len(run.violations())} constraint violation(s) captured")
    return status


# -- lint -----------------------------------------------------------------


def _lint_module_classes(token):
    """Every Computation subclass a module defines or re-exports."""
    import importlib

    from repro.pregel.computation import Computation

    module = importlib.import_module(token)
    return sorted(
        {
            obj
            for obj in vars(module).values()
            if isinstance(obj, type)
            and issubclass(obj, Computation)
            and obj is not Computation
            and obj.__module__.startswith(module.__name__)
        },
        key=lambda cls: cls.__name__,
    )


def _lint_targets(tokens, dataflow=True):
    """Resolve lint targets into ``(label, [AnalysisReport, ...])`` pairs.

    A target is ``module:Class`` (one class), ``module`` (every Computation
    subclass the module defines or re-exports), or a ``.py`` path (analyzed
    from source, never imported — example scripts run jobs on import).
    """
    import importlib
    import os

    from repro.analysis import analyze_computation, analyze_path

    for token in tokens:
        if token.endswith(".py") or os.sep in token:
            yield token, analyze_path(token, dataflow=dataflow)
        elif ":" in token:
            module_name, class_name = token.split(":", 1)
            module = importlib.import_module(module_name)
            yield token, [
                analyze_computation(
                    getattr(module, class_name), dataflow=dataflow
                )
            ]
        else:
            yield token, [
                analyze_computation(cls, dataflow=dataflow)
                for cls in _lint_module_classes(token)
            ]


def _explain_contexts(tokens):
    """Resolve lint targets into ``(label, ClassContext)`` pairs for
    ``--explain-cfg``."""
    import importlib
    import os

    from repro.analysis import computation_context, contexts_from_module_source

    for token in tokens:
        if token.endswith(".py") or os.sep in token:
            with open(token, "r", encoding="utf-8") as handle:
                source = handle.read()
            for context in contexts_from_module_source(source, token):
                yield token, context
        elif ":" in token:
            module_name, class_name = token.split(":", 1)
            module = importlib.import_module(module_name)
            yield token, computation_context(getattr(module, class_name))
        else:
            for cls in _lint_module_classes(token):
                yield token, computation_context(cls)


def cmd_lint(args, out):
    import json

    if args.explain_cfg:
        return _cmd_lint_explain(args, out)
    try:
        resolved = list(_lint_targets(args.targets, dataflow=args.dataflow))
    except (ImportError, AttributeError, OSError, SyntaxError) as exc:
        out(f"lint: cannot resolve target: {exc}")
        return 1

    reports = [report for _label, target_reports in resolved
               for report in target_reports]
    if args.format == "sarif":
        import os

        from repro.analysis import sarif_log

        out(json.dumps(
            sarif_log(reports, base_dir=os.getcwd()), indent=2, default=repr
        ))
    elif args.format == "json":
        out(json.dumps([r.to_dict() for r in reports], indent=2, default=repr))
    else:
        for report in reports:
            out(report.render_text())
    errors = sum(len(r.errors) for r in reports)
    findings = sum(len(r.findings) for r in reports)
    if args.format == "text":
        out(
            f"linted {len(reports)} class(es): {errors} error(s), "
            f"{findings - errors} warning(s)"
        )
    if errors:
        return 1
    return 2 if findings else 0


def _cmd_lint_explain(args, out):
    """Render each target's CFG and interval-stamped phase facts."""
    try:
        resolved = list(_explain_contexts(args.targets))
    except (ImportError, AttributeError, OSError, SyntaxError) as exc:
        out(f"lint: cannot resolve target: {exc}")
        return 1
    rendered = 0
    for label, context in resolved:
        if context is None:
            out(f"lint: no source available for {label}")
            continue
        out(f"=== {context.class_name} ({label}) ===")
        for scope in context.iter_scopes():
            flow = context.dataflow(scope)
            if flow is None:
                out(f"method {context.class_name}.{scope.name}: "
                    "dataflow unavailable")
                continue
            out(flow.explain())
            rendered += 1
        interproc = context.interproc
        if interproc is not None:
            out(interproc.explain())
        protocol = context.protocol
        if protocol is not None:
            out(protocol.render())
    return 0 if rendered else 1


def cmd_chaos(args, out):
    import json

    from repro.chaos import PRESET_PLANS, load_fault_plan, run_chaos
    from repro.chaos.faults import FaultPlanError

    if args.chaos_command == "presets":
        rows = [
            [plan.name, len(plan.faults), plan.description]
            for _name, plan in sorted(PRESET_PLANS.items())
        ]
        out(render_table(
            ["preset", "faults", "description"], rows,
            title="Shipped fault plans (repro chaos run --plan <preset>)",
        ))
        return 0

    registry = _algorithm_registry()
    description, factory_builder, kwargs_builder = registry[args.algorithm]
    graph = _build_graph(args)
    try:
        plan = load_fault_plan(args.plan)
    except FaultPlanError as exc:
        out(f"chaos: {exc}")
        return 1
    kwargs = _engine_kwargs(args, kwargs_builder(args))
    out(f"chaos-running {args.algorithm} ({description}) on {args.dataset} "
        f"[{graph.num_vertices} vertices] under plan {plan.name!r} "
        f"executor={args.executor} workers={args.workers}")
    report = run_chaos(
        factory_builder(args),
        graph,
        plan,
        seed=kwargs.pop("seed"),
        num_workers=kwargs.pop("num_workers"),
        executor=kwargs.pop("executor"),
        checkpoint_every=args.checkpoint_every,
        **kwargs,
    )
    if args.format == "json":
        out(json.dumps(report.to_dict(), indent=2, default=repr))
    else:
        out(report.summary())
    return 0 if report.ok else 1


def cmd_san(args, out):
    import json

    from repro.graft.sanitizer import run_sanitizer

    registry = _algorithm_registry()
    description, factory_builder, kwargs_builder = registry[args.algorithm]
    graph = _build_graph(args)
    kwargs = _engine_kwargs(args, kwargs_builder(args))
    out(f"graft-san {args.algorithm} ({description}) on {args.dataset} "
        f"[{graph.num_vertices} vertices] schedules={args.schedules} "
        f"executor={args.executor} workers={args.workers}")
    report = run_sanitizer(
        factory_builder(args),
        graph,
        schedules=args.schedules,
        seed=kwargs.pop("seed"),
        num_workers=kwargs.pop("num_workers"),
        executor=kwargs.pop("executor"),
        **kwargs,
    )
    if args.format == "json":
        out(json.dumps(report.to_dict(), indent=2, default=repr))
    else:
        out(report.summary())
    if not report.ok:
        return 1
    return 0 if report.deterministic else 2


def cmd_trace(args, out):
    import json

    from repro.common.errors import TraceError
    from repro.graft.trace import trace_stats
    from repro.simfs import SimFileSystem

    fs = SimFileSystem()
    try:
        fs.import_from_directory(args.dir)
    except OSError as exc:
        out(f"trace: cannot load {args.dir}: {exc}")
        return 1
    if args.json:
        # The same serializer the debug server's /jobs/<id> endpoint uses,
        # so scripted consumers see one schema whichever door they enter.
        from repro.serve.sessions import job_summary

        try:
            summary = job_summary(fs, args.job_id, root=args.root)
        except TraceError as exc:
            out(f"trace: {exc}")
            return 1
        out(json.dumps(summary, indent=2, sort_keys=True, default=repr))
        return 0
    try:
        stats = trace_stats(fs, args.job_id, root=args.root)
    except TraceError as exc:
        out(f"trace: {exc}")
        return 1
    for skip in stats.get("skipped", ()):
        out(f"trace: warning: skipping unreadable trace file "
            f"{skip['path']}: {skip['error']}")
    rows = []
    for info in stats["files"]:
        rows.append([
            info["path"].rsplit("/", 1)[-1],
            info["format"],
            info["records"],
            info["bytes"],
            info["index_bytes"],
            f"{info['index_coverage'] * 100:.1f}%",
            f"{info['compression_ratio']:.2f}x",
            "-" if info["violations"] is None else info["violations"],
            "-" if info["exceptions"] is None else info["exceptions"],
        ])
    totals = stats["totals"]
    rows.append([
        "TOTAL", "", totals["records"], totals["bytes"],
        totals["index_bytes"], f"{totals['index_coverage'] * 100:.1f}%",
        f"{totals['compression_ratio']:.2f}x", "", "",
    ])
    out(render_table(
        ["file", "fmt", "records", "bytes", "idx bytes", "indexed",
         "compression", "violations", "exceptions"],
        rows,
        title=f"Trace storage for job {args.job_id}",
    ))
    return 0


def cmd_serve(args, out):
    from repro.serve import create_server
    from repro.simfs import SimFileSystem

    fs = SimFileSystem()
    try:
        fs.import_from_directory(args.dir)
    except OSError as exc:
        out(f"serve: cannot load {args.dir}: {exc}")
        return 1
    pool_options = {}
    if args.record_cache is not None:
        pool_options["record_cache_size"] = args.record_cache
    if args.block_cache is not None:
        pool_options["block_cache_size"] = args.block_cache
    server = create_server(
        fs, root=args.root, host=args.host, port=args.port, **pool_options
    )
    jobs = server.pool.job_ids()
    out(f"serving {len(jobs)} job(s) from {args.dir} at {server.url}")
    for job_id in jobs:
        out(f"  {server.url}/jobs/{job_id}")
    out("press Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        out("stopped")
    finally:
        server.shutdown()
    return 0


def cmd_validate(args, out):
    graph = load_dataset(args.dataset, seed=args.seed, num_vertices=args.vertices)
    if args.weighted:
        graph = to_undirected(random_symmetric_weights(graph, seed=args.seed))
    report = validate_graph(graph, expect_undirected=not graph.directed)
    out(f"{args.dataset}: {report.summary()}")
    return 0 if report.ok else 1


# -- parser ---------------------------------------------------------------


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Graft (SIGMOD 2015) reproduction: Pregel engine + debugger",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    datasets_parser = sub.add_parser(
        "datasets", help="list the paper's datasets and stand-ins"
    )
    datasets_parser.add_argument("--seed", type=int, default=0)
    sub.add_parser("premade", help="list the offline-mode premade graphs")

    def add_common(p):
        p.add_argument("--algorithm", required=True,
                       choices=sorted(_algorithm_registry()))
        p.add_argument("--input", default=None,
                       help="adjacency-list file to load instead of --dataset")
        p.add_argument("--undirected", action="store_true",
                       help="treat --input as undirected")
        p.add_argument("--dataset", default="web-BS")
        p.add_argument("--vertices", type=int, default=None,
                       help="stand-in size override")
        p.add_argument("--scale", choices=("demo", "full"), default="demo",
                       help="dataset scale: 'demo' materializes the laptop "
                            "stand-in; 'full' streams the paper-scale graph "
                            "(pair with --store spill / --memory-limit)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--workers", type=int, default=4)
        p.add_argument("--num-workers", type=int, dest="workers",
                       help="alias for --workers")
        p.add_argument("--executor", choices=EXECUTOR_NAMES, default="serial",
                       help="superstep execution backend (results and traces "
                            "are identical across backends)")
        p.add_argument("--columnar", action=argparse.BooleanOptionalAction,
                       default=None,
                       help="force the columnar (packed-batch) or envelope "
                            "message transport; default picks columnar "
                            "automatically (results are identical)")
        p.add_argument("--store", choices=("auto", "memory", "spill"),
                       default=None,
                       help="vertex/message store plane: 'memory' (dicts), "
                            "'spill' (partitioned out-of-core pages + sorted "
                            "run files), or 'auto' (spill when the estimated "
                            "footprint exceeds --memory-limit); results and "
                            "traces are identical either way")
        p.add_argument("--memory-limit", type=int, default=None, metavar="MB",
                       help="memory ceiling in MiB; with --store auto the "
                            "engine spills when the graph estimate exceeds it")
        p.add_argument("--partitions", type=int, default=None,
                       help="partition count for the spill store (decoupled "
                            "from --workers; default max(workers, 32))")
        p.add_argument("--max-supersteps", type=int, default=None)
        p.add_argument("--iterations", type=int, default=10,
                       help="pagerank iterations")
        p.add_argument("--steps", type=int, default=8, help="random-walk steps")
        p.add_argument("--walkers", type=int, default=100,
                       help="random-walk initial walkers per vertex")
        p.add_argument("--source", default=0, help="sssp source vertex id")
        p.add_argument("--k", type=int, default=2, help="k for kcore")

    run_parser = sub.add_parser("run", help="run an algorithm without Graft")
    add_common(run_parser)
    run_parser.add_argument("--show-values", type=int, default=0,
                            help="print the first N final vertex values")

    debug_parser = sub.add_parser("debug", help="run an algorithm under Graft")
    add_common(debug_parser)
    debug_parser.add_argument("--capture-ids", type=int, nargs="*",
                              help="category 1: capture these vertex ids")
    debug_parser.add_argument("--capture-random", type=int, default=0,
                              help="category 2: capture N random vertices")
    debug_parser.add_argument("--neighbors", action="store_true",
                              help="also capture neighbors of selected vertices")
    debug_parser.add_argument("--capture-all-active", action="store_true")
    debug_parser.add_argument("--from-superstep", type=int, default=0)
    debug_parser.add_argument("--max-captures", type=int, default=100_000)
    debug_parser.add_argument("--nonneg-messages", action="store_true",
                              help="category 4: message values must be >= 0")
    debug_parser.add_argument("--nonneg-values", action="store_true",
                              help="category 3: vertex values must be >= 0")
    debug_parser.add_argument("--view",
                              choices=("nodelink", "tabular", "violations"),
                              default="tabular")
    debug_parser.add_argument("--superstep", default=None,
                              help='superstep to display, or "last"')
    debug_parser.add_argument("--reproduce", nargs=2,
                              metavar=("VERTEX", "SUPERSTEP"),
                              help="print the generated test for one context")
    debug_parser.add_argument("--html-report", metavar="PATH",
                              help="write the whole run as an HTML report")
    debug_parser.add_argument("--export-traces", metavar="DIR",
                              help="copy the run's trace files (and index "
                                   "sidecars) into a local directory")
    debug_parser.add_argument("--strict", action="store_true",
                              help="refuse programs with error-severity "
                                   "graft-lint findings before running")
    debug_parser.add_argument("--chaos", metavar="PLAN", default=None,
                              help="inject a fault plan (preset name or JSON "
                                   "file) with checkpointing and recovery "
                                   "enabled; see 'repro chaos presets'")
    debug_parser.add_argument("--checkpoint-every", type=int, default=2,
                              help="checkpoint cadence for --chaos runs "
                                   "(supersteps; default 2)")

    chaos_parser = sub.add_parser(
        "chaos",
        help="deterministic fault injection and recovery verification",
    )
    chaos_sub = chaos_parser.add_subparsers(dest="chaos_command", required=True)
    chaos_sub.add_parser("presets", help="list the shipped fault plans")
    chaos_run_parser = chaos_sub.add_parser(
        "run",
        help="run an algorithm twice (clean + injected) and verify that "
             "recovery reproduces the fault-free results bit-identically",
    )
    add_common(chaos_run_parser)
    chaos_run_parser.add_argument(
        "--plan", required=True,
        help="fault plan: a preset name ('repro chaos presets') or a "
             "JSON plan file",
    )
    chaos_run_parser.add_argument(
        "--checkpoint-every", type=int, default=2,
        help="checkpoint cadence in supersteps (default 2)",
    )
    chaos_run_parser.add_argument("--format", choices=("text", "json"),
                                  default="text")

    san_parser = sub.add_parser(
        "san",
        help="runtime determinism sanitizer (graft-san): run K permuted "
             "message-delivery schedules and report the first divergence",
    )
    add_common(san_parser)
    san_parser.add_argument(
        "--schedules", type=int, default=3,
        help="number of permutation schedules to sweep (default 3)",
    )
    san_parser.add_argument("--format", choices=("text", "json"),
                            default="text")

    lint_parser = sub.add_parser(
        "lint",
        help="statically analyze vertex programs (graft-lint, GL001-GL025)",
    )
    lint_parser.add_argument(
        "targets", nargs="+", metavar="TARGET",
        help="module:Class, a module (all its Computation subclasses), "
             "or a .py file (analyzed without importing)",
    )
    lint_parser.add_argument("--format", choices=("text", "json", "sarif"),
                             default="text")
    lint_parser.add_argument(
        "--sarif", dest="format", action="store_const", const="sarif",
        help="shorthand for --format sarif (SARIF 2.1.0 for code scanning)",
    )
    lint_parser.add_argument(
        "--dataflow", dest="dataflow", action="store_true", default=True,
        help="run the CFG/interval dataflow, determinism, and "
             "interprocedural packs GL009-GL025 (default)",
    )
    lint_parser.add_argument(
        "--no-dataflow", dest="dataflow", action="store_false",
        help="restrict to the cheap pattern rules GL001-GL008",
    )
    lint_parser.add_argument(
        "--explain-cfg", action="store_true",
        help="instead of findings, render each method's control-flow "
             "graph and interval-stamped phase facts, plus the class "
             "call graph, callee summaries, and message-protocol table",
    )

    trace_parser = sub.add_parser(
        "trace", help="inspect exported trace directories"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)
    stats_parser = trace_sub.add_parser(
        "stats",
        help="per-worker storage stats (records, bytes, index coverage, "
             "compression) for one job's traces",
    )
    stats_parser.add_argument("job_id", help="job id the traces were written under")
    stats_parser.add_argument(
        "--dir", required=True,
        help="local directory holding exported traces "
             "(DebugRun.export_traces output)",
    )
    stats_parser.add_argument(
        "--root", default="/graft",
        help="trace root inside the exported tree (default: /graft)",
    )
    stats_parser.add_argument(
        "--json", action="store_true",
        help="emit the job summary as JSON (the debug server's "
             "/jobs/<id> schema, digest included)",
    )

    serve_parser = sub.add_parser(
        "serve",
        help="serve a trace directory over HTTP (views, point queries, "
             "reproduce downloads, profiler endpoints)",
    )
    serve_parser.add_argument(
        "--dir", required=True,
        help="local directory holding exported traces "
             "(DebugRun.export_traces output)",
    )
    serve_parser.add_argument(
        "--root", default="/graft",
        help="trace root inside the exported tree (default: /graft)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=8707,
        help="port to bind (0 picks a free one; default: 8707)",
    )
    serve_parser.add_argument(
        "--record-cache", type=int,
        default=None,
        help="process-wide decoded-record LRU budget shared by every "
             "client (default: 16x a single reader's budget)",
    )
    serve_parser.add_argument(
        "--block-cache", type=int,
        default=None,
        help="process-wide decompressed-block LRU budget (default: 8x a "
             "single reader's budget)",
    )

    validate_parser = sub.add_parser("validate", help="validate an input graph")
    validate_parser.add_argument("--dataset", default="soc-Epinions")
    validate_parser.add_argument("--vertices", type=int, default=None)
    validate_parser.add_argument("--seed", type=int, default=0)
    validate_parser.add_argument("--weighted", action="store_true",
                                 help="validate the weighted-undirected encoding")
    return parser


_COMMANDS = {
    "datasets": cmd_datasets,
    "premade": cmd_premade,
    "run": cmd_run,
    "debug": cmd_debug,
    "chaos": cmd_chaos,
    "san": cmd_san,
    "lint": cmd_lint,
    "trace": cmd_trace,
    "serve": cmd_serve,
    "validate": cmd_validate,
}


def main(argv=None, out=print):
    """CLI entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out)


if __name__ == "__main__":
    sys.exit(main())
