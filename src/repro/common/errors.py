"""Exception hierarchy for the whole library.

Every error raised intentionally by ``repro`` derives from :class:`ReproError`,
so callers can catch one base class at an API boundary. Subsystem bases
(:class:`GraphError`, :class:`PregelError`, :class:`GraftError`,
:class:`SimFsError`) group errors by the package that raises them.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Errors in graph construction, validation, or I/O."""


class VertexNotFoundError(GraphError):
    """A vertex id was referenced that does not exist in the graph."""

    def __init__(self, vertex_id):
        super().__init__(f"vertex {vertex_id!r} not found in graph")
        self.vertex_id = vertex_id


class EdgeNotFoundError(GraphError):
    """An edge was referenced that does not exist in the graph."""

    def __init__(self, source, target):
        super().__init__(f"edge ({source!r} -> {target!r}) not found in graph")
        self.source = source
        self.target = target


class GraphFormatError(GraphError):
    """A graph text file is malformed."""

    def __init__(self, message, line_number=None):
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class PregelError(ReproError):
    """Errors raised by the Pregel engine."""


class ComputeError(PregelError):
    """A user ``compute()`` function raised an exception.

    Wraps the original exception and records which vertex and superstep it
    occurred on so the failure can be located (and captured by Graft).
    """

    def __init__(self, vertex_id, superstep, original):
        super().__init__(
            f"compute() failed for vertex {vertex_id!r} "
            f"in superstep {superstep}: {original!r}"
        )
        self.vertex_id = vertex_id
        self.superstep = superstep
        self.original = original

    def __reduce__(self):
        # Default exception pickling replays __init__ with *args (the
        # formatted message), which doesn't match this signature; the
        # process execution backend needs these to cross a pipe intact.
        return (
            self.__class__,
            (self.vertex_id, self.superstep, self.original),
        )


class MasterComputeError(PregelError):
    """A user ``master_compute()`` function raised an exception."""

    def __init__(self, superstep, original):
        super().__init__(
            f"master_compute() failed in superstep {superstep}: {original!r}"
        )
        self.superstep = superstep
        self.original = original


class AggregatorError(PregelError):
    """An aggregator was misused (unknown name, bad merge, re-registration)."""


class CheckpointError(PregelError):
    """A checkpoint file is missing a header, fails its checksum, or does
    not decode back into engine state. Recovery skips such checkpoints and
    falls back to the next-newest usable one."""


class InjectedFault(PregelError):
    """Base class for failures planted by ``repro.chaos``.

    The engine treats any :class:`InjectedFault` escaping a superstep as a
    machine failure: with checkpointing enabled it rolls back and
    re-executes; without it the fault propagates to the caller.
    """


class InjectedWorkerCrash(InjectedFault):
    """A worker process died mid-superstep (after some compute() calls)."""

    def __init__(self, worker_id, superstep, after_calls=None):
        detail = (
            f" after {after_calls} compute call(s)"
            if after_calls is not None
            else ""
        )
        super().__init__(
            f"injected crash of worker {worker_id} "
            f"in superstep {superstep}{detail}"
        )
        self.worker_id = worker_id
        self.superstep = superstep
        self.after_calls = after_calls

    def __reduce__(self):
        # Like ComputeError: must survive the process backend's pipe.
        return (self.__class__, (self.worker_id, self.superstep, self.after_calls))


class InjectedWriteCrash(InjectedFault):
    """The writing process died mid-append: part of the data landed.

    Models a trace/checkpoint producer crashing between the bytes reaching
    the file and the write completing — the failure that leaves torn frames
    and stale index sidecars behind.
    """

    def __init__(self, path, written, requested):
        super().__init__(
            f"injected crash while appending to {path!r} "
            f"({written} of {requested} bytes landed)"
        )
        self.path = path
        self.written = written
        self.requested = requested

    def __reduce__(self):
        return (self.__class__, (self.path, self.written, self.requested))


class EngineStateError(PregelError):
    """The engine was driven through an invalid state transition."""


class GraftError(ReproError):
    """Errors raised by the Graft debugger."""


class CaptureLimitExceeded(GraftError):
    """The safety-net maximum number of captures was reached.

    Mirrors the paper's adjustable threshold after which Graft stops
    capturing. The capture machinery enforces the limit *silently* (the
    run continues, ``DebugRun.capture_limit_hit`` is set); this exception
    exists for callers who want to escalate that condition themselves::

        if run.capture_limit_hit:
            raise CaptureLimitExceeded(config.max_captures())
    """

    def __init__(self, limit):
        super().__init__(f"capture limit of {limit} reached; capturing stopped")
        self.limit = limit


class StaticAnalysisError(GraftError):
    """graft-lint found error-severity hazards and ``strict`` mode is on.

    Raised by :func:`repro.graft.debug_run` *before* any superstep
    executes; ``findings`` carries the offending
    :class:`repro.analysis.Finding` objects.
    """

    def __init__(self, class_name, findings):
        rule_ids = sorted({f.rule_id for f in findings})
        super().__init__(
            f"static analysis refused {class_name}: "
            f"{len(findings)} error-severity finding(s) "
            f"[{', '.join(rule_ids)}]; run `python -m repro lint` for "
            "details or pass strict=False to run anyway"
        )
        self.class_name = class_name
        self.findings = list(findings)


class TraceError(GraftError):
    """A trace file is missing, unreadable, or malformed."""


class ReplayMismatchError(GraftError):
    """Replay of a captured context diverged from the recorded outcome."""

    def __init__(self, vertex_id, superstep, field, recorded, replayed):
        super().__init__(
            f"replay mismatch for vertex {vertex_id!r} superstep {superstep} "
            f"on {field}: recorded {recorded!r}, replayed {replayed!r}"
        )
        self.vertex_id = vertex_id
        self.superstep = superstep
        self.field = field
        self.recorded = recorded
        self.replayed = replayed


class SimFsError(ReproError):
    """Errors raised by the simulated distributed file system."""


class SimFsFileNotFound(SimFsError):
    """A path was opened for reading that does not exist."""

    def __init__(self, path):
        super().__init__(f"no such file: {path!r}")
        self.path = path


class SimFsFileExists(SimFsError):
    """A path was created exclusively but already exists."""

    def __init__(self, path):
        super().__init__(f"file exists: {path!r}")
        self.path = path


class SimFsTransientError(SimFsError):
    """A write failed but left the file unchanged; retrying may succeed.

    The simulated analogue of a transient HDFS ``IOError`` (datanode
    hiccup, lease timeout). Writers retry these a bounded number of times
    before giving up.
    """

    def __init__(self, path):
        super().__init__(f"transient I/O error appending to {path!r}")
        self.path = path


class SerializationError(ReproError):
    """A value could not be encoded to, or decoded from, trace format."""
