"""Timing helpers for engine metrics and the benchmark harness."""

import time


class Timer:
    """Context manager measuring wall-clock duration with a monotonic clock.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self):
        self._start = None
        self.elapsed = 0.0

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.elapsed = time.perf_counter() - self._start
        return False

    def start(self):
        """Start (or restart) the timer outside a ``with`` block."""
        self._start = time.perf_counter()
        return self

    def stop(self):
        """Stop the timer and return the elapsed seconds."""
        self.elapsed = time.perf_counter() - self._start
        return self.elapsed


def format_duration(seconds):
    """Render a duration in a compact human unit.

    >>> format_duration(0.000002)
    '2.0us'
    >>> format_duration(1.5)
    '1.50s'
    """
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 60.0:
        return f"{seconds:.2f}s"
    minutes, secs = divmod(seconds, 60.0)
    return f"{int(minutes)}m{secs:04.1f}s"
