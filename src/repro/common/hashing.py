"""Stable, run-to-run reproducible hashing.

Python's builtin ``hash()`` is randomized per process for strings, which
would make worker partitioning and RNG derivation non-deterministic across
runs. Everything here is built on BLAKE2b over a canonical byte encoding,
so the same logical value always hashes to the same integer, in any process,
on any platform.
"""

import hashlib
import struct

from repro.common.errors import SerializationError

_HASH_BYTES = 8


def _encode(obj, out):
    """Append a canonical byte encoding of ``obj`` to bytearray ``out``.

    Type tags are included so that e.g. ``1`` and ``"1"`` and ``1.0`` encode
    differently, and container boundaries are explicit so nesting is
    unambiguous.
    """
    if obj is None:
        out += b"N"
    elif obj is True:
        out += b"T"
    elif obj is False:
        out += b"F"
    elif isinstance(obj, int):
        out += b"i" + str(obj).encode("ascii") + b";"
    elif isinstance(obj, float):
        out += b"f" + struct.pack(">d", obj)
    elif isinstance(obj, str):
        data = obj.encode("utf-8")
        out += b"s" + str(len(data)).encode("ascii") + b":" + data
    elif isinstance(obj, bytes):
        out += b"b" + str(len(obj)).encode("ascii") + b":" + obj
    elif isinstance(obj, (list, tuple)):
        out += b"(" if isinstance(obj, tuple) else b"["
        for item in obj:
            _encode(item, out)
        out += b")"
    else:
        raise SerializationError(
            f"cannot stably hash object of type {type(obj).__name__}: {obj!r}"
        )


def stable_hash_bytes(*components):
    """Return the BLAKE2b digest of the canonical encoding of ``components``."""
    out = bytearray()
    _encode(tuple(components), out)
    return hashlib.blake2b(bytes(out), digest_size=_HASH_BYTES).digest()


def stable_hash(*components):
    """Return a non-negative 64-bit integer hash of ``components``.

    Accepts any nesting of None/bool/int/float/str/bytes/list/tuple.

    >>> stable_hash("v", 42) == stable_hash("v", 42)
    True
    >>> stable_hash("v", 42) != stable_hash("v", 43)
    True
    """
    return int.from_bytes(stable_hash_bytes(*components), "big")
