"""Value serialization for trace files.

Graft's trace records contain arbitrary user values: vertex values, edge
values, message payloads, aggregator values. Those must round-trip through
the (simulated) distributed file system as text. This module provides a
small, explicit codec:

- JSON-native scalars (None, bool, int, float, str) pass through unchanged.
- Containers (list, tuple, dict, set, frozenset) are encoded recursively,
  with non-JSON shapes wrapped in a ``{"__t__": ...}`` envelope.
- User value types are registered with :func:`register_value_type`.
  Dataclasses register automatically from their fields; other classes may
  supply ``to_payload()`` / ``from_payload()`` methods.

The codec is intentionally *not* pickle: trace files must stay readable,
diffable text (the paper stresses small, inspectable log files), and decoding
must never execute arbitrary code.
"""

import dataclasses
import json
import math

from repro.common.errors import SerializationError

_TYPE_KEY = "__t__"


class ValueCodec:
    """Encodes and decodes user values to JSON-compatible structures."""

    def __init__(self):
        self._types_by_name = {}
        self._names_by_type = {}
        # Exact-class dispatch memo: encoding is dominated by repeated values
        # of a handful of types (every message value in a trace line, every
        # aggregator snapshot entry), so the common path is one dict lookup
        # instead of an isinstance chain. Subclasses miss the memo and fall
        # back to the original chain, preserving its semantics.
        self._dispatch = {
            type(None): self._encode_identity,
            bool: self._encode_identity,
            str: self._encode_identity,
            int: self._encode_identity,
            float: self._encode_float,
            list: self._encode_list,
            tuple: self._encode_tuple,
            set: self._encode_set,
            frozenset: self._encode_frozenset,
            dict: self._encode_dict,
            bytes: self._encode_bytes,
        }

    def register(self, cls, name=None):
        """Register a value type so instances can round-trip through traces.

        ``cls`` must either be a dataclass or define both ``to_payload()``
        (returning a dict of encodable fields) and a classmethod
        ``from_payload(payload)``. Registration is idempotent for the same
        class; registering a *different* class under an existing name is an
        error.
        """
        name = name or cls.__qualname__
        existing = self._types_by_name.get(name)
        if existing is cls:
            return cls
        if existing is not None:
            raise SerializationError(
                f"value type name {name!r} already registered to {existing!r}"
            )
        is_dataclass = dataclasses.is_dataclass(cls)
        has_methods = hasattr(cls, "to_payload") and hasattr(cls, "from_payload")
        if not (is_dataclass or has_methods):
            raise SerializationError(
                f"{cls!r} must be a dataclass or define to_payload/from_payload"
            )
        self._types_by_name[name] = cls
        self._names_by_type[cls] = name
        self._dispatch[cls] = self._encode_registered
        return cls

    def is_registered(self, cls):
        return cls in self._names_by_type

    def encode(self, value):
        """Encode ``value`` into a JSON-serializable structure."""
        encoder = self._dispatch.get(value.__class__)
        if encoder is not None:
            return encoder(value)
        return self._encode_fallback(value)

    # Per-type encoders, reached through the dispatch memo.

    @staticmethod
    def _encode_identity(value):
        return value

    @staticmethod
    def _encode_float(value):
        if math.isnan(value) or math.isinf(value):
            return {_TYPE_KEY: "float", "repr": repr(value)}
        return value

    def _encode_list(self, value):
        return [self.encode(item) for item in value]

    def _encode_tuple(self, value):
        return {_TYPE_KEY: "tuple", "items": [self.encode(i) for i in value]}

    def _encode_set(self, value, tag="set"):
        try:
            items = sorted(value, key=repr)
        except TypeError:
            items = list(value)
        return {_TYPE_KEY: tag, "items": [self.encode(i) for i in items]}

    def _encode_frozenset(self, value):
        return self._encode_set(value, tag="frozenset")

    def _encode_dict(self, value):
        if all(isinstance(k, str) for k in value) and _TYPE_KEY not in value:
            return {k: self.encode(v) for k, v in value.items()}
        return {
            _TYPE_KEY: "dict",
            "items": [[self.encode(k), self.encode(v)] for k, v in value.items()],
        }

    @staticmethod
    def _encode_bytes(value):
        return {_TYPE_KEY: "bytes", "hex": value.hex()}

    def _encode_registered(self, value):
        return {
            _TYPE_KEY: "obj",
            "type": self._names_by_type[type(value)],
            "fields": self._fields_of(value),
        }

    def _encode_fallback(self, value):
        """Subclasses of the built-in encodable types (memo misses)."""
        if isinstance(value, (bool, str)):
            return value
        if isinstance(value, int):
            return value
        if isinstance(value, float):
            return self._encode_float(value)
        if isinstance(value, list):
            return self._encode_list(value)
        if isinstance(value, tuple):
            return self._encode_tuple(value)
        if isinstance(value, frozenset):
            return self._encode_frozenset(value)
        if isinstance(value, set):
            return self._encode_set(value)
        if isinstance(value, dict):
            return self._encode_dict(value)
        if isinstance(value, bytes):
            return self._encode_bytes(value)
        name = self._names_by_type.get(type(value))
        if name is not None:
            return self._encode_registered(value)
        raise SerializationError(
            f"cannot encode value of unregistered type {type(value).__name__}: "
            f"{value!r}; call register_value_type() on the class first"
        )

    def _fields_of(self, value):
        if dataclasses.is_dataclass(value):
            return {
                field.name: self.encode(getattr(value, field.name))
                for field in dataclasses.fields(value)
            }
        return {k: self.encode(v) for k, v in value.to_payload().items()}

    def decode(self, data):
        """Decode a structure produced by :meth:`encode`."""
        if isinstance(data, list):
            return [self.decode(item) for item in data]
        if not isinstance(data, dict):
            return data
        tag = data.get(_TYPE_KEY)
        if tag is None:
            return {k: self.decode(v) for k, v in data.items()}
        if tag == "tuple":
            return tuple(self.decode(i) for i in data["items"])
        if tag == "set":
            return {self.decode(i) for i in data["items"]}
        if tag == "frozenset":
            return frozenset(self.decode(i) for i in data["items"])
        if tag == "dict":
            return {self.decode(k): self.decode(v) for k, v in data["items"]}
        if tag == "bytes":
            return bytes.fromhex(data["hex"])
        if tag == "float":
            return float(data["repr"])
        if tag == "obj":
            return self._decode_obj(data)
        raise SerializationError(f"unknown type tag {tag!r} in trace data")

    def _decode_obj(self, data):
        name = data["type"]
        cls = self._types_by_name.get(name)
        if cls is None:
            raise SerializationError(
                f"trace references unregistered value type {name!r}; "
                f"import the module defining it before reading this trace"
            )
        fields = {k: self.decode(v) for k, v in data["fields"].items()}
        if dataclasses.is_dataclass(cls):
            return cls(**fields)
        return cls.from_payload(fields)

    def dumps(self, value):
        """Encode ``value`` to a compact one-line JSON string."""
        return json.dumps(self.encode(value), separators=(",", ":"), sort_keys=True)

    def loads(self, text):
        """Decode a JSON string produced by :meth:`dumps`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SerializationError(f"malformed trace line: {exc}") from exc
        return self.decode(data)


#: Process-wide default codec. Algorithm modules register their value types
#: against this at import time, so any trace written by the library can be
#: read back after importing the same modules.
default_codec = ValueCodec()


def register_value_type(cls=None, *, name=None):
    """Register ``cls`` with the default codec. Usable as a decorator.

    >>> import dataclasses
    >>> @register_value_type
    ... @dataclasses.dataclass
    ... class Probe:
    ...     x: int
    >>> decode_value(encode_value(Probe(3)))
    Probe(x=3)
    """
    if cls is None:
        return lambda c: default_codec.register(c, name)
    return default_codec.register(cls, name)


def encode_value(value):
    """Encode with the default codec."""
    return default_codec.encode(value)


def decode_value(data):
    """Decode with the default codec."""
    return default_codec.decode(data)
