"""Shared low-level utilities used by every subsystem.

This package holds the pieces that must behave identically everywhere:
the exception hierarchy, stable (run-to-run reproducible) hashing, seeded
RNG derivation, value serialization for trace files, and timing helpers.
"""

from repro.common.errors import (
    CaptureLimitExceeded,
    GraftError,
    GraphError,
    PregelError,
    ReproError,
    SerializationError,
    SimFsError,
)
from repro.common.hashing import stable_hash, stable_hash_bytes
from repro.common.rng import derive_rng, derive_seed
from repro.common.serialization import (
    ValueCodec,
    decode_value,
    default_codec,
    encode_value,
    register_value_type,
)
from repro.common.timing import Timer, format_duration

__all__ = [
    "CaptureLimitExceeded",
    "GraftError",
    "GraphError",
    "PregelError",
    "ReproError",
    "SerializationError",
    "SimFsError",
    "stable_hash",
    "stable_hash_bytes",
    "derive_rng",
    "derive_seed",
    "ValueCodec",
    "decode_value",
    "default_codec",
    "encode_value",
    "register_value_type",
    "Timer",
    "format_duration",
]
