"""Deterministic RNG derivation.

The engine gives every ``compute()`` call its own RNG seeded from
``(run_seed, vertex_id, superstep)``. Because the derivation inputs are part
of the captured vertex context, Graft can replay a randomized algorithm (the
paper's random walk scenario) and observe the *exact* random choices the
original run made — randomness is just another piece of reproducible context.
"""

import random

from repro.common.hashing import stable_hash


def derive_seed(root_seed, *components):
    """Derive a child seed from a root seed and a path of components.

    The derivation is stable across processes and platforms.
    """
    return stable_hash(root_seed, *components)


def derive_rng(root_seed, *components):
    """Return a ``random.Random`` seeded deterministically from the inputs.

    >>> a = derive_rng(7, "v", 1).random()
    >>> b = derive_rng(7, "v", 1).random()
    >>> a == b
    True
    """
    return random.Random(derive_seed(root_seed, *components))
