"""Cursor pagination for the debug server's list endpoints.

A cursor is an opaque, URL-safe token encoding where the previous page
stopped. The server paginates *sorted, repr-keyed* sequences (the trace
reader's id-ordered superstep tuples), so the natural cursor is the last
key served: the next page starts strictly after it, which stays correct
even if the client re-reads pages in any order. Offset cursors exist for
row lists with no natural key (violations, history).

Tokens are base64url-encoded compact JSON. They are deliberately
transparent-on-inspection (this is a debugging tool), but clients must
treat them as opaque: the only contract is "pass ``next_cursor`` back".
"""

import base64
import binascii
import json

from repro.common.errors import ReproError

#: Page-size bounds: a missing ``limit`` serves DEFAULT_LIMIT rows, and a
#: client cannot ask for more than MAX_LIMIT in one page.
DEFAULT_LIMIT = 100
MAX_LIMIT = 1000


class PaginationError(ReproError):
    """A malformed cursor or limit (the server answers 400)."""


def encode_cursor(payload):
    """Encode a JSON-safe payload into an opaque URL-safe token."""
    raw = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return base64.urlsafe_b64encode(raw.encode("utf-8")).decode("ascii")


def decode_cursor(token):
    """Decode a cursor token back to its payload, or raise PaginationError."""
    try:
        raw = base64.urlsafe_b64decode(token.encode("ascii"))
        payload = json.loads(raw.decode("utf-8"))
    except (ValueError, binascii.Error, UnicodeError) as exc:
        raise PaginationError(f"malformed cursor {token!r}: {exc}") from None
    if not isinstance(payload, dict):
        raise PaginationError(f"malformed cursor {token!r}: not an object")
    return payload


def clamp_limit(limit):
    """Normalize a raw ``limit`` query value into [1, MAX_LIMIT]."""
    if limit is None or limit == "":
        return DEFAULT_LIMIT
    try:
        value = int(limit)
    except (TypeError, ValueError):
        raise PaginationError(f"limit must be an integer, got {limit!r}") from None
    if value < 1:
        raise PaginationError(f"limit must be >= 1, got {value}")
    return min(value, MAX_LIMIT)


def paginate(items, cursor=None, limit=None, key=None):
    """One page of ``items`` plus the cursor for the next page.

    ``items`` must already be sorted. With ``key`` (a function to a
    string), pagination is keyset-based: the page starts strictly after
    the cursor's ``after`` key — stable under a fixed snapshot and O(log n)
    via bisection on the precomputed key list. Without ``key`` it is
    offset-based (cursor carries ``offset``).

    Returns ``(page, next_cursor)`` where ``next_cursor`` is None on the
    last page.
    """
    limit = clamp_limit(limit)
    if key is not None:
        return _paginate_keyset(items, cursor, limit, key)
    start = 0
    if cursor:
        payload = decode_cursor(cursor)
        start = payload.get("offset")
        if not isinstance(start, int) or start < 0:
            raise PaginationError(f"cursor has no valid offset: {cursor!r}")
    page = list(items[start:start + limit])
    next_cursor = None
    if start + limit < len(items):
        next_cursor = encode_cursor({"offset": start + limit})
    return page, next_cursor


def _paginate_keyset(items, cursor, limit, key):
    from bisect import bisect_right

    start = 0
    if cursor:
        payload = decode_cursor(cursor)
        after = payload.get("after")
        if not isinstance(after, str):
            raise PaginationError(f"cursor has no valid key: {cursor!r}")
        keys = [key(item) for item in items]
        start = bisect_right(keys, after)
    page = list(items[start:start + limit])
    next_cursor = None
    if start + limit < len(items):
        next_cursor = encode_cursor({"after": key(page[-1])})
    return page, next_cursor
