"""GiViP-style profiler endpoints computed from persisted run metrics.

GiViP (Arleo et al.) profiles a Pregel run by visualizing message traffic
and per-worker load over supersteps. The debug server reproduces the two
core signals from the per-job ``metrics.json`` that ``debug_run`` persists
next to the trace files:

- the **heatmap**: a superstep × worker matrix of message traffic (with a
  per-superstep aggregate track), normalized so a UI can map intensity
  straight to color, and
- the **skew timeline**: per-superstep compute-time imbalance
  (max worker time over the mean — 1.0 is perfectly balanced), the load
  signal that points at stragglers and hot partitions.

Both operate on the already-JSON document (not live RunMetrics objects),
so a run can be profiled long after the process that executed it is gone.
"""

#: worker_rows layout, from SuperstepMetrics.add_worker_row.
_W_ID, _W_SECONDS, _W_CALLS, _W_MESSAGES, _W_BYTES = range(5)


def message_heatmap(metrics):
    """The superstep × worker message-traffic heatmap.

    ``metrics`` is the ``metrics.json`` document (or None). Returns a dict
    with the sorted ``workers`` axis, one ``cells`` row per superstep
    (worker-aligned message counts, None where a worker sat out the
    superstep), per-superstep totals, and ``max_messages`` so intensities
    normalize client-side. Runs persisted without per-worker rows still
    get the aggregate track; the worker axis is then empty.
    """
    rows = _rows(metrics)
    workers = sorted(
        {row[_W_ID] for step in rows for row in step.get("worker_rows", ())}
    )
    index = {worker_id: i for i, worker_id in enumerate(workers)}
    cells = []
    max_messages = 0
    for step in rows:
        line = [None] * len(workers)
        for row in step.get("worker_rows", ()):
            line[index[row[_W_ID]]] = row[_W_MESSAGES]
            max_messages = max(max_messages, row[_W_MESSAGES])
        cells.append(
            {
                "superstep": step.get("superstep"),
                "messages": line,
                "total_messages": step.get("messages_sent", 0),
                "total_bytes": step.get("bytes_sent", 0),
                "combined": step.get("messages_combined", 0),
                "transport": step.get("transport"),
            }
        )
    return {
        "workers": workers,
        "cells": cells,
        "max_messages": max_messages,
        "total_messages": sum(c["total_messages"] for c in cells),
        "total_bytes": sum(c["total_bytes"] for c in cells),
    }


def worker_skew(metrics):
    """The per-superstep compute-skew timeline.

    Each point carries the superstep's skew factor (max worker compute
    time / mean, None when untimed or single-sourced), the slowest
    worker's id and time, and the mean — enough to draw the GiViP load
    chart and name the straggler. The top-level ``max_skew`` /
    ``worst_superstep`` answer "where was the run most imbalanced?" in one
    field.
    """
    rows = _rows(metrics)
    timeline = []
    max_skew = None
    worst_superstep = None
    for step in rows:
        worker_rows = step.get("worker_rows", ())
        times = [row[_W_SECONDS] for row in worker_rows]
        mean = (sum(times) / len(times)) if times else 0.0
        skew = None
        slowest = None
        if times and mean > 0.0:
            skew = max(times) / mean
            slowest = max(worker_rows, key=lambda row: row[_W_SECONDS])
        timeline.append(
            {
                "superstep": step.get("superstep"),
                "skew": skew,
                "mean_seconds": mean,
                "max_seconds": max(times) if times else 0.0,
                "slowest_worker": None if slowest is None else slowest[_W_ID],
                "workers": len(worker_rows),
                "wall_seconds": step.get("wall_seconds", 0.0),
                "parallel_efficiency": step.get("parallel_efficiency"),
            }
        )
        if skew is not None and (max_skew is None or skew > max_skew):
            max_skew = skew
            worst_superstep = step.get("superstep")
    return {
        "timeline": timeline,
        "max_skew": max_skew,
        "worst_superstep": worst_superstep,
    }


def _rows(metrics):
    if not metrics:
        return []
    return list(metrics.get("rows", ()))
