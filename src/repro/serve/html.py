"""The server's minimal HTML index page.

One self-contained page (no assets, no scripts) listing the served jobs
with links into the JSON API — enough to explore a trace directory from a
browser, in the spirit of the paper's GUI, without pretending to be it.
The real data surface is the JSON API; see docs/serve.md.
"""

from html import escape

_STYLE = (
    "body{font-family:monospace;margin:2em}"
    "table{border-collapse:collapse}"
    "td,th{border:1px solid #999;padding:4px 8px;text-align:left}"
    "th{background:#eee}"
    ".digest{color:#666;font-size:smaller}"
)

_VIEW_LINKS = ("nodelink", "tabular", "violations")
_PROFILE_LINKS = ("heatmap", "skew")


def index_page(pool):
    """Render the job index for a :class:`~repro.serve.sessions.ReaderPool`.

    Deliberately cheap: only job ids (a directory listing) and *already
    computed* digests are shown — rendering the index never forces trace
    reads, so hitting ``/`` on a server over hundreds of cold jobs stays
    instant.
    """
    rows = []
    for job_id in pool.job_ids():
        digest = pool.cached_etag(job_id)
        safe = escape(job_id, quote=True)
        views = " ".join(
            f'<a href="/jobs/{safe}/views/{name}">{name}</a>'
            for name in _VIEW_LINKS
        )
        profile = " ".join(
            f'<a href="/jobs/{safe}/profile/{name}">{name}</a>'
            for name in _PROFILE_LINKS
        )
        rows.append(
            "<tr>"
            f'<td><a href="/jobs/{safe}">{safe}</a></td>'
            f"<td>{views}</td>"
            f"<td>{profile}</td>"
            f'<td class="digest">{escape(digest[:16]) if digest else "(not computed)"}</td>'
            "</tr>"
        )
    body = "\n".join(rows) or '<tr><td colspan="4">no jobs found</td></tr>'
    return (
        "<!DOCTYPE html>\n"
        "<html><head><title>graft debug server</title>"
        f"<style>{_STYLE}</style></head><body>"
        "<h1>graft debug server</h1>"
        f'<p><a href="/api">API table</a> — <a href="/stats">cache stats</a></p>'
        "<table><tr><th>job</th><th>views</th><th>profile</th>"
        "<th>digest</th></tr>"
        f"{body}"
        "</table></body></html>"
    )
