"""The HTTP layer: a threading stdlib server around the router.

:class:`DebugServer` wraps :class:`http.server.ThreadingHTTPServer` — one
OS thread per in-flight request, all of them reading through the single
shared :class:`~repro.serve.sessions.ReaderPool`. The handler does exactly
two jobs the router doesn't:

1. **Conditional requests.** Every ``/jobs/<id>/...`` response carries an
   ``ETag`` equal to the job's canonical trace digest. A request whose
   ``If-None-Match`` equals that digest is answered ``304 Not Modified``
   *before* the route handler runs: once the digest is cached, the
   revalidation path performs zero trace reads (asserted against simfs
   read accounting in the test suite). Trace directories are immutable
   once imported, so a digest never goes stale.
2. **Transport framing.** Status line, Content-Length, HEAD bodies,
   connection errors.

Everything with actual logic lives in :mod:`repro.serve.router` and is
tested by direct call; the socket layer stays this thin on purpose.
"""

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serve.router import Router
from repro.serve.sessions import DEFAULT_ROOT, ReaderPool


class DebugServer:
    """A running (or startable) debug service over one trace directory."""

    def __init__(self, filesystem, root=DEFAULT_ROOT, host="127.0.0.1",
                 port=0, pool=None):
        self.pool = pool or ReaderPool(filesystem, root=root)
        self.router = Router(self.pool)
        self._httpd = ThreadingHTTPServer(
            (host, port), _make_handler(self.router)
        )
        self._httpd.daemon_threads = True
        self._thread = None

    @property
    def address(self):
        """``(host, port)`` actually bound (port 0 resolves here)."""
        return self._httpd.server_address[:2]

    @property
    def url(self):
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self):
        """Serve in a daemon thread; returns self (for ``with``-less use)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="graft-serve",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self):
        """Serve on the calling thread (the ``repro serve`` foreground path)."""
        self._httpd.serve_forever()

    def shutdown(self):
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.shutdown()


def create_server(filesystem, root=DEFAULT_ROOT, host="127.0.0.1", port=0,
                  **pool_options):
    """Build a :class:`DebugServer` with its own pool over ``filesystem``."""
    pool = ReaderPool(filesystem, root=root, **pool_options)
    return DebugServer(filesystem, root=root, host=host, port=port, pool=pool)


def _make_handler(router):
    """A BaseHTTPRequestHandler subclass bound to one router instance."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "graft-serve/1.0"

        def do_GET(self):
            self._respond(include_body=True)

        def do_HEAD(self):
            self._respond(include_body=False)

        def _respond(self, include_body):
            etag = self._not_modified_etag()
            if etag is not None:
                # The zero-IO revalidation path: the digest matched the
                # client's validator, so the route handler never runs and
                # no trace file is touched.
                self.send_response(304)
                self.send_header("ETag", f'"{etag}"')
                self.end_headers()
                return
            response = router.handle(self.command, self.path)
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            self.send_header("Content-Length", str(len(response.body)))
            if response.etag:
                self.send_header("ETag", f'"{response.etag}"')
                self.send_header("Cache-Control", "private, must-revalidate")
            self.end_headers()
            if include_body:
                self.wfile.write(response.body)

        def _not_modified_etag(self):
            """The job digest iff If-None-Match revalidates this request.

            Only consults the pool's *cached* digest: a cold job (digest
            not yet computed) never 304s, because proving a match would
            cost the very reads the 304 exists to avoid.
            """
            validator = self.headers.get("If-None-Match")
            if not validator:
                return None
            job_id = router.job_id_of(self.path)
            if job_id is None:
                return None
            etag = router.pool.cached_etag(job_id)
            if etag is None:
                return None
            candidates = {
                tag.strip().strip('"')
                for tag in validator.split(",")
            }
            if etag in candidates or "*" in candidates:
                return etag
            return None

        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            pass  # request logging is the caller's business, not stderr's

    return Handler
