"""Shared read sessions over a trace directory: the server's hot core.

One :class:`ReaderPool` serves every request thread. It discovers the jobs
under a trace root, hands out one shared lazy
:class:`~repro.graft.trace.TraceReader` per job, and — the point — makes
all of them draw on a *single* record LRU and a *single* block LRU, so the
server's decoded-record memory is a process-wide budget instead of
per-client, per-job caches that multiply with traffic.

Everything a job can answer is immutable once its files are on the file
system (trace files are append-only and the server mounts completed runs),
so the pool caches aggressively: storage stats, the canonical trace
digest (the ETag), the persisted metrics document, and the reader itself
are each computed once under a per-job lock and shared forever after.

:func:`job_summary` is the one serializer for "describe this job" — the
``/jobs`` endpoints and ``repro trace stats --json`` both emit exactly
this shape.
"""

import threading

from repro.common.errors import TraceError
from repro.graft.trace import (
    DEFAULT_BLOCK_CACHE,
    DEFAULT_RECORD_CACHE,
    _LRUCache,
    TraceReader,
    canonical_trace_digest,
    job_directory,
    load_job_metrics,
    trace_stats,
)

DEFAULT_ROOT = "/graft"

#: Process-wide LRU budgets: how many decoded records / decompressed block
#: payloads the whole server keeps hot, across all jobs and clients.
DEFAULT_POOL_RECORD_CACHE = 16 * DEFAULT_RECORD_CACHE
DEFAULT_POOL_BLOCK_CACHE = 8 * DEFAULT_BLOCK_CACHE


class JobSession:
    """One job's shared read-side state; all fields build lazily, once."""

    def __init__(self, pool, job_id):
        self.job_id = job_id
        self._pool = pool
        self._lock = threading.Lock()
        self._reader = None
        self._etag = None
        self._stats = None
        self._metrics = ()          # sentinel: () = not loaded, None = absent

    @property
    def reader(self):
        """The job's shared lazy TraceReader (built on first touch)."""
        reader = self._reader
        if reader is None:
            with self._lock:
                if self._reader is None:
                    self._reader = TraceReader(
                        self._pool.filesystem,
                        self.job_id,
                        root=self._pool.root,
                        mode="lazy",
                        record_cache=self._pool.record_cache,
                        block_cache=self._pool.block_cache,
                    )
                reader = self._reader
        return reader

    @property
    def etag(self):
        """The job's canonical trace digest, computed once and pinned.

        This is the strong validator every ``/jobs/...`` response carries:
        byte-identical traces — whatever backend, worker count, or storage
        format produced them — share it, and a cached client revalidates
        with one in-memory string comparison.
        """
        etag = self._etag
        if etag is None:
            with self._lock:
                if self._etag is None:
                    self._etag = canonical_trace_digest(
                        self._pool.filesystem, self.job_id,
                        root=self._pool.root,
                    )
                etag = self._etag
        return etag

    @property
    def cached_etag(self):
        """The digest if already computed, else None — never touches disk."""
        return self._etag

    @property
    def stats(self):
        """The job's ``trace_stats`` document (per-file storage stats)."""
        stats = self._stats
        if stats is None:
            with self._lock:
                if self._stats is None:
                    self._stats = trace_stats(
                        self._pool.filesystem, self.job_id,
                        root=self._pool.root,
                    )
                stats = self._stats
        return stats

    @property
    def metrics(self):
        """The persisted metrics.json document, or None when absent."""
        metrics = self._metrics
        if metrics == ():
            with self._lock:
                if self._metrics == ():
                    self._metrics = load_job_metrics(
                        self._pool.filesystem, self.job_id,
                        root=self._pool.root,
                    )
                metrics = self._metrics
        return metrics

    def summary(self, digest=True):
        """This job's :func:`job_summary`, served from the cached pieces."""
        return job_summary(
            self._pool.filesystem,
            self.job_id,
            root=self._pool.root,
            stats=self.stats,
            digest=self.etag if digest else None,
            metrics=self.metrics,
            supersteps=self.reader.supersteps(),
        )


class ReaderPool:
    """Job discovery plus shared, budgeted read sessions.

    ``record_cache_size`` / ``block_cache_size`` are *process-wide*
    budgets: every reader the pool creates shares the same two LRUs (keys
    embed the file path, so jobs never collide). A pool over a 100-job
    directory therefore holds at most one budget's worth of decoded
    records, no matter how many jobs are being inspected concurrently.
    """

    def __init__(
        self,
        filesystem,
        root=DEFAULT_ROOT,
        record_cache_size=DEFAULT_POOL_RECORD_CACHE,
        block_cache_size=DEFAULT_POOL_BLOCK_CACHE,
    ):
        self.filesystem = filesystem
        self.root = root
        self.record_cache = _LRUCache(record_cache_size)
        self.block_cache = _LRUCache(block_cache_size)
        self._sessions = {}
        self._lock = threading.Lock()

    def job_ids(self):
        """Sorted ids of the jobs under the root (dirs with a .trace file)."""
        if not self.filesystem.is_dir(self.root):
            return []
        found = []
        for child in self.filesystem.list_dir(self.root):
            if not self.filesystem.is_dir(child):
                continue
            if self.filesystem.glob_files(child, suffix=".trace"):
                found.append(child.rsplit("/", 1)[-1])
        return sorted(found)

    def session(self, job_id):
        """The shared :class:`JobSession` for one job; raises on unknown ids."""
        session = self._sessions.get(job_id)
        if session is None:
            with self._lock:
                session = self._sessions.get(job_id)
                if session is None:
                    directory = job_directory(job_id, self.root)
                    if not self.filesystem.is_dir(directory):
                        raise TraceError(
                            f"no trace directory for job {job_id!r}"
                        )
                    session = JobSession(self, job_id)
                    self._sessions[job_id] = session
        return session

    def reader(self, job_id):
        return self.session(job_id).reader

    def etag(self, job_id):
        return self.session(job_id).etag

    def cached_etag(self, job_id):
        """The job's ETag if already computed — the 304 path's zero-IO probe."""
        session = self._sessions.get(job_id)
        return session.cached_etag if session is not None else None

    def cache_stats(self):
        """Hit/miss counters of the two shared LRUs (the /stats endpoint)."""
        return {
            "record_cache": {
                "hits": self.record_cache.hits,
                "misses": self.record_cache.misses,
                "entries": len(self.record_cache),
            },
            "block_cache": {
                "hits": self.block_cache.hits,
                "misses": self.block_cache.misses,
                "entries": len(self.block_cache),
            },
        }


def job_summary(filesystem, job_id, root=DEFAULT_ROOT, stats=None,
                digest=True, metrics=None, supersteps=None):
    """Describe one job as a JSON-safe dict.

    The single serializer behind the server's ``/jobs`` endpoints *and*
    ``repro trace stats --json`` — the two must never drift apart, so they
    are the same function. Callers with cached pieces (the pool) pass them
    in; bare callers (the CLI) let everything be computed here.

    ``digest`` may be True (compute), a precomputed digest string, or
    None/False (omit — it is the one expensive field).
    """
    if stats is None:
        stats = trace_stats(filesystem, job_id, root=root)
    if digest is True:
        digest = canonical_trace_digest(filesystem, job_id, root=root)
    if metrics is None:
        metrics = load_job_metrics(filesystem, job_id, root=root)
    totals = stats["totals"]
    summary = {
        "job_id": job_id,
        "digest": digest or None,
        "files": stats["files"],
        "skipped": stats["skipped"],
        "totals": totals,
        "violations": _count_or_none(stats["files"], "violations"),
        "exceptions": _count_or_none(stats["files"], "exceptions"),
        "metrics": None if metrics is None else metrics.get("summary"),
        "metrics_summary_line": (
            None if metrics is None else metrics.get("summary_line")
        ),
    }
    if supersteps is not None:
        summary["supersteps"] = list(supersteps)
    return summary


def _count_or_none(files, field):
    """Sum a per-file counter; None when any file lacks it (v1 traces)."""
    total = 0
    for info in files:
        value = info.get(field)
        if value is None:
            return None
        total += value
    return total
