"""URL routing and JSON rendering for the debug server.

The router is transport-free: it maps ``(method, path, query)`` to a
:class:`Response` and knows nothing about sockets, so every endpoint is
testable by direct call and the HTTP layer in :mod:`repro.serve.app`
stays a thin adapter. Handlers read through a shared
:class:`~repro.serve.sessions.ReaderPool`; nothing here mutates anything,
which is what makes the whole surface safe to serve from many threads.

Endpoint map (see docs/serve.md for the full API table)::

    /                                   HTML index
    /api                                this route table, as JSON
    /healthz                            liveness probe
    /stats                              shared-cache hit/miss counters
    /jobs                               job summaries (digest = ETag)
    /jobs/<job>                         one job's summary
    /jobs/<job>/views/nodelink          node-link view data (paginated)
    /jobs/<job>/views/tabular           tabular rows (paginated, ?q= search)
    /jobs/<job>/views/violations        violations + exceptions (paginated)
    /jobs/<job>/views/<name>/render     the one-shot renderer's exact text
    /jobs/<job>/vertex/<vid>            point query (?superstep=K)
    /jobs/<job>/vertex/<vid>/history    that vertex across supersteps
    /jobs/<job>/reproduce/<vid>/<ss>    context JSON or generated pytest
    /jobs/<job>/profile/heatmap         GiViP-style message heatmap
    /jobs/<job>/profile/skew            worker-skew timeline
    /jobs/<job>/metrics                 the persisted metrics.json

Violation values and vertex ids travel through the trace codec's
``encode`` — the same JSON-safe value domain the trace files use — so
anything capturable is servable.
"""

import json
from urllib.parse import parse_qs, urlsplit

from repro.common.errors import GraftError, ReproError, TraceError
from repro.common.serialization import default_codec
from repro.graft.views import NodeLinkView, TabularView, ViolationsView
from repro.serve.pagination import PaginationError, paginate
from repro.serve.profile import message_heatmap, worker_skew

JSON_TYPE = "application/json"
TEXT_TYPE = "text/plain; charset=utf-8"
HTML_TYPE = "text/html; charset=utf-8"
PYTHON_TYPE = "text/x-python; charset=utf-8"


class HttpError(ReproError):
    """An error with a definite HTTP status (rendered as a JSON body)."""

    def __init__(self, status, message):
        super().__init__(message)
        self.status = status


class Response:
    """One rendered response: status, content type, body bytes, ETag."""

    def __init__(self, status, content_type, body, etag=None):
        self.status = status
        self.content_type = content_type
        self.body = body
        self.etag = etag

    @classmethod
    def json(cls, payload, status=200, etag=None):
        body = json.dumps(
            payload, indent=2, sort_keys=True, default=repr
        ).encode("utf-8")
        return cls(status, JSON_TYPE, body, etag=etag)

    @classmethod
    def text(cls, text, content_type=TEXT_TYPE, status=200, etag=None):
        return cls(status, content_type, text.encode("utf-8"), etag=etag)


class Router:
    """Maps request paths onto the reader pool. One instance, all threads."""

    def __init__(self, pool, codec=None):
        self.pool = pool
        self.codec = codec or default_codec

    # -- entry point ------------------------------------------------------

    def handle(self, method, target):
        """Dispatch one request target (path + query string) to a Response."""
        if method not in ("GET", "HEAD"):
            return Response.json(
                {"error": f"method {method} not allowed"}, status=405
            )
        split = urlsplit(target)
        parts = [p for p in split.path.split("/") if p]
        query = {
            key: values[-1]
            for key, values in parse_qs(split.query, keep_blank_values=True).items()
        }
        try:
            return self._dispatch(parts, query)
        except HttpError as exc:
            return Response.json({"error": str(exc)}, status=exc.status)
        except (PaginationError,) as exc:
            return Response.json({"error": str(exc)}, status=400)
        except (TraceError, GraftError) as exc:
            return Response.json({"error": str(exc)}, status=404)

    def job_id_of(self, target):
        """The job id a request target addresses, or None (the ETag scope)."""
        parts = [p for p in urlsplit(target).path.split("/") if p]
        if len(parts) >= 2 and parts[0] == "jobs":
            return parts[1]
        return None

    # -- dispatch ---------------------------------------------------------

    def _dispatch(self, parts, query):
        if not parts:
            from repro.serve.html import index_page

            return Response.text(index_page(self.pool), content_type=HTML_TYPE)
        head = parts[0]
        if head == "healthz" and len(parts) == 1:
            return Response.json({"ok": True})
        if head == "api" and len(parts) == 1:
            return Response.json({"endpoints": _ENDPOINTS})
        if head == "stats" and len(parts) == 1:
            return Response.json(self.pool.cache_stats())
        if head == "jobs":
            return self._dispatch_jobs(parts[1:], query)
        raise HttpError(404, f"no such endpoint: /{'/'.join(parts)}")

    def _dispatch_jobs(self, parts, query):
        if not parts:
            jobs = [
                self.pool.session(job_id).summary()
                for job_id in self.pool.job_ids()
            ]
            return Response.json({"jobs": jobs})
        session = self.pool.session(parts[0])
        etag = session.etag
        rest = parts[1:]
        if not rest:
            return Response.json(session.summary(), etag=etag)
        head = rest[0]
        if head == "views":
            return self._views(session, rest[1:], query, etag)
        if head == "vertex":
            return self._vertex(session, rest[1:], query, etag)
        if head == "reproduce":
            return self._reproduce(session, rest[1:], query, etag)
        if head == "profile":
            return self._profile(session, rest[1:], etag)
        if head == "metrics" and len(rest) == 1:
            metrics = session.metrics
            if metrics is None:
                raise HttpError(
                    404, f"job {session.job_id!r} has no metrics.json"
                )
            return Response.json(metrics, etag=etag)
        raise HttpError(404, f"no such job endpoint: {head!r}")

    # -- the three Graft views --------------------------------------------

    def _views(self, session, parts, query, etag):
        if not parts or len(parts) > 2:
            raise HttpError(404, "expected /views/<name>[/render]")
        name = parts[0]
        render = len(parts) == 2
        if render and parts[1] != "render":
            raise HttpError(404, f"no such view endpoint: {parts[1]!r}")
        if name == "nodelink":
            view = NodeLinkView(
                session.reader, None, superstep=_superstep(query)
            )
            if render:
                return Response.text(view.render(), etag=etag)
            return self._nodelink_json(view, query, etag)
        if name == "tabular":
            view = TabularView(session.reader, superstep=_superstep(query))
            if render:
                return Response.text(view.render(), etag=etag)
            return self._tabular_json(view, query, etag)
        if name == "violations":
            view = ViolationsView(session.reader)
            if render:
                return Response.text(
                    view.render(superstep=_superstep(query)), etag=etag
                )
            return self._violations_json(view, query, etag)
        raise HttpError(404, f"no such view: {name!r}")

    def _nodelink_json(self, view, query, etag):
        captured, small = view.nodes()
        page, next_cursor = paginate(
            captured,
            cursor=query.get("cursor"),
            limit=query.get("limit"),
            key=lambda record: repr(record.vertex_id),
        )
        aggregators, globals_data = view.aggregator_panel()
        encode = self.codec.encode
        nodes = [self._record_json(record) for record in page]
        edges = [
            [encode(record.vertex_id), encode(target), encode(value)]
            for record in page
            for target, value in sorted(
                record.edges_after.items(), key=lambda e: repr(e[0])
            )
        ]
        return Response.json(
            {
                "superstep": view.superstep,
                "supersteps": view._steps,
                "status_boxes": view.status_boxes(),
                "aggregators": {
                    name: encode(value)
                    for name, value in sorted(aggregators.items())
                },
                "globals": globals_data,
                "nodes": nodes,
                "edges": edges,
                "small_nodes": [encode(v) for v in small],
                "total_nodes": len(captured),
                "next_cursor": next_cursor,
            },
            etag=etag,
        )

    def _tabular_json(self, view, query, etag):
        rows = view.search(query["q"]) if "q" in query else list(view.rows())
        page, next_cursor = paginate(
            rows,
            cursor=query.get("cursor"),
            limit=query.get("limit"),
            key=lambda record: repr(record.vertex_id),
        )
        return Response.json(
            {
                "superstep": view.superstep,
                "supersteps": view._steps,
                "query": query.get("q"),
                "rows": [self._record_json(record) for record in page],
                "summaries": [view.row_summary(record) for record in page],
                "total_rows": len(rows),
                "next_cursor": next_cursor,
            },
            etag=etag,
        )

    def _violations_json(self, view, query, etag):
        superstep = _superstep(query)
        encode = self.codec.encode
        violations = [
            {
                "vertex_id": encode(vertex_id),
                "superstep": step,
                "kind": kind,
                "details": encode(details),
            }
            for vertex_id, step, kind, details in view.violation_rows(superstep)
        ]
        exceptions = [
            {
                "vertex_id": encode(vertex_id),
                "superstep": step,
                "summary": summary,
                "traceback": traceback_text,
            }
            for vertex_id, step, summary, traceback_text
            in view.exception_rows(superstep)
        ]
        page, next_cursor = paginate(
            violations, cursor=query.get("cursor"), limit=query.get("limit")
        )
        return Response.json(
            {
                "superstep": superstep,
                "violations": page,
                "exceptions": exceptions,
                "total_violations": len(violations),
                "supersteps_with_violations": view.supersteps_with_violations(),
                "next_cursor": next_cursor,
            },
            etag=etag,
        )

    # -- point queries ----------------------------------------------------

    def _vertex(self, session, parts, query, etag):
        if not parts or len(parts) > 2:
            raise HttpError(404, "expected /vertex/<vid>[/history]")
        vertex_id = _vertex_id(parts[0])
        if len(parts) == 2:
            if parts[1] != "history":
                raise HttpError(
                    404, f"no such vertex endpoint: {parts[1]!r}"
                )
            records = session.reader.history(vertex_id)
            if not records:
                raise HttpError(
                    404, f"vertex {vertex_id!r} was never captured"
                )
            page, next_cursor = paginate(
                records, cursor=query.get("cursor"), limit=query.get("limit")
            )
            return Response.json(
                {
                    "vertex_id": self.codec.encode(vertex_id),
                    "records": [self._record_json(r) for r in page],
                    "total_records": len(records),
                    "next_cursor": next_cursor,
                },
                etag=etag,
            )
        superstep = _superstep(query)
        if superstep is None:
            raise HttpError(400, "point queries need ?superstep=K")
        record = session.reader.get(vertex_id, superstep)
        return Response.json(self._record_json(record), etag=etag)

    # -- reproduce-context downloads --------------------------------------

    def _reproduce(self, session, parts, query, etag):
        if len(parts) != 2:
            raise HttpError(404, "expected /reproduce/<vid>/<superstep>")
        vertex_id = _vertex_id(parts[0])
        try:
            superstep = int(parts[1])
        except ValueError:
            raise HttpError(
                400, f"superstep must be an integer, got {parts[1]!r}"
            ) from None
        record = session.reader.get(vertex_id, superstep)
        name = query.get("computation")
        if not name:
            return Response.json(
                {
                    "job_id": session.job_id,
                    "record": self._record_json(record),
                    "note": (
                        "pass ?computation=<repro.algorithms class> for a "
                        "generated pytest file"
                    ),
                },
                etag=etag,
            )
        factory = _resolve_computation(name)
        from repro.graft.reproducer import generate_test_code

        code = generate_test_code(record, factory, job_id=session.job_id)
        return Response.text(code, content_type=PYTHON_TYPE, etag=etag)

    # -- profiler ---------------------------------------------------------

    def _profile(self, session, parts, etag):
        if len(parts) != 1 or parts[0] not in ("heatmap", "skew"):
            raise HttpError(404, "expected /profile/heatmap or /profile/skew")
        metrics = session.metrics
        if metrics is None:
            raise HttpError(
                404,
                f"job {session.job_id!r} has no metrics.json "
                "(persisted by debug_run at completion)",
            )
        if parts[0] == "heatmap":
            payload = message_heatmap(metrics)
        else:
            payload = worker_skew(metrics)
        payload["job_id"] = session.job_id
        return Response.json(payload, etag=etag)

    # -- record serialization ---------------------------------------------

    def _record_json(self, record):
        """One capture record as JSON: codec-encoded fields plus flags."""
        from repro.graft.capture import record_to_row, vertex_field_names

        row = record_to_row(record, self.codec)
        payload = dict(zip(vertex_field_names(), row[1:]))
        payload["violations"] = [
            {
                "vertex_id": self.codec.encode(v.vertex_id),
                "superstep": v.superstep,
                "kind": v.kind,
                "details": self.codec.encode(v.details),
            }
            for v in record.violations
        ]
        payload["exception"] = (
            None if record.exception is None else record.exception.summary()
        )
        return payload


def _superstep(query):
    """The ?superstep= value as an int, or None when absent."""
    raw = query.get("superstep")
    if raw is None or raw == "" or raw == "last":
        return None
    try:
        return int(raw)
    except ValueError:
        raise HttpError(
            400, f"superstep must be an integer, got {raw!r}"
        ) from None


def _vertex_id(raw):
    """A path segment as a vertex id: int when it parses, else the string."""
    try:
        return int(raw)
    except ValueError:
        return raw


def _resolve_computation(name):
    """A zero-arg computation factory from the repro.algorithms namespace.

    The server cannot import arbitrary user code by request (that would be
    remote code execution); only the algorithm registry that ``repro
    debug`` itself exposes is reachable.
    """
    import inspect

    import repro.algorithms as algorithms

    candidate = getattr(algorithms, name, None)
    if candidate is None or not inspect.isclass(candidate):
        available = sorted(
            attr for attr in dir(algorithms)
            if inspect.isclass(getattr(algorithms, attr))
            and not attr.startswith("_")
        )
        raise HttpError(
            400,
            f"unknown computation {name!r}; available: {', '.join(available)}",
        )
    try:
        candidate()
    except TypeError as exc:
        raise HttpError(
            400,
            f"computation {name!r} is not zero-arg constructible: {exc}",
        ) from None
    return candidate


_ENDPOINTS = {
    "/": "HTML index of the served jobs",
    "/api": "this endpoint table",
    "/healthz": "liveness probe",
    "/stats": "shared record/block cache hit counters",
    "/jobs": "job summaries with canonical digests (the ETag values)",
    "/jobs/<job>": "one job's summary",
    "/jobs/<job>/views/nodelink": "node-link view data (?superstep, ?cursor, ?limit)",
    "/jobs/<job>/views/tabular": "tabular rows (?superstep, ?q search, ?cursor, ?limit)",
    "/jobs/<job>/views/violations": "violations + exceptions (?superstep, ?cursor)",
    "/jobs/<job>/views/<name>/render": "the one-shot renderer's exact text output",
    "/jobs/<job>/vertex/<vid>": "point query (?superstep=K required)",
    "/jobs/<job>/vertex/<vid>/history": "one vertex across supersteps",
    "/jobs/<job>/reproduce/<vid>/<ss>": "context JSON, or pytest file with ?computation=",
    "/jobs/<job>/profile/heatmap": "GiViP-style superstep x worker message heatmap",
    "/jobs/<job>/profile/skew": "per-superstep worker compute-skew timeline",
    "/jobs/<job>/metrics": "the persisted metrics.json document",
}
