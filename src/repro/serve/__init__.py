"""Graft-as-a-service: the long-running ``repro serve`` debug server.

The paper's GUI is a browser talking to a server that answers queries
over the per-job trace files on HDFS. This package is that server for the
reproduction: a stdlib-only, multi-threaded HTTP service over a trace
directory (a :class:`~repro.simfs.SimFileSystem`, usually imported from a
``DebugRun.export_traces`` directory) exposing

- job discovery with storage stats and canonical digests,
- the three Graft views (node-link, tabular, violations) with cursor
  pagination, each byte-identical to its one-shot renderer,
- lazy point queries and per-vertex history over the indexed trace store,
- reproduce-context downloads through the Context Reproducer, and
- GiViP-style profiler endpoints (message-traffic heatmap, worker-skew
  timeline) computed from the persisted per-job ``metrics.json``.

Concurrency model: a shared :class:`~repro.serve.sessions.ReaderPool`
hands every request thread the same lazy
:class:`~repro.graft.trace.TraceReader` per job, all of them drawing on
one process-wide record LRU and one block LRU (a global memory budget,
not per-client). Responses carry an ``ETag`` equal to the job's canonical
trace digest; ``If-None-Match`` hits answer 304 without touching the
trace files at all.

See docs/serve.md for the API table and caching semantics.
"""

from repro.serve.app import DebugServer, create_server
from repro.serve.pagination import decode_cursor, encode_cursor, paginate
from repro.serve.sessions import ReaderPool, job_summary

__all__ = [
    "DebugServer",
    "ReaderPool",
    "create_server",
    "decode_cursor",
    "encode_cursor",
    "job_summary",
    "paginate",
]
