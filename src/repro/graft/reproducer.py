"""Reproduce: replay a captured compute() call, exactly.

This is the paper's Context Reproducer (Section 3.3) — "the most
challenging component of Graft to implement" — in two complementary forms:

- :func:`replay_record` / :class:`ReplayHarness` rebuild the captured
  context (value, edges, incoming messages, aggregators, global data, and
  the RNG derivation inputs) and re-invoke the user's ``compute()``
  in-process. With ``trace_lines=True`` a ``sys.settrace`` tracer records
  exactly which source lines of the user's code executed — the line-by-line
  IDE replay of the paper. With ``verify=True`` the replayed outcome (sent
  messages, post-value, halt decision, post-edges) is compared against what
  the original run recorded.

- :func:`generate_test_code` emits a standalone pytest file (the paper's
  generated JUnit test, Figure 6) that rebuilds the same context from
  literals and asserts the recorded outcome, so the user can paste it into
  an IDE, breakpoint ``compute()``, and step.

Because the per-vertex RNG is derived from ``(run_seed, vertex_id,
superstep)`` — all part of the record — even randomized algorithms (the
random-walk scenario) replay with the exact random choices of the original
run.
"""

import dataclasses
import inspect
import sys
from dataclasses import dataclass, field

from repro.common.errors import AggregatorError, GraftError
from repro.graft import codegen_templates
from repro.graft.capture import MasterContextRecord, VertexContextRecord
from repro.pregel.context import ComputeContext, ComputeServices
from repro.pregel.messages import Envelope


# -- replay services & harness ------------------------------------------------


class _ReplayServices(ComputeServices):
    """Stands in for a worker: aggregators from a snapshot, sends collected."""

    def __init__(self, aggregators):
        self._aggregators = dict(aggregators)
        self.aggregated = []
        self.sent = []
        self.added_vertices = []
        self.removed_vertices = []

    def aggregated_value(self, name):
        if name not in self._aggregators:
            raise AggregatorError(
                f"aggregator {name!r} not in the captured snapshot: "
                f"{sorted(self._aggregators)}"
            )
        return self._aggregators[name]

    def aggregate(self, name, contribution):
        self.aggregated.append((name, contribution))

    def emit(self, envelope):
        self.sent.append(envelope)

    def request_add_vertex(self, vertex_id, value):
        self.added_vertices.append((vertex_id, value))

    def request_remove_vertex(self, vertex_id):
        self.removed_vertices.append(vertex_id)


@dataclass
class ReplayOutcome:
    """What one replayed compute() call did."""

    value: object
    edges: dict
    sent: list                    # [(target, value), ...]
    halted: bool
    aggregated: list = field(default_factory=list)
    exception: object = None      # the raised exception object, if any

    def summary(self):
        if self.exception is not None:
            return f"raised {type(self.exception).__name__}: {self.exception}"
        return (
            f"value={self.value!r}, {len(self.sent)} messages, "
            f"halted={self.halted}"
        )


class LineTrace:
    """Executed source lines per file, collected by ``sys.settrace``."""

    def __init__(self, watched_files):
        self._watched = set(watched_files)
        self.lines = {}

    def __call__(self, frame, event, arg):
        filename = frame.f_code.co_filename
        if filename not in self._watched:
            return None
        if event == "line":
            self.lines.setdefault(filename, set()).add(frame.f_lineno)
        return self

    def executed_in(self, filename):
        return sorted(self.lines.get(filename, ()))


class ReplayHarness:
    """Rebuilds one captured vertex context and re-runs compute() in it.

    This is the object Graft-generated test files use; its constructor
    arguments are exactly the five pieces of Giraph context data plus the
    RNG derivation seed. All arguments are plain Python data.
    """

    def __init__(
        self,
        vertex_id,
        superstep,
        value,
        edges,
        incoming,
        aggregators,
        num_vertices,
        num_edges,
        run_seed=0,
    ):
        self.vertex_id = vertex_id
        self.superstep = superstep
        self.value = value
        self.edges = dict(edges)
        self.incoming = list(incoming)
        self.aggregators = dict(aggregators)
        self.num_vertices = num_vertices
        self.num_edges = num_edges
        self.run_seed = run_seed

    @classmethod
    def from_record(cls, record):
        """Build a harness straight from a trace record."""
        return cls(
            vertex_id=record.vertex_id,
            superstep=record.superstep,
            value=record.value_before,
            edges=record.edges_before,
            incoming=record.incoming,
            aggregators=record.aggregators,
            num_vertices=record.num_vertices,
            num_edges=record.num_edges,
            run_seed=record.run_seed,
        )

    def build_context(self):
        """The reconstructed :class:`~repro.pregel.ComputeContext`."""
        services = _ReplayServices(self.aggregators)
        envelopes = [
            Envelope(source=source, target=self.vertex_id, value=value)
            for source, value in self.incoming
        ]
        ctx = ComputeContext(
            vertex_id=self.vertex_id,
            value=self.value,
            edges=dict(self.edges),
            incoming=envelopes,
            superstep=self.superstep,
            num_vertices=self.num_vertices,
            num_edges=self.num_edges,
            services=services,
            run_seed=self.run_seed,
        )
        return ctx, services

    def run(self, computation, trace_lines=False):
        """Re-invoke ``computation.compute()`` under the captured context.

        Returns a :class:`ReplayOutcome`; with ``trace_lines`` also returns
        ``(outcome, line_trace)``.
        """
        ctx, _services = self.build_context()
        messages = [value for _source, value in self.incoming]
        tracer = None
        exception = None
        if trace_lines:
            tracer = LineTrace(_source_files_of(computation))
            sys.settrace(tracer)
        try:
            computation.compute(ctx, messages)
        except Exception as exc:  # noqa: BLE001 - replays record the raise
            exception = exc
        finally:
            if trace_lines:
                sys.settrace(None)
        outcome = ReplayOutcome(
            value=ctx.value,
            edges=ctx.edges_snapshot(),
            sent=[(e.target, e.value) for e in ctx.sent_envelopes],
            halted=ctx.halted,
            aggregated=list(_services.aggregated),
            exception=exception,
        )
        if trace_lines:
            return outcome, tracer
        return outcome


def _source_files_of(computation):
    """Source files whose lines the replay tracer should record."""
    files = set()
    for klass in type(computation).__mro__:
        if klass.__module__ in ("builtins",):
            continue
        try:
            files.add(inspect.getsourcefile(klass))
        except TypeError:
            continue
    files.discard(None)
    return files


# -- verified replay of trace records ---------------------------------------


@dataclass
class Mismatch:
    """One divergence between the recorded and the replayed outcome."""

    field_name: str
    recorded: object
    replayed: object


@dataclass
class ReplayReport:
    """Everything :func:`replay_record` learned."""

    record: VertexContextRecord
    outcome: ReplayOutcome
    mismatches: list = field(default_factory=list)
    executed_lines: dict = field(default_factory=dict)

    @property
    def faithful(self):
        """True when replay reproduced the recorded outcome exactly."""
        return not self.mismatches

    def annotated_source(self, computation):
        """The compute() source with executed lines marked ``>``.

        The Python rendition of stepping through the generated test in an
        IDE: shows exactly which lines ran for this vertex and superstep.
        """
        function = type(computation).compute
        source_file = inspect.getsourcefile(function)
        lines, start = inspect.getsourcelines(function)
        executed = set(self.executed_lines.get(source_file, ()))
        rendered = []
        for offset, text in enumerate(lines):
            line_number = start + offset
            marker = ">" if line_number in executed else " "
            rendered.append(f"{marker} {line_number:>4} {text.rstrip()}")
        return "\n".join(rendered)

    def summary(self):
        status = "faithful" if self.faithful else (
            f"{len(self.mismatches)} mismatches: "
            + ", ".join(m.field_name for m in self.mismatches)
        )
        return (
            f"replay of vertex {self.record.vertex_id!r} "
            f"@ superstep {self.record.superstep}: {status}"
        )


def replay_record(record, computation_factory, verify=True, trace_lines=True):
    """Replay one trace record and (optionally) verify fidelity.

    ``computation_factory`` must build the same computation the original
    run used (same class, same constructor arguments) — the analogue of
    having the same jar on the classpath in the paper's IDE step.
    """
    computation = computation_factory()
    harness = ReplayHarness.from_record(record)
    if trace_lines:
        outcome, tracer = harness.run(computation, trace_lines=True)
        executed = dict(tracer.lines)
    else:
        outcome = harness.run(computation)
        executed = {}
    report = ReplayReport(record=record, outcome=outcome, executed_lines=executed)
    if verify:
        report.mismatches = _compare(record, outcome)
    return report


def _compare(record, outcome):
    mismatches = []
    if record.exception is not None:
        if outcome.exception is None:
            mismatches.append(Mismatch("exception", record.exception, None))
        elif type(outcome.exception).__name__ != record.exception.type_name:
            mismatches.append(
                Mismatch(
                    "exception",
                    record.exception.type_name,
                    type(outcome.exception).__name__,
                )
            )
        return mismatches
    if outcome.exception is not None:
        mismatches.append(Mismatch("exception", None, outcome.exception))
        return mismatches
    checks = (
        ("value_after", record.value_after, outcome.value),
        ("sent", list(record.sent), list(outcome.sent)),
        ("halted", record.halted, outcome.halted),
        ("edges_after", dict(record.edges_after), dict(outcome.edges)),
    )
    for field_name, recorded, replayed in checks:
        if recorded != replayed:
            mismatches.append(Mismatch(field_name, recorded, replayed))
    return mismatches


def replay_from_trace(
    filesystem,
    job_id,
    computation_factory,
    vertex_id,
    superstep,
    codec=None,
    root=None,
    verify=True,
    trace_lines=True,
):
    """Replay one ``(vertex, superstep)`` straight from a job's trace files.

    The "copy the trace into your IDE" path: no :class:`DebugRun` object is
    needed, only the file system holding the traces (possibly imported from
    an exported directory) and the computation class. The record is pulled
    with a lazy :class:`~repro.graft.trace.TraceReader` — one index lookup
    and one ranged read, however large the trace — then handed to
    :func:`replay_record`.
    """
    from repro.graft.trace import DEFAULT_ROOT, TraceReader

    reader = TraceReader(
        filesystem, job_id, codec=codec, root=root or DEFAULT_ROOT, mode="lazy"
    )
    record = reader.get(vertex_id, superstep)
    return replay_record(
        record, computation_factory, verify=verify, trace_lines=trace_lines
    )


# -- master replay -------------------------------------------------------------


class _SnapshotRegistry:
    """Aggregator registry stand-in built from a captured snapshot."""

    def __init__(self, snapshot):
        self._values = dict(snapshot)

    def visible_value(self, name):
        if name not in self._values:
            raise AggregatorError(
                f"aggregator {name!r} not in the captured snapshot: "
                f"{sorted(self._values)}"
            )
        return self._values[name]

    def set_visible(self, name, value):
        self._values[name] = value

    def visible_snapshot(self):
        return dict(self._values)


@dataclass
class MasterReplayOutcome:
    """What a replayed master_compute() did."""

    aggregators: dict
    halted: bool


class MasterReplayHarness:
    """Rebuilds a captured master context and re-runs master_compute()."""

    def __init__(self, superstep, aggregators, num_vertices=0, num_edges=0):
        self.superstep = superstep
        self.aggregators = dict(aggregators)
        self.num_vertices = num_vertices
        self.num_edges = num_edges

    @classmethod
    def from_record(cls, record):
        # Replay starts from the *pre* state; master_compute() re-applies
        # its own writes.
        return cls(superstep=record.superstep, aggregators=record.aggregators_before)

    def run(self, master):
        from repro.pregel.master import MasterContext

        registry = _SnapshotRegistry(self.aggregators)
        master_ctx = MasterContext(
            self.superstep, self.num_vertices, self.num_edges, registry
        )
        master.master_compute(master_ctx)
        return MasterReplayOutcome(
            aggregators=registry.visible_snapshot(), halted=master_ctx.halted
        )


def replay_master_record(record, master_factory):
    """Replay a captured master context; returns a MasterReplayOutcome."""
    if not isinstance(record, MasterContextRecord):
        raise GraftError(f"not a master record: {record!r}")
    return MasterReplayHarness.from_record(record).run(master_factory())


# -- literal rendering for generated code ---------------------------------------


def render_literal(value):
    """Render ``value`` as Python source that evaluates back to it.

    Handles the trace codec's value domain: scalars (including non-finite
    floats), containers, and registered dataclass value types (rendered as
    constructor calls, like the paper's mock setup lines).
    """
    if value is None or isinstance(value, (bool, int, str, bytes)):
        return repr(value)
    if isinstance(value, float):
        if value != value:
            return "float('nan')"
        if value in (float("inf"), float("-inf")):
            return f"float('{value}')"
        return repr(value)
    if isinstance(value, list):
        return "[" + ", ".join(render_literal(item) for item in value) + "]"
    if isinstance(value, tuple):
        inner = ", ".join(render_literal(item) for item in value)
        return f"({inner},)" if len(value) == 1 else f"({inner})"
    if isinstance(value, (set, frozenset)):
        if not value:
            return "set()" if isinstance(value, set) else "frozenset()"
        inner = ", ".join(sorted(render_literal(item) for item in value))
        body = "{" + inner + "}"
        return body if isinstance(value, set) else f"frozenset({body})"
    if isinstance(value, dict):
        inner = ", ".join(
            f"{render_literal(k)}: {render_literal(v)}" for k, v in value.items()
        )
        return "{" + inner + "}"
    if dataclasses.is_dataclass(value):
        args = ", ".join(
            f"{f.name}={render_literal(getattr(value, f.name))}"
            for f in dataclasses.fields(value)
        )
        return f"{type(value).__name__}({args})"
    # Registered non-dataclass value types (e.g. Short16) have eval-able reprs.
    return repr(value)


def _collect_value_types(value, found):
    """Collect the user-defined classes appearing inside ``value``."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        found.add(type(value))
        for f in dataclasses.fields(value):
            _collect_value_types(getattr(value, f.name), found)
    elif isinstance(value, (list, tuple, set, frozenset)):
        for item in value:
            _collect_value_types(item, found)
    elif isinstance(value, dict):
        for key, item in value.items():
            _collect_value_types(key, found)
            _collect_value_types(item, found)
    elif type(value).__module__ not in ("builtins",):
        found.add(type(value))
    return found


def _import_lines(classes, extra=()):
    """Deterministic import block for the generated file.

    Classes defined inside functions or other classes cannot be imported;
    those get a TODO comment instead — the generated file is a starting
    point the user edits, exactly as the paper intends.
    """
    by_module = {}
    todos = []
    for klass in classes:
        if "." in klass.__qualname__:
            todos.append(
                f"# TODO: make {klass.__name__} importable "
                f"(it is defined locally as {klass.__module__}.{klass.__qualname__})"
            )
        else:
            by_module.setdefault(klass.__module__, set()).add(klass.__qualname__)
    for module, name in extra:
        by_module.setdefault(module, set()).add(name)
    lines = []
    for module in sorted(by_module):
        names = ", ".join(sorted(by_module[module]))
        lines.append(f"from {module} import {names}")
    return "\n".join(lines + sorted(todos))


def _computation_reference(computation_factory):
    """(class, source expression) for the generated file's compute call."""
    instance = computation_factory()
    klass = type(instance)
    return klass, f"{klass.__name__}()"


# -- code generation ------------------------------------------------------------


def generate_test_code(record, computation_factory, test_name=None, job_id=None):
    """Generate a standalone pytest file reproducing one vertex context.

    The Python analogue of the paper's Figure 6 JUnit file. If the
    computation's constructor needs arguments, edit the single
    ``harness.run(...)`` line — the file is a starting point the user owns,
    exactly as the paper intends ("users can edit the JUnit test code ...
    and turn it into a real unit test").
    """
    klass, computation_expr = _computation_reference(computation_factory)
    test_name = test_name or (
        f"test_reproduce_vertex_{_identifier(record.vertex_id)}"
        f"_superstep_{record.superstep}"
    )
    value_types = set()
    for candidate in (
        record.value_before,
        record.value_after,
        record.edges_before,
        record.incoming,
        record.sent,
        record.aggregators,
    ):
        _collect_value_types(candidate, value_types)
    imports = _import_lines(
        value_types | {klass},
        extra=[("repro.graft.reproducer", "ReplayHarness")],
    )
    if record.exception is not None:
        assertions = codegen_templates.VERTEX_EXCEPTION_ASSERTS_TEMPLATE.format(
            exception_type=repr(record.exception.type_name)
        )
    else:
        assertions = "\n".join(
            [
                f"    assert outcome.value == {render_literal(record.value_after)}",
                f"    assert outcome.sent == {render_literal(list(record.sent))}",
                f"    assert outcome.halted is {record.halted}",
            ]
        )
    return codegen_templates.VERTEX_TEST_TEMPLATE.format(
        vertex_id=render_literal(record.vertex_id),
        superstep=record.superstep,
        computation_name=klass.__qualname__,
        computation_expr=computation_expr,
        job_note=f" (job {job_id})" if job_id else "",
        imports=imports,
        test_name=test_name,
        value=render_literal(record.value_before),
        edges=render_literal(record.edges_before),
        incoming=render_literal(list(record.incoming)),
        aggregators=render_literal(record.aggregators),
        num_vertices=record.num_vertices,
        num_edges=record.num_edges,
        run_seed=render_literal(record.run_seed),
        assertions=assertions,
    )


def generate_master_test_code(record, master_factory, test_name=None, job_id=None):
    """Generate a pytest file reproducing one master context (Section 3.4)."""
    klass, master_expr = _computation_reference(master_factory)
    test_name = test_name or f"test_reproduce_master_superstep_{record.superstep}"
    value_types = _collect_value_types(record.aggregators_before, set())
    imports = _import_lines(
        value_types | {klass},
        extra=[("repro.graft.reproducer", "MasterReplayHarness")],
    )
    outcome = MasterReplayHarness.from_record(record).run(master_factory())
    assertions = "\n".join(
        f"    assert outcome.aggregators[{render_literal(name)}] == "
        f"{render_literal(value)}"
        for name, value in sorted(outcome.aggregators.items(), key=lambda kv: kv[0])
    )
    return codegen_templates.MASTER_TEST_TEMPLATE.format(
        superstep=record.superstep,
        job_note=f" (job {job_id})" if job_id else "",
        imports=imports,
        test_name=test_name,
        aggregators=render_literal(record.aggregators_before),
        num_vertices=0,
        num_edges=0,
        master_expr=master_expr,
        halted=outcome.halted,
        assertions=assertions,
    )


def generate_end_to_end_test(
    graph,
    computation_factory,
    test_name="test_end_to_end",
    expected_values=None,
    engine_kwargs=None,
):
    """Generate an end-to-end pytest file from a small graph.

    Used by the offline small-graph builder (Section 3.4): the generated
    test constructs the graph programmatically, runs the computation from
    the first superstep to termination, and asserts the final vertex values
    (when ``expected_values`` is given) or leaves a TODO for the user.
    """
    klass, computation_expr = _computation_reference(computation_factory)
    value_types = set()
    graph_lines = []
    for vertex_id in graph.vertex_ids():
        value = graph.vertex_value(vertex_id)
        _collect_value_types(value, value_types)
        graph_lines.append(
            f"    graph.add_vertex({render_literal(vertex_id)}, "
            f"value={render_literal(value)})"
        )
    for source, target, value in graph.edges():
        _collect_value_types(value, value_types)
        graph_lines.append(
            f"    graph.add_edge({render_literal(source)}, "
            f"{render_literal(target)}, value={render_literal(value)})"
        )
    engine_kwargs = engine_kwargs or {}
    engine_args = "".join(
        f", {name}={render_literal(value)}" for name, value in engine_kwargs.items()
    )
    if expected_values is None:
        assertions = "    # TODO: assert the expected final vertex values:\n" \
            "    # assert result.vertex_values == {...}"
    else:
        _collect_value_types(expected_values, value_types)
        assertions = (
            f"    assert result.vertex_values == "
            f"{render_literal(dict(expected_values))}"
        )
    imports = _import_lines(
        value_types | {klass},
        extra=[
            ("repro.graph.graph", "Graph"),
            ("repro.pregel.engine", "run_computation"),
        ],
    )
    return codegen_templates.END_TO_END_TEST_TEMPLATE.format(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        computation_name=klass.__qualname__,
        computation_expr=computation_expr,
        imports=imports,
        test_name=test_name,
        directed=graph.directed,
        graph_lines="\n".join(graph_lines),
        engine_args=engine_args,
        assertions=assertions,
    )


def _identifier(vertex_id):
    """Sanitize a vertex id into a test-name fragment."""
    text = str(vertex_id)
    cleaned = "".join(ch if ch.isalnum() else "_" for ch in text)
    return cleaned or "v"
