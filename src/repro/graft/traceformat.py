"""The v2 trace file format: framed records plus an index sidecar.

A v1 trace file is plain JSON lines — simple, but reading *anything* back
means decoding *everything*. The v2 format keeps records just as textual
and diffable once unframed, while making random access cheap:

Trace file (``worker-<i>.trace`` / ``master.trace``)::

    #GRAFT2\\n                  8-byte magic line
    u32be len | u8 0 | header   one JSON header frame (uncompressed)
    u32be len | u8 flags | ...  data blocks, one per flush boundary

The header interns the field-name tables (``{"fields": {"vertex": [...],
"master": [...]}}``) so records can be positional rows (see
:func:`repro.graft.capture.record_to_row`). Each data block's payload is a
concatenation of ``u32be rec_len | rec_bytes`` entries; with flag bit
:data:`BLOCK_FLAG_ZLIB` set the stored payload is zlib-compressed.

Index sidecar (``<trace path>.idx``), one text line per block, appended at
the same flush boundary that wrote the block::

    #GRAFT2-IDX {"version": 2, ...}
    B <off> <len> <flags> <min_ss> <max_ss> <nrec> <nviol> <nexc> <nmaster> |<entries JSON>

The integer prefix is parseable with a string split — no JSON — so a lazy
reader can open a trace and answer "which blocks could matter for
superstep 12 / which blocks hold violations?" without decoding a single
record. The ``entries`` array holds one ``[kind, superstep, vid_repr,
inner_offset, inner_length, vflags]`` entry per record (``vid_repr`` is
``repr(vertex_id)``; ``inner_*`` address the *decompressed* payload;
``vflags`` marks violations/exceptions) and is parsed lazily, per block,
only when a query actually needs that block.

Compatibility rules (see docs/trace-format.md):

- readers must fall back to v1 line decoding when the magic is absent;
- a missing, truncated, or stale index is never fatal — the unindexed
  tail of the trace file is re-scanned frame by frame and reindexed in
  memory (:func:`scan_blocks`);
- trailing bytes that don't form a complete frame (a crashed writer's
  torn block) are ignored, like a torn v1 line would be.
"""

import json
import zlib

from repro.common.errors import TraceError
from repro.graft.capture import (
    KIND_MASTER,
    KIND_VERTEX,
    master_field_names,
    record_from_row,
    vertex_field_names,
)
from repro.simfs.writers import BLOCK_FLAG_ZLIB

TRACE_MAGIC = b"#GRAFT2\n"
IDX_MAGIC = "#GRAFT2-IDX"
TRACE_VERSION = 2

#: Per-record index flags (``vflags``).
VFLAG_VIOLATIONS = 0x01
VFLAG_EXCEPTION = 0x02

_U32 = 4
_FRAME_HEADER = _U32 + 1  # length prefix + flags byte


def build_header():
    """The JSON header frame contents for a freshly created v2 file."""
    return {
        "version": TRACE_VERSION,
        "fields": {
            "vertex": list(vertex_field_names()),
            "master": list(master_field_names()),
        },
    }


def encode_header(header):
    data = json.dumps(header, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return len(data).to_bytes(4, "big") + bytes([0]) + data


def pack_records(record_bytes_list):
    """Concatenate framed records into one block payload.

    Returns ``(payload, extents)`` where ``extents[i]`` is the
    ``(inner_offset, inner_length)`` of record ``i`` inside the payload —
    the coordinates the index entries carry.
    """
    parts = []
    extents = []
    offset = 0
    for rec in record_bytes_list:
        parts.append(len(rec).to_bytes(4, "big"))
        parts.append(rec)
        extents.append((offset + _U32, len(rec)))
        offset += _U32 + len(rec)
    return b"".join(parts), extents


def unpack_payload(raw_frame):
    """Decode one stored frame (``u32 | flags | stored``) to its payload."""
    if len(raw_frame) < _FRAME_HEADER:
        raise TraceError("trace block shorter than its frame header")
    stored_len = int.from_bytes(raw_frame[:_U32], "big")
    flags = raw_frame[_U32]
    stored = raw_frame[_FRAME_HEADER:_FRAME_HEADER + stored_len]
    if len(stored) != stored_len:
        raise TraceError("trace block truncated mid-frame")
    if flags & BLOCK_FLAG_ZLIB:
        return zlib.decompress(stored), flags
    return bytes(stored), flags


def split_payload(payload):
    """Yield ``(inner_offset, record_bytes)`` for every record in a payload."""
    offset = 0
    size = len(payload)
    while offset < size:
        if offset + _U32 > size:
            raise TraceError("trace block payload truncated mid-record")
        rec_len = int.from_bytes(payload[offset:offset + _U32], "big")
        start = offset + _U32
        if start + rec_len > size:
            raise TraceError("trace block payload truncated mid-record")
        yield start, payload[start:start + rec_len]
        offset = start + rec_len


class BlockMeta:
    """One data block as the index sidecar (or a recovery scan) sees it."""

    __slots__ = (
        "offset", "length", "flags", "min_superstep", "max_superstep",
        "num_records", "num_violations", "num_exceptions", "num_masters",
        "_entries", "_entries_text",
    )

    def __init__(self, offset, length, flags, min_superstep, max_superstep,
                 num_records, num_violations, num_exceptions, num_masters,
                 entries=None, entries_text=None):
        self.offset = offset
        self.length = length
        self.flags = flags
        self.min_superstep = min_superstep
        self.max_superstep = max_superstep
        self.num_records = num_records
        self.num_violations = num_violations
        self.num_exceptions = num_exceptions
        self.num_masters = num_masters
        self._entries = entries
        self._entries_text = entries_text

    @property
    def end(self):
        return self.offset + self.length

    def covers_superstep(self, superstep):
        return self.min_superstep <= superstep <= self.max_superstep

    def entries(self):
        """The block's ``[kind, ss, vid_repr, off, len, vflags]`` entries.

        Parsed from the sidecar line on first use and memoized — the lazy
        reader's whole point is that most blocks never reach this call.
        """
        if self._entries is None:
            if self._entries_text is None:
                raise TraceError("index block has neither entries nor text")
            self._entries = json.loads(self._entries_text)
            self._entries_text = None
        return self._entries


def format_idx_header(trace_filename):
    payload = json.dumps(
        {"version": TRACE_VERSION, "trace": trace_filename},
        separators=(",", ":"), sort_keys=True,
    )
    return f"{IDX_MAGIC} {payload}"


def format_idx_line(meta, entries):
    """Render one sidecar line for a block and its entries."""
    prefix = (
        f"B {meta.offset} {meta.length} {meta.flags} "
        f"{meta.min_superstep} {meta.max_superstep} {meta.num_records} "
        f"{meta.num_violations} {meta.num_exceptions} {meta.num_masters} "
    )
    return prefix + "|" + json.dumps(entries, separators=(",", ":"))


def parse_idx_line(line):
    """Parse one sidecar block line into a :class:`BlockMeta` (entries lazy).

    Raises ``ValueError`` on any malformed line — the reader treats that
    as the index ending there and rescans the rest of the trace file.
    """
    prefix, sep, entries_text = line.partition("|")
    if not sep:
        raise ValueError("index line has no entries separator")
    fields = prefix.split()
    if len(fields) != 10 or fields[0] != "B":
        raise ValueError(f"malformed index prefix: {prefix!r}")
    # Entries parse lazily, so at least shape-check them now: a truncated
    # or corrupted JSON array almost never still starts AND ends with
    # brackets.
    if not (entries_text.startswith("[") and entries_text.endswith("]")):
        raise ValueError("malformed index entries")
    numbers = [int(token) for token in fields[1:]]
    return BlockMeta(*numbers, entries_text=entries_text)


def record_entry(kind, superstep, vid_repr, inner_offset, inner_length, vflags):
    """Build one index entry (the write side and the recovery scan share it)."""
    return [kind, superstep, vid_repr, inner_offset, inner_length, vflags]


def summarize_entries(offset, length, flags, entries):
    """Fold per-record entries into the prefix counters of a BlockMeta."""
    supersteps = [entry[1] for entry in entries]
    return BlockMeta(
        offset=offset,
        length=length,
        flags=flags,
        min_superstep=min(supersteps),
        max_superstep=max(supersteps),
        num_records=len(entries),
        num_violations=sum(1 for e in entries if e[5] & VFLAG_VIOLATIONS),
        num_exceptions=sum(1 for e in entries if e[5] & VFLAG_EXCEPTION),
        num_masters=sum(1 for e in entries if e[0] == KIND_MASTER),
        entries=entries,
    )


# -- reading the trace file itself --------------------------------------------


def is_v2_file(filesystem, path):
    """True when ``path`` starts with the v2 magic line."""
    try:
        return filesystem.read_range(path, 0, len(TRACE_MAGIC)) == TRACE_MAGIC
    except Exception:  # noqa: BLE001 - missing/short file means "not v2"
        return False


def read_header(filesystem, path):
    """Read the header frame; returns ``(header_dict, data_start_offset)``."""
    base = len(TRACE_MAGIC)
    length_bytes = filesystem.read_range(path, base, _U32)
    if len(length_bytes) != _U32:
        raise TraceError(f"v2 trace {path!r} has no header frame")
    header_len = int.from_bytes(length_bytes, "big")
    raw = filesystem.read_range(path, base + _FRAME_HEADER, header_len)
    if len(raw) != header_len:
        raise TraceError(f"v2 trace {path!r} header frame truncated")
    try:
        header = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceError(f"v2 trace {path!r} header unreadable: {exc}") from exc
    return header, base + _FRAME_HEADER + header_len


def read_block_payload(filesystem, path, meta):
    """Fetch one indexed block with a single ranged read and decompress it."""
    raw = filesystem.read_range(path, meta.offset, meta.length)
    payload, _flags = unpack_payload(raw)
    return payload


def _entry_from_record(record, inner_offset, inner_length):
    from repro.graft.capture import MasterContextRecord

    if isinstance(record, MasterContextRecord):
        return record_entry(
            KIND_MASTER, record.superstep, None, inner_offset, inner_length, 0
        )
    vflags = 0
    if record.violations:
        vflags |= VFLAG_VIOLATIONS
    if record.exception is not None:
        vflags |= VFLAG_EXCEPTION
    return record_entry(
        KIND_VERTEX, record.superstep, repr(record.vertex_id),
        inner_offset, inner_length, vflags,
    )


def scan_blocks(filesystem, path, start_offset, codec, header=None):
    """Re-frame (and reindex) blocks by scanning the trace file directly.

    The recovery path for a missing or truncated index sidecar: walk the
    frames from ``start_offset``, decode each record just enough to
    rebuild its index entry, and yield complete :class:`BlockMeta` objects
    with entries attached. A torn final frame ends the scan silently.
    """
    if header is None:
        header, data_start = read_header(filesystem, path)
        start_offset = max(start_offset, data_start)
    fields = header.get("fields", {})
    vertex_fields = fields.get("vertex")
    master_fields = fields.get("master")
    size = filesystem.stat(path).size
    offset = start_offset
    while offset + _FRAME_HEADER <= size:
        length_bytes = filesystem.read_range(path, offset, _U32)
        stored_len = int.from_bytes(length_bytes, "big")
        frame_len = _FRAME_HEADER + stored_len
        if offset + frame_len > size:
            break  # torn final block: a crash between appends
        raw = filesystem.read_range(path, offset, frame_len)
        try:
            payload, flags = unpack_payload(raw)
        except (TraceError, zlib.error):
            break
        entries = []
        try:
            for inner_offset, rec_bytes in split_payload(payload):
                row = json.loads(rec_bytes.decode("utf-8"))
                record = record_from_row(row, codec, vertex_fields, master_fields)
                entries.append(
                    _entry_from_record(record, inner_offset, len(rec_bytes))
                )
        except (TraceError, ValueError, UnicodeDecodeError):
            break
        if entries:
            yield summarize_entries(offset, frame_len, flags, entries)
        offset += frame_len


def iter_v2_records(filesystem, path, codec):
    """Decode every record of a v2 trace file, in file order (eager path)."""
    header, data_start = read_header(filesystem, path)
    fields = header.get("fields", {})
    vertex_fields = fields.get("vertex")
    master_fields = fields.get("master")
    size = filesystem.stat(path).size
    offset = data_start
    while offset + _FRAME_HEADER <= size:
        length_bytes = filesystem.read_range(path, offset, _U32)
        stored_len = int.from_bytes(length_bytes, "big")
        frame_len = _FRAME_HEADER + stored_len
        if offset + frame_len > size:
            break
        raw = filesystem.read_range(path, offset, frame_len)
        payload, _flags = unpack_payload(raw)
        for _inner_offset, rec_bytes in split_payload(payload):
            row = json.loads(rec_bytes.decode("utf-8"))
            yield record_from_row(row, codec, vertex_fields, master_fields)
        offset += frame_len


def load_index(filesystem, trace_path, codec):
    """Load the sidecar for ``trace_path``; recover whatever it misses.

    Returns ``(blocks, header, stats)`` where ``blocks`` is the complete
    in-order list of :class:`BlockMeta` (sidecar lines first, then any
    blocks recovered by scanning the unindexed tail) and ``stats`` counts
    ``{"indexed_blocks": ..., "recovered_blocks": ...}`` for the
    ``trace stats`` report.
    """
    header, data_start = read_header(filesystem, trace_path)
    size = filesystem.stat(trace_path).size
    idx_path = trace_path + ".idx"
    blocks = []
    covered_end = data_start
    if filesystem.is_file(idx_path):
        try:
            text = filesystem.read_bytes(idx_path).decode("utf-8")
        except UnicodeDecodeError:
            text = ""
        # Sidecar lines are newline-terminated as they are appended; a
        # final segment with no trailing newline is a torn write and is
        # discarded (its block gets recovered from the trace file).
        complete, newline, _torn = text.rpartition("\n")
        lines = iter(complete.split("\n")) if newline else iter(())
        first = next(lines, None)
        if first is not None and first.startswith(IDX_MAGIC):
            for line in lines:
                try:
                    meta = parse_idx_line(line)
                except (ValueError, UnicodeDecodeError):
                    break  # truncated/corrupt tail: rescan from here
                if (
                    meta.offset != covered_end
                    or meta.end > size
                    or meta.length <= _FRAME_HEADER
                ):
                    break  # stale entry pointing outside the file
                blocks.append(meta)
                covered_end = meta.end
    indexed = len(blocks)
    if covered_end < size:
        blocks.extend(
            scan_blocks(filesystem, trace_path, covered_end, codec, header=header)
        )
    stats = {
        "indexed_blocks": indexed,
        "recovered_blocks": len(blocks) - indexed,
    }
    return blocks, header, stats
