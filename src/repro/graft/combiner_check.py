"""Combiner safety checking: a debugging tool for a classic Pregel bug.

A message combiner must be commutative and associative, and the algorithm
must not depend on message multiplicity or ordering — otherwise adding the
combiner silently changes results. This checker runs a computation with
and without the combiner under identical seeds and diffs the final vertex
values, superstep counts, and halt reasons; any difference means the
combiner is unsafe for this algorithm.
"""

from dataclasses import dataclass, field

from repro.pregel.engine import PregelEngine


@dataclass
class CombinerCheckReport:
    """Outcome of a combiner safety check."""

    safe: bool
    differing_vertices: list = field(default_factory=list)
    supersteps_without: int = 0
    supersteps_with: int = 0
    messages_saved: int = 0

    def summary(self):
        if self.safe:
            return (
                f"combiner safe: identical results, "
                f"{self.messages_saved} messages eliminated"
            )
        return (
            f"combiner UNSAFE: {len(self.differing_vertices)} vertices differ "
            f"(supersteps {self.supersteps_without} vs {self.supersteps_with})"
        )


def check_combiner_safety(
    computation_factory, graph, combiner, sample_limit=20, **engine_kwargs
):
    """Compare a run with and without ``combiner``; returns a report.

    ``engine_kwargs`` must describe the run deterministically (the same
    seed is used for both runs).
    """
    without = PregelEngine(computation_factory, graph, **engine_kwargs).run()
    with_combiner = PregelEngine(
        computation_factory, graph, combiner=combiner, **engine_kwargs
    ).run()

    differing = [
        vertex_id
        for vertex_id in without.vertex_values
        if without.vertex_values[vertex_id]
        != with_combiner.vertex_values.get(vertex_id)
    ]
    extra = [
        vertex_id
        for vertex_id in with_combiner.vertex_values
        if vertex_id not in without.vertex_values
    ]
    differing.extend(extra)
    safe = (
        not differing
        and without.num_supersteps == with_combiner.num_supersteps
        and without.halt_reason == with_combiner.halt_reason
    )
    return CombinerCheckReport(
        safe=safe,
        differing_vertices=sorted(differing, key=repr)[:sample_limit],
        supersteps_without=without.num_supersteps,
        supersteps_with=with_combiner.num_supersteps,
        messages_saved=with_combiner.metrics.total_messages_combined,
    )
