"""Ready-made DebugConfigs for common invariants.

The paper's interviews found users wanting richer constraints than ad-hoc
lambdas (Section 7). This module packages the invariants that come up over
and over as composable DebugConfigs:

- :class:`NonNegativeMessages` / :class:`NonNegativeValues` — the Table 3
  constraints, reusable directly;
- :class:`BoundedValues` — vertex values must stay inside a numeric range;
- :class:`MonotoneValues` — a vertex's value may only move in one
  direction across supersteps (shortest-path distances and HashMin labels
  only ever decrease; a violation means the relaxation logic regressed);
- :class:`NoSelfMessages` — a vertex must never message itself;
- :class:`DistinctNeighborValues` — the paper's own Section 7 example,
  "no two adjacent vertices should be assigned the same color", as a
  neighborhood constraint over a key function.
"""

from repro.graft.config import DebugConfig


def _numeric(value):
    """The comparable number inside ``value``, or None if there is none.

    ``bool`` is excluded in both places — a bare ``True`` and a wrapper
    whose ``.value`` is ``True`` are flags, not magnitudes, and must not be
    range- or monotonicity-checked as 0/1.
    """
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return value
    inner = getattr(value, "value", None)
    if isinstance(inner, (int, float)) and not isinstance(inner, bool):
        return inner
    return None


class NonNegativeMessages(DebugConfig):
    """Message values must be >= 0 (the paper's RW scenario constraint)."""

    def message_value_constraint(self, message, source_id, target_id, superstep):
        number = _numeric(message)
        return number is None or number >= 0


class NonNegativeValues(DebugConfig):
    """Vertex values must be >= 0."""

    def vertex_value_constraint(self, value, vertex_id, superstep):
        number = _numeric(value)
        return number is None or number >= 0


class BoundedValues(DebugConfig):
    """Vertex values must stay within ``[low, high]`` (when numeric)."""

    def __init__(self, low=None, high=None):
        self.low = low
        self.high = high

    def vertex_value_constraint(self, value, vertex_id, superstep):
        number = _numeric(value)
        if number is None:
            return True
        if self.low is not None and number < self.low:
            return False
        if self.high is not None and number > self.high:
            return False
        return True


class MonotoneValues(DebugConfig):
    """Each vertex's numeric value may only move in one direction.

    ``direction`` is ``"decreasing"`` (default: SSSP distances, HashMin
    labels) or ``"increasing"``. The config tracks the previous value per
    vertex; a later superstep moving the wrong way is a violation. Uses
    one config instance per run (state is per-run history).
    """

    def __init__(self, direction="decreasing"):
        if direction not in ("decreasing", "increasing"):
            raise ValueError(f"unknown direction {direction!r}")
        self.direction = direction
        self._previous = {}

    def vertex_value_constraint(self, value, vertex_id, superstep):
        number = _numeric(value)
        if number is None:
            return True
        previous = self._previous.get(vertex_id)
        self._previous[vertex_id] = number
        if previous is None:
            return True
        if self.direction == "decreasing":
            return number <= previous
        return number >= previous


class NoSelfMessages(DebugConfig):
    """A vertex must never send a message to itself."""

    def message_value_constraint(self, message, source_id, target_id, superstep):
        return source_id != target_id


class DistinctNeighborValues(DebugConfig):
    """Adjacent vertices must differ under ``key`` (Section 7's example).

    With ``key=lambda v: v.color`` this is literally "no two adjacent
    vertices should be assigned the same color"; None keys are ignored
    (uncolored vertices cannot conflict yet).
    """

    def __init__(self, key=None):
        self._key = key or (lambda value: value)

    def neighborhood_constraint(self, value, neighbor_values, vertex_id, superstep):
        mine = self._key(value)
        if mine is None:
            return True
        for neighbor_value in neighbor_values.values():
            if self._key(neighbor_value) == mine:
                return False
        return True
