"""Replay fidelity: the debugger's core guarantee, made checkable.

Graft's promise is that the captured context suffices to reproduce exactly
what ``compute()`` did for a vertex and superstep. :func:`verify_run_fidelity`
replays *every* captured record of a debug run and compares against the
recorded outcomes; the library's property tests drive this across
algorithms, seeds, and worker counts.
"""

from dataclasses import dataclass, field

from repro.graft.reproducer import replay_record


@dataclass
class FidelityReport:
    """Outcome of replaying every captured record of one run."""

    total: int = 0
    faithful: int = 0
    unfaithful: list = field(default_factory=list)   # ReplayReports that diverged
    #: Static findings (graft-lint) that predicted the divergence class —
    #: GL001/GL002/GL003 are exactly the hazards that break replay.
    predicted_by: tuple = ()
    #: Recovery history of the verified run: checkpoint rollbacks the
    #: engine performed and how many superstep executions were re-runs.
    #: Fidelity across a recovered run is the stronger claim — the records
    #: replayed faithfully even though some were captured twice.
    rollback_count: int = 0
    recovered_supersteps: int = 0
    #: How the lint pass's *proven* forecasts fared against the run's
    #: observed evidence (a :class:`~repro.analysis.PredictionScore`, or
    #: None when the run carries no lint report).
    prediction_score: object = None

    @property
    def ok(self):
        return self.total == self.faithful

    def summary(self):
        recovery = (
            f" (run recovered from {self.rollback_count} rollback(s); "
            f"{self.recovered_supersteps} supersteps re-executed)"
            if self.rollback_count
            else ""
        )
        score = ""
        if self.prediction_score is not None and (
            self.prediction_score.predicted or self.prediction_score.observed
        ):
            score = f"; {self.prediction_score.summary()}"
        if self.ok:
            return (
                f"all {self.total} captured contexts replay faithfully"
                f"{recovery}{score}"
            )
        text = (
            f"{self.faithful}/{self.total} faithful; divergent: "
            + ", ".join(
                f"{r.record.vertex_id!r}@{r.record.superstep}"
                for r in self.unfaithful[:10]
            )
        )
        if self.predicted_by:
            rule_ids = sorted({f.rule_id for f in self.predicted_by})
            text += f" — predicted by static analysis: {', '.join(rule_ids)}"
        return text + recovery + score


def verify_run_fidelity(run, computation_factory=None, limit=None,
                        sanitizer=None):
    """Replay every captured context of ``run`` and verify the outcomes.

    ``computation_factory`` defaults to the one the run used. ``limit``
    caps how many records to replay (useful for very large capture sets).
    ``sanitizer`` optionally takes a
    :class:`~repro.graft.sanitizer.SanitizerReport` for the same
    computation; its ``order_divergence`` evidence then counts toward the
    prediction score, so a GL016 forecast confirmed by graft-san grades
    as a hit here too.
    """
    factory = computation_factory or run.computation_factory
    report = FidelityReport()
    result = getattr(run, "result", None)
    if result is not None:
        report.rollback_count = result.metrics.rollback_count
        report.recovered_supersteps = result.metrics.recovered_supersteps
    records = run.reader.vertex_records
    if limit is not None:
        records = records[:limit]
    for record in records:
        replay = replay_record(record, factory, verify=True, trace_lines=False)
        report.total += 1
        if replay.faithful:
            report.faithful += 1
        else:
            report.unfaithful.append(replay)
    if report.unfaithful:
        # Cross-link: did the pre-flight lint pass predict this hazard?
        from repro.analysis import predicted_findings

        report.predicted_by = predicted_findings(
            getattr(run, "lint_report", None), "replay_divergence"
        )
    if getattr(run, "lint_report", None) is not None:
        # Grade the proven static forecasts against everything this run
        # actually produced (violations, exceptions, nontermination —
        # plus replay divergence if the loop above found any).
        from repro.analysis import score_predictions

        observed = set(run.observed_evidence_kinds())
        if report.unfaithful:
            observed.add("replay_divergence")
        if sanitizer is not None:
            observed.update(sanitizer.observed_evidence_kinds())
        report.prediction_score = score_predictions(run.lint_report, observed)
    return report
