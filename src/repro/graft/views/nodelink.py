"""The Node-link View (paper Figure 3).

Shows the vertices captured by id or random selection as a node-link
diagram for one superstep: ids and values on the nodes, edge values on the
links, inactive vertices dimmed, uncaptured neighbors as small id-only
nodes, the aggregator panel in the corner, and the M/V/E (message /
vertex-value / exception) status boxes that turn red when a violation or
exception occurred in the displayed superstep. ``next()`` / ``previous()``
replay the run superstep by superstep, exactly like the GUI's buttons.
"""

from repro.common.errors import GraftError


class NodeLinkView:
    """Node-link rendering of one superstep's captured vertices."""

    def __init__(self, reader, graph, superstep=None):
        self._reader = reader
        self._graph = graph
        steps = reader.supersteps()
        if not steps:
            raise GraftError("nothing was captured in this run")
        self._steps = steps
        self.superstep = steps[0] if superstep is None else superstep
        self._nodes_cache = {}

    # -- stepping (the GUI's Next / Previous superstep buttons) -----------

    def next(self):
        """Advance to the next superstep that has captures."""
        later = [s for s in self._steps if s > self.superstep]
        if later:
            self.superstep = later[0]
        return self

    def previous(self):
        """Go back to the previous superstep that has captures."""
        earlier = [s for s in self._steps if s < self.superstep]
        if earlier:
            self.superstep = earlier[-1]
        return self

    def goto(self, superstep):
        self.superstep = superstep
        return self

    def last(self):
        """Jump to the final captured superstep (Scenario 4.1's first move)."""
        self.superstep = self._steps[-1]
        return self

    # -- status boxes -----------------------------------------------------

    def status_boxes(self):
        """The M/V/E boxes: ``{"M": "green"|"red", "V": ..., "E": ...}``."""
        violations = self._reader.violations(self.superstep)
        message_bad = any(v.kind in ("message", "message_target") for v in violations)
        value_bad = any(
            v.kind in ("vertex_value", "neighborhood") for v in violations
        )
        exception_bad = bool(self._reader.exceptions(self.superstep))
        return {
            "M": "red" if message_bad else "green",
            "V": "red" if value_bad else "green",
            "E": "red" if exception_bad else "green",
        }

    # -- the diagram data ----------------------------------------------------

    def nodes(self):
        """Captured nodes plus small uncaptured-neighbor nodes.

        Returns ``(captured, small)``: ``captured`` is the superstep's
        records; ``small`` is the sorted ids of their neighbors that were
        not captured this superstep (shown id-only, as in the paper).

        Memoized per superstep: ``render()`` needs this both directly and
        through :meth:`edges`, and the diagram data doesn't change between
        those calls.
        """
        cached = self._nodes_cache.get(self.superstep)
        if cached is not None:
            return cached
        captured = list(self._reader.at_superstep(self.superstep))
        captured_ids = {record.vertex_id for record in captured}
        small = set()
        for record in captured:
            for neighbor in record.edges_after:
                if neighbor not in captured_ids:
                    small.add(neighbor)
        result = (captured, sorted(small, key=repr))
        self._nodes_cache[self.superstep] = result
        return result

    def edges(self):
        """Displayed links: ``(source, target, edge_value)`` triples."""
        captured, _small = self.nodes()
        links = []
        for record in captured:
            for target, value in sorted(record.edges_after.items(), key=lambda e: repr(e[0])):
                links.append((record.vertex_id, target, value))
        return links

    def aggregator_panel(self):
        """Aggregators and default global data for the displayed superstep."""
        master = self._reader.master_at(self.superstep)
        aggregators = dict(master.aggregators) if master else {}
        sample = self._reader.at_superstep(self.superstep)
        globals_data = {}
        if sample:
            globals_data = {
                "superstep": self.superstep,
                "num_vertices": sample[0].num_vertices,
                "num_edges": sample[0].num_edges,
            }
        return aggregators, globals_data

    def messages_of(self, vertex_id):
        """Incoming and outgoing messages of one captured vertex (the GUI's
        click-to-expand)."""
        record = self._reader.get(vertex_id, self.superstep)
        return {"incoming": list(record.incoming), "outgoing": list(record.sent)}

    # -- renderers ------------------------------------------------------------

    def render(self):
        """Plain-text node-link diagram for the current superstep."""
        captured, small = self.nodes()
        boxes = self.status_boxes()
        aggregators, globals_data = self.aggregator_panel()
        lines = [
            f"=== Node-link View — superstep {self.superstep} ===",
            "  ".join(f"[{name}:{color}]" for name, color in boxes.items()),
            f"aggregators: {aggregators!r}",
            f"global data: {globals_data!r}",
            "",
        ]
        for record in captured:
            state = "ACTIVE" if record.active else "inactive (dimmed)"
            lines.append(
                f"({record.vertex_id!r}) value={record.value_after!r} [{state}]"
            )
            for target, value in sorted(
                record.edges_after.items(), key=lambda e: repr(e[0])
            ):
                label = "" if value is None else f" ={value!r}"
                lines.append(f"    --{label}--> {target!r}")
        if small:
            lines.append("")
            lines.append(
                "small nodes (uncaptured neighbors): "
                + ", ".join(repr(v) for v in small)
            )
        return "\n".join(lines)

    def to_dot(self):
        """Graphviz DOT output for the current superstep."""

        def quote(value):
            text = (
                str(value)
                .replace("\\", "\\\\")
                .replace('"', '\\"')
                .replace("\n", "\\n")
            )
            return f'"{text}"'

        captured, small = self.nodes()
        lines = [f"digraph superstep_{self.superstep} {{"]
        for record in captured:
            style = "solid" if record.active else "dashed"
            label = quote(f"{record.vertex_id}\n{record.value_after!r}")
            lines.append(
                f"  {quote(record.vertex_id)} [label={label}, style={style}];"
            )
        for vertex_id in small:
            lines.append(
                f"  {quote(vertex_id)} [label={quote(vertex_id)}, shape=point];"
            )
        for source, target, value in self.edges():
            attr = "" if value is None else f" [label={quote(value)}]"
            lines.append(f"  {quote(source)} -> {quote(target)}{attr};")
        lines.append("}")
        return "\n".join(lines)

    def to_html(self):
        """A minimal self-contained HTML rendering (the browser GUI's data)."""
        captured, small = self.nodes()
        boxes = self.status_boxes()
        aggregators, globals_data = self.aggregator_panel()
        rows = "\n".join(
            f"<li class={'active' if r.active else 'inactive'!r}>"
            f"<b>{r.vertex_id!r}</b>: {r.value_after!r} "
            f"(in={len(r.incoming)}, out={len(r.sent)})</li>"
            for r in captured
        )
        box_html = " ".join(
            f'<span class="box {color}">{name}</span>'
            for name, color in boxes.items()
        )
        return (
            "<html><head><style>"
            ".red{color:red}.green{color:green}.inactive{opacity:0.4}"
            "</style></head><body>"
            f"<h2>Superstep {self.superstep}</h2>"
            f"<div>{box_html}</div>"
            f"<pre>aggregators: {aggregators!r}\nglobals: {globals_data!r}</pre>"
            f"<ul>{rows}</ul>"
            f"<p>small nodes: {', '.join(repr(v) for v in small)}</p>"
            "</body></html>"
        )
