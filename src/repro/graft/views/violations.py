"""The Violations and Exceptions View (paper Figure 5).

A tabular view of the vertices that violated a vertex-value or message
constraint or raised an exception, showing the offending value or the error
message and stack trace. The red M/V/E boxes in the other views link here.
"""


class ViolationsView:
    """All violations and exceptions of a run, filterable by superstep.

    When the run carried a pre-flight graft-lint report, each violation
    kind that a static rule predicted is annotated with the rule id — the
    view answers "could I have known this before running?" directly.
    A graft-san :class:`~repro.graft.sanitizer.SanitizerReport` can ride
    along the same way: its confirmed/refuted order-sensitivity verdicts
    join the footer and its ``order_divergence`` evidence joins the
    prediction score.
    """

    def __init__(self, reader, lint_report=None, sanitizer=None):
        self._reader = reader
        self._lint_report = lint_report
        self._sanitizer = sanitizer

    def violation_rows(self, superstep=None, kind=None):
        """Violations as ``(vertex_id, superstep, kind, details)`` rows."""
        rows = []
        for violation in self._reader.violations(superstep):
            if kind is not None and violation.kind != kind:
                continue
            rows.append(
                (
                    violation.vertex_id,
                    violation.superstep,
                    violation.kind,
                    violation.details,
                )
            )
        return rows

    def exception_rows(self, superstep=None):
        """Exceptions as ``(vertex_id, superstep, summary, traceback)`` rows."""
        return [
            (
                record.vertex_id,
                record.superstep,
                exception.summary(),
                exception.traceback_text,
            )
            for record, exception in self._reader.exceptions(superstep)
        ]

    def supersteps_with_violations(self):
        """Supersteps whose M or V box is red somewhere."""
        return sorted({v.superstep for v in self._reader.violations()})

    def first_violation(self):
        """The earliest violation, or None (where a user starts digging)."""
        violations = self._reader.violations()
        if not violations:
            return None
        return min(violations, key=lambda v: (v.superstep, repr(v.vertex_id)))

    def render(self, superstep=None, limit=None, include_tracebacks=False):
        """Plain-text table of violations and exceptions."""
        violation_rows = self.violation_rows(superstep)
        exception_rows = self.exception_rows(superstep)
        scope = "all supersteps" if superstep is None else f"superstep {superstep}"
        lines = [
            f"=== Violations and Exceptions View — {scope} ===",
            f"{len(violation_rows)} violations, {len(exception_rows)} exceptions",
        ]
        shown = violation_rows if limit is None else violation_rows[:limit]
        for vertex_id, step, kind, details in shown:
            lines.append(
                f"  [{kind}] vertex {vertex_id!r} @ superstep {step}: {details!r}"
            )
        if limit is not None and len(violation_rows) > limit:
            lines.append(f"  ... {len(violation_rows) - limit} more violations")
        for vertex_id, step, summary, traceback_text in exception_rows:
            lines.append(
                f"  [exception] vertex {vertex_id!r} @ superstep {step}: {summary}"
            )
            if include_tracebacks:
                lines.extend("      " + t for t in traceback_text.splitlines())
        lines.extend(self._lint_predictions(violation_rows))
        lines.extend(self._sanitizer_verdicts())
        score_line = self._prediction_score_line(violation_rows, exception_rows)
        if score_line:
            lines.append(score_line)
        return "\n".join(lines)

    def _sanitizer_verdicts(self):
        """Footer lines for graft-san's order-sensitivity verdicts."""
        if self._sanitizer is None:
            return []
        lines = []
        if self._sanitizer.divergent_schedules:
            lines.append(
                "  [order_divergence] graft-san: delivery-order divergence "
                f"under schedules {list(self._sanitizer.divergent_schedules)}"
            )
            if self._sanitizer.first_divergence is not None:
                lines.append(
                    f"    {self._sanitizer.first_divergence.summary()}"
                )
        for finding, verdict in self._sanitizer.verdicts().items():
            lines.append(
                f"  [{verdict} by graft-san] {finding.rule_id}"
                f"@{finding.location()}"
            )
        return lines

    def _lint_predictions(self, violation_rows):
        """Footer lines linking observed kinds to the static findings."""
        if self._lint_report is None:
            return []
        from repro.analysis import prediction_note

        lines = []
        for kind in sorted({kind for _v, _s, kind, _d in violation_rows}):
            note = prediction_note(self._lint_report, kind)
            if note:
                lines.append(f"  [{kind}] {note}")
        return lines

    def _prediction_score_line(self, violation_rows, exception_rows):
        """Score the lint pass's proven forecasts against this table."""
        if self._lint_report is None:
            return ""
        from repro.analysis import score_predictions

        observed = {kind for _v, _s, kind, _d in violation_rows}
        if exception_rows:
            observed.add("exception")
        if self._sanitizer is not None:
            observed.update(self._sanitizer.observed_evidence_kinds())
        score = score_predictions(self._lint_report, observed)
        if not score.predicted and not score.observed:
            return ""
        return f"  proven static forecasts: {score.summary()}"
