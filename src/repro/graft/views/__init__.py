"""The Graft GUI's three views, as deterministic renderers.

The paper's GUI runs in a browser; its data model and interactions are
reproduced here as library objects over the trace reader:

- :class:`~repro.graft.views.nodelink.NodeLinkView` — the node-link diagram
  for small capture sets, with superstep stepping, active/inactive dimming,
  small nodes for uncaptured neighbors, the aggregator panel, and the
  M/V/E status boxes;
- :class:`~repro.graft.views.tabular.TabularView` — the row-per-vertex view
  for larger capture sets, expandable rows, and search by id, neighbor,
  value, or message content;
- :class:`~repro.graft.views.violations.ViolationsView` — the constraint
  violations and exceptions table with messages and stack traces.

Each view renders to plain text (assertable in tests and readable in a
terminal); the node-link view additionally renders Graphviz DOT and a
self-contained HTML page.
"""

from repro.graft.views.nodelink import NodeLinkView
from repro.graft.views.tabular import TabularView
from repro.graft.views.violations import ViolationsView

__all__ = ["NodeLinkView", "TabularView", "ViolationsView"]
