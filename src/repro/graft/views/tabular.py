"""The Tabular View (paper Figure 4).

For larger capture sets the node-link diagram becomes unusable; the tabular
view shows one summary row per captured vertex, expandable to the full
context, with the paper's search feature: find vertices by their ids or
their neighbors' ids, by their values, or by messages they sent and/or
received. Superstep stepping matches the node-link view.
"""

from repro.common.errors import GraftError


class TabularView:
    """Row-per-vertex rendering of one superstep's captures."""

    def __init__(self, reader, superstep=None):
        self._reader = reader
        steps = reader.supersteps()
        if not steps:
            raise GraftError("nothing was captured in this run")
        self._steps = steps
        self.superstep = steps[0] if superstep is None else superstep

    # -- stepping -----------------------------------------------------------

    def next(self):
        later = [s for s in self._steps if s > self.superstep]
        if later:
            self.superstep = later[0]
        return self

    def previous(self):
        earlier = [s for s in self._steps if s < self.superstep]
        if earlier:
            self.superstep = earlier[-1]
        return self

    def goto(self, superstep):
        self.superstep = superstep
        return self

    def last(self):
        self.superstep = self._steps[-1]
        return self

    # -- rows --------------------------------------------------------------

    def rows(self):
        """This superstep's records, one per table row."""
        return self._reader.at_superstep(self.superstep)

    def row_summary(self, record):
        """The collapsed one-line row for a record."""
        state = "A" if record.active else "h"
        flags = ",".join(record.reasons)
        return (
            f"{record.vertex_id!r:>12} [{state}] "
            f"value={record.value_after!r} "
            f"in={len(record.incoming)} out={len(record.sent)} "
            f"({flags})"
        )

    def expand(self, vertex_id):
        """The full context of one row (the GUI's row expansion)."""
        record = self._reader.get(vertex_id, self.superstep)
        lines = [
            f"vertex {record.vertex_id!r} @ superstep {record.superstep} "
            f"(worker {record.worker_id})",
            f"  reasons:     {', '.join(record.reasons)}",
            f"  value:       {record.value_before!r} -> {record.value_after!r}",
            f"  halted:      {record.halted}",
            f"  edges:       {record.edges_after!r}",
            f"  aggregators: {record.aggregators!r}",
            f"  global data: superstep={record.superstep}, "
            f"|V|={record.num_vertices}, |E|={record.num_edges}",
        ]
        lines.append("  incoming:")
        for source, value in record.incoming:
            lines.append(f"    from {source!r}: {value!r}")
        lines.append("  outgoing:")
        for target, value in record.sent:
            lines.append(f"    to   {target!r}: {value!r}")
        if record.violations:
            lines.append("  violations:")
            for violation in record.violations:
                lines.append(f"    {violation.kind}: {violation.details!r}")
        if record.exception is not None:
            lines.append(f"  exception: {record.exception.summary()}")
        return "\n".join(lines)

    # -- search ----------------------------------------------------------------

    def search(self, query):
        """Find rows matching ``query`` in this superstep.

        A record matches when the query string appears in its id, one of
        its neighbors' ids, its value (before or after), or any message it
        sent or received — the four search axes the paper lists.
        """
        needle = str(query)
        return [r for r in self.rows() if self._matches(r, needle)]

    @staticmethod
    def _matches(record, needle):
        if needle in str(record.vertex_id):
            return True
        if any(needle in str(neighbor) for neighbor in record.edges_after):
            return True
        if needle in repr(record.value_before) or needle in repr(record.value_after):
            return True
        for _source, value in record.incoming:
            if needle in repr(value):
                return True
        for _target, value in record.sent:
            if needle in repr(value):
                return True
        return False

    # -- rendering --------------------------------------------------------------

    def render(self, limit=None):
        """Plain-text table for the current superstep."""
        rows = self.rows()
        shown = rows if limit is None else rows[:limit]
        lines = [
            f"=== Tabular View — superstep {self.superstep} "
            f"({len(rows)} captured) ===",
        ]
        lines.extend(self.row_summary(record) for record in shown)
        if limit is not None and len(rows) > limit:
            lines.append(f"... {len(rows) - limit} more rows")
        return "\n".join(lines)
