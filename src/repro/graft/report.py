"""Self-contained HTML report for a whole debug run.

The paper's GUI is a browser application over the trace files; this module
renders the same information — per-superstep captured vertices with their
contexts, the M/V/E status strip, violations and exceptions, and the
master's aggregator history — into one static HTML file a user can open,
archive, or attach to a bug report.
"""

import html

_STYLE = """
body { font-family: monospace; margin: 2em; }
h2 { border-bottom: 1px solid #999; }
table { border-collapse: collapse; margin: 0.5em 0; }
td, th { border: 1px solid #bbb; padding: 2px 8px; text-align: left; }
.red { background: #fbb; }
.green { background: #bfb; }
.inactive { opacity: 0.45; }
details { margin: 0.3em 0; }
pre { background: #f4f4f4; padding: 4px; }
"""


def _esc(value):
    return html.escape(repr(value))


def _status_strip(reader, superstep):
    violations = reader.violations(superstep)
    message_bad = any(v.kind in ("message", "message_target") for v in violations)
    value_bad = any(v.kind in ("vertex_value", "neighborhood") for v in violations)
    exception_bad = bool(reader.exceptions(superstep))
    cells = []
    for label, bad in (("M", message_bad), ("V", value_bad), ("E", exception_bad)):
        klass = "red" if bad else "green"
        cells.append(f'<span class="{klass}">[{label}]</span>')
    return " ".join(cells)


def _vertex_details(record):
    incoming = "".join(
        f"<li>from {_esc(source)}: {_esc(value)}</li>"
        for source, value in record.incoming
    )
    outgoing = "".join(
        f"<li>to {_esc(target)}: {_esc(value)}</li>"
        for target, value in record.sent
    )
    violations = "".join(
        f"<li>{html.escape(v.kind)}: {_esc(v.details)}</li>"
        for v in record.violations
    )
    exception = ""
    if record.exception is not None:
        exception = (
            f"<p>exception: {html.escape(record.exception.summary())}</p>"
            f"<pre>{html.escape(record.exception.traceback_text)}</pre>"
        )
    state = "" if record.active else ' class="inactive"'
    return (
        f"<details{state}><summary>vertex {_esc(record.vertex_id)} "
        f"— value {_esc(record.value_after)} "
        f"({html.escape(', '.join(record.reasons))})</summary>"
        f"<p>value: {_esc(record.value_before)} → {_esc(record.value_after)}; "
        f"halted: {record.halted}; worker {record.worker_id}</p>"
        f"<p>edges: {_esc(record.edges_after)}</p>"
        f"<p>aggregators: {_esc(record.aggregators)}</p>"
        f"<ul>incoming: {incoming or '<li>(none)</li>'}</ul>"
        f"<ul>outgoing: {outgoing or '<li>(none)</li>'}</ul>"
        + (f"<ul>violations: {violations}</ul>" if violations else "")
        + exception
        + "</details>"
    )


def render_html_report(run, max_vertices_per_superstep=200):
    """Render one :class:`~repro.graft.DebugRun` as a standalone HTML page."""
    reader = run.reader
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>Graft report — {html.escape(run.session.job_id)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>Graft report — job {html.escape(run.session.job_id)}</h1>",
        f"<p>{html.escape(run.summary())}</p>",
    ]

    parts.append("<h2>Master contexts (aggregators per superstep)</h2>")
    parts.append("<table><tr><th>superstep</th><th>aggregators</th>"
                 "<th>halted</th></tr>")
    for master in reader.master_records:
        parts.append(
            f"<tr><td>{master.superstep}</td>"
            f"<td>{_esc(master.aggregators)}</td>"
            f"<td>{master.halted}</td></tr>"
        )
    parts.append("</table>")

    violations = reader.violations()
    exceptions = reader.exceptions()
    parts.append("<h2>Violations and exceptions</h2>")
    if not violations and not exceptions:
        parts.append("<p>none</p>")
    else:
        parts.append("<table><tr><th>kind</th><th>vertex</th>"
                     "<th>superstep</th><th>details</th></tr>")
        for violation in violations:
            parts.append(
                f"<tr class='red'><td>{html.escape(violation.kind)}</td>"
                f"<td>{_esc(violation.vertex_id)}</td>"
                f"<td>{violation.superstep}</td>"
                f"<td>{_esc(violation.details)}</td></tr>"
            )
        for record, exception in exceptions:
            parts.append(
                f"<tr class='red'><td>exception</td>"
                f"<td>{_esc(record.vertex_id)}</td>"
                f"<td>{record.superstep}</td>"
                f"<td>{html.escape(exception.summary())}</td></tr>"
            )
        parts.append("</table>")

    for superstep in reader.supersteps():
        records = reader.at_superstep(superstep)
        parts.append(
            f"<h2>Superstep {superstep} {_status_strip(reader, superstep)} "
            f"({len(records)} captured)</h2>"
        )
        for record in records[:max_vertices_per_superstep]:
            parts.append(_vertex_details(record))
        if len(records) > max_vertices_per_superstep:
            parts.append(
                f"<p>... {len(records) - max_vertices_per_superstep} more</p>"
            )

    parts.append("</body></html>")
    return "".join(parts)


def export_html_report(run, path):
    """Write the HTML report to a local file; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_html_report(run))
    return path
