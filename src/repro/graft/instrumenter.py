"""The Graft Instrumenter.

The paper's instrumenter uses Javassist to wrap the user's
``vertex.compute()`` inside an instrumented one "which is the final program
that is submitted to Giraph". Here :func:`instrument` wraps the user's
:class:`~repro.pregel.Computation` factory in one producing
:class:`InstrumentedComputation` objects — the engine runs those, none the
wiser, and the user's class is untouched.

Per ``compute()`` call the wrapper:

1. notes the pre-call context (value, incoming messages, and — when the
   vertex is already known to be captured — an eager copy of its edges);
2. attaches a send observer that checks the message-value constraint at
   each send, before any combining (so the constraint sees the source id,
   per the paper's signature);
3. invokes the user's ``compute()``;
4. afterwards checks the vertex-value constraint on the final value and
   decides whether to capture (any of the five categories, or
   all-active), honoring the superstep filter and the max-captures
   safety net;
5. on an exception, captures the context with the error and traceback,
   then either re-raises (failing the job, Giraph-style) or — with
   ``continue_on_exception()`` — halts just that vertex and keeps going.

A caveat the library shares with Giraph's object-reuse conventions: vertex
values and messages are treated as immutable; a ``compute()`` that mutates
a value object *in place* (rather than ``ctx.set_value(new)``) can make the
recorded pre-value wrong. Edge maps are only eagerly copied for vertices
known in advance to be captured; constraint-triggered captures of a
``compute()`` that also mutated its edges record the *post* edges (noted in
DESIGN.md; no scenario algorithm does this).
"""

import traceback

from repro.graft.capture import (
    REASON_ALL_ACTIVE,
    REASON_EXCEPTION,
    REASON_MESSAGE,
    REASON_VERTEX_VALUE,
    ExceptionRecord,
    VertexContextRecord,
    Violation,
)
from repro.pregel.computation import Computation


def instrument(computation_factory, session):
    """Wrap ``computation_factory`` for a Graft session.

    Returns a factory the engine can use directly; each call produces an
    instrumented computation bound to the next worker id (the engine
    instantiates one per worker, in worker order).
    """

    def instrumented_factory():
        worker_id = session.allocate_worker_id()
        return InstrumentedComputation(computation_factory(), session, worker_id)

    return instrumented_factory


class _SendObserver:
    """Intercepts sends for one compute() call; checks message constraints."""

    def __init__(self, session, check_now):
        self._session = session
        self._check_now = check_now
        self.violations = []
        self.deferred_sends = []

    def on_send(self, ctx, target, value):
        config = self._session.config
        if self._check_now and not config.message_value_constraint(
            value, ctx.vertex_id, target, ctx.superstep
        ):
            self.violations.append(
                Violation(
                    kind="message",
                    vertex_id=ctx.vertex_id,
                    superstep=ctx.superstep,
                    details={
                        "message": value,
                        "source": ctx.vertex_id,
                        "target": target,
                    },
                )
            )
        if self._session.checks_messages_with_target:
            self.deferred_sends.append((target, value))

    def on_set_value(self, ctx, old, new):
        """Value updates are validated once, after compute() returns."""


class InstrumentedComputation(Computation):
    """The wrapped computation the engine actually runs."""

    def __init__(self, inner, session, worker_id):
        self._inner = inner
        self._session = session
        self._worker_id = worker_id

    # Delegate the non-compute hooks untouched.

    def initial_value(self, vertex_id, input_value):
        return self._inner.initial_value(vertex_id, input_value)

    def default_vertex_value(self, vertex_id):
        return self._inner.default_vertex_value(vertex_id)

    def pre_superstep(self, worker_info):
        self._inner.pre_superstep(worker_info)

    def post_superstep(self, worker_info):
        self._inner.post_superstep(worker_info)

    def compute(self, ctx, messages):
        session = self._session
        if not session.tracking(ctx.superstep):
            self._inner.compute(ctx, messages)
            return

        config = session.config
        static_reasons = session.static_reasons(ctx.vertex_id)
        all_active = session.captures_all_active
        eager = bool(static_reasons) or all_active

        value_before = ctx.value
        edges_before = ctx.edges_snapshot() if eager else None

        observer = None
        if session.checks_messages or session.checks_messages_with_target:
            observer = _SendObserver(session, session.checks_messages)
            ctx.attach_observer(observer)

        try:
            self._inner.compute(ctx, messages)
        except Exception as exc:  # noqa: BLE001 - captured, then policy decides
            if config.capture_exceptions():
                self._capture_exception(ctx, exc, value_before, edges_before, observer)
                if config.continue_on_exception():
                    ctx.vote_to_halt()
                    return
            raise

        reasons = list(static_reasons)
        if all_active:
            reasons.append(REASON_ALL_ACTIVE)
        violations = list(observer.violations) if observer else []
        if violations:
            reasons.append(REASON_MESSAGE)
        if session.checks_vertex_values and not config.vertex_value_constraint(
            ctx.value, ctx.vertex_id, ctx.superstep
        ):
            violations.append(
                Violation(
                    kind="vertex_value",
                    vertex_id=ctx.vertex_id,
                    superstep=ctx.superstep,
                    details={"value": ctx.value},
                )
            )
            reasons.append(REASON_VERTEX_VALUE)

        needs_deferral = session.has_deferred_checks
        if not reasons and not needs_deferral:
            return
        record = self._build_record(
            ctx, value_before, edges_before, reasons, violations
        )
        if needs_deferral:
            sends = observer.deferred_sends if observer is not None else ()
            session.buffer_record(record, sends)
        elif reasons:
            session.emit_record(record)

    def _build_record(self, ctx, value_before, edges_before, reasons, violations):
        # The inbox is immutable during compute(), so the incoming list can
        # be materialized lazily here — only captured vertices pay for it.
        incoming = [(e.source, e.value) for e in ctx.message_envelopes()]
        return VertexContextRecord(
            vertex_id=ctx.vertex_id,
            superstep=ctx.superstep,
            worker_id=self._worker_id,
            value_before=value_before,
            edges_before=(
                edges_before if edges_before is not None else ctx.edges_snapshot()
            ),
            incoming=incoming,
            aggregators=self._session.aggregator_snapshot(),
            num_vertices=ctx.num_vertices,
            num_edges=ctx.num_edges,
            run_seed=self._session.run_seed,
            value_after=ctx.value,
            edges_after=ctx.edges_snapshot(),
            sent=[(e.target, e.value) for e in ctx.sent_envelopes],
            halted=ctx.halted,
            reasons=reasons,
            violations=violations,
        )

    def _capture_exception(self, ctx, exc, value_before, edges_before, observer):
        violations = list(observer.violations) if observer else []
        record = self._build_record(
            ctx,
            value_before,
            edges_before,
            reasons=[REASON_EXCEPTION],
            violations=violations,
        )
        record.exception = ExceptionRecord(
            type_name=type(exc).__name__,
            message=str(exc),
            traceback_text=traceback.format_exc(),
        )
        self._session.emit_record(record)
