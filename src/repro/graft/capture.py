"""Capture records: what Graft writes to trace files.

A :class:`VertexContextRecord` is the full context of one ``compute()``
call — the five pieces of Giraph data the paper lists (id, outgoing edges,
incoming messages, aggregators, global data) as they stood *before* the
call, plus the observed outcome (post-value, post-edges, sent messages,
halt decision), any constraint violations or exception, and the reasons the
vertex was captured. The pre-state is what replay rebuilds; the outcome is
what replay is verified against.

A :class:`MasterContextRecord` is the master's context for one superstep —
"just the aggregator values" (Section 3.4) plus the halt decision.

Records serialize to single JSON lines through the value codec, keeping
trace files small, textual, and diffable.
"""

from dataclasses import dataclass, field, fields

from repro.common.serialization import register_value_type

# Capture reasons (the paper's five DebugConfig categories + all-active).
REASON_SPECIFIED = "specified"
REASON_RANDOM = "random"
REASON_NEIGHBOR = "neighbor"
REASON_VERTEX_VALUE = "vertex_value_violation"
REASON_MESSAGE = "message_violation"
REASON_EXCEPTION = "exception"
REASON_ALL_ACTIVE = "all_active"
REASON_NEIGHBORHOOD = "neighborhood_violation"


@register_value_type
@dataclass(frozen=True)
class Violation:
    """One constraint violation.

    ``kind`` is ``"message"``, ``"vertex_value"``, or ``"neighborhood"``;
    ``details`` carries the offending data (message value and endpoints, or
    the bad vertex value, or the clashing neighbor).
    """

    kind: str
    vertex_id: object
    superstep: int
    details: dict


@register_value_type
@dataclass(frozen=True)
class ExceptionRecord:
    """A captured exception from a user ``compute()`` call."""

    type_name: str
    message: str
    traceback_text: str

    def summary(self):
        return f"{self.type_name}: {self.message}"


@dataclass
class VertexContextRecord:
    """Full captured context of one ``compute()`` call."""

    vertex_id: object
    superstep: int
    worker_id: int
    # The five pieces of pre-call context:
    value_before: object
    edges_before: dict
    incoming: list           # [(source_id, message_value), ...]
    aggregators: dict        # visible aggregator values this superstep
    num_vertices: int
    num_edges: int
    run_seed: object
    # Observed outcome:
    value_after: object = None
    edges_after: dict = field(default_factory=dict)
    sent: list = field(default_factory=list)   # [(target_id, value), ...]
    halted: bool = False
    # Why it was captured, and what went wrong:
    reasons: list = field(default_factory=list)
    violations: list = field(default_factory=list)
    exception: object = None

    @property
    def key(self):
        """Index key ``(vertex_id, superstep)``."""
        return (self.vertex_id, self.superstep)

    @property
    def active(self):
        """Whether the vertex stayed active after this superstep."""
        return not self.halted

    def summary(self):
        flags = ",".join(self.reasons)
        return (
            f"vertex {self.vertex_id!r} @ superstep {self.superstep} "
            f"[{flags}] value {self.value_before!r} -> {self.value_after!r}, "
            f"{len(self.incoming)} in / {len(self.sent)} out"
        )


@dataclass
class MasterContextRecord:
    """Captured master context for one superstep.

    ``aggregators_before`` is the merged state master_compute() saw when it
    started (what replay rebuilds); ``aggregators`` is the state after it
    ran — what the vertices of this superstep observed (what the GUI's
    aggregator panel shows).
    """

    superstep: int
    aggregators: dict
    aggregators_before: dict = field(default_factory=dict)
    halted: bool = False

    def summary(self):
        halt = " HALT" if self.halted else ""
        return f"master @ superstep {self.superstep}: {self.aggregators!r}{halt}"


# -- serialization -----------------------------------------------------------

_VERTEX_KIND = "vertex"
_MASTER_KIND = "master"

# fields() walks the dataclass machinery on every call; records are encoded
# in bulk on the capture hot path, so cache the names per record class.
_FIELD_NAME_CACHE = {}


def _field_names(cls):
    names = _FIELD_NAME_CACHE.get(cls)
    if names is None:
        names = tuple(f.name for f in fields(cls))
        _FIELD_NAME_CACHE[cls] = names
    return names


def record_to_line(record, codec):
    """Serialize a capture record to one JSON line."""
    if isinstance(record, VertexContextRecord):
        kind = _VERTEX_KIND
    elif isinstance(record, MasterContextRecord):
        kind = _MASTER_KIND
    else:
        raise TypeError(f"not a capture record: {record!r}")
    payload = {"kind": kind}
    for name in _field_names(record.__class__):
        payload[name] = getattr(record, name)
    return codec.dumps(payload)


def record_from_line(line, codec):
    """Deserialize one trace line back into a record."""
    payload = codec.loads(line)
    kind = payload.pop("kind")
    if kind == _VERTEX_KIND:
        return VertexContextRecord(**payload)
    if kind == _MASTER_KIND:
        return MasterContextRecord(**payload)
    raise ValueError(f"unknown trace record kind {kind!r}")


# -- compact row form (the v2 trace format) -----------------------------------
#
# The v1 line above repeats every field name in every record. The v2 trace
# format instead interns the field names once, in the file header, and
# stores each record as a positional JSON array ``[kind_code, field_0,
# field_1, ...]`` — same codec-encoded values, no keys. Both forms decode
# to identical record objects, which is what keeps
# ``canonical_trace_digest`` byte-stable across the two encodings.

KIND_VERTEX = 0
KIND_MASTER = 1


def vertex_field_names():
    """The VertexContextRecord field order the v2 row form relies on."""
    return _field_names(VertexContextRecord)


def master_field_names():
    """The MasterContextRecord field order the v2 row form relies on."""
    return _field_names(MasterContextRecord)


def record_to_row(record, codec):
    """Serialize a capture record to its compact positional row."""
    if isinstance(record, VertexContextRecord):
        kind = KIND_VERTEX
    elif isinstance(record, MasterContextRecord):
        kind = KIND_MASTER
    else:
        raise TypeError(f"not a capture record: {record!r}")
    row = [kind]
    encode = codec.encode
    for name in _field_names(record.__class__):
        row.append(encode(getattr(record, name)))
    return row


def record_from_row(row, codec, vertex_fields=None, master_fields=None):
    """Deserialize a compact positional row back into a record.

    ``vertex_fields`` / ``master_fields`` are the field-name tables from
    the trace file header; they default to the current classes' fields, so
    files written by the same library version decode without a header.
    """
    kind = row[0]
    if kind == KIND_VERTEX:
        names = vertex_fields or _field_names(VertexContextRecord)
        cls = VertexContextRecord
    elif kind == KIND_MASTER:
        names = master_fields or _field_names(MasterContextRecord)
        cls = MasterContextRecord
    else:
        raise ValueError(f"unknown trace record kind code {kind!r}")
    decode = codec.decode
    return cls(**{name: decode(value) for name, value in zip(names, row[1:])})
