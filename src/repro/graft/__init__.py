"""Graft: the capture / visualize / reproduce debugger.

This package is the paper's contribution. The debugging cycle it supports:

1. **Capture** — the user writes a :class:`DebugConfig` naming the vertices
   of interest (by id, randomly, by value/message constraint violation, by
   exception, or all active ones). :func:`debug_run` instruments the user's
   computation and runs it; the instrumented workers log the full compute
   context of each selected vertex to per-worker trace files on the
   (simulated) distributed file system.

2. **Visualize** — the returned :class:`DebugRun` exposes the paper's three
   GUI views (node-link, tabular with search, violations & exceptions) plus
   superstep stepping, so the user narrows in on suspicious vertices and
   supersteps.

3. **Reproduce** — for any captured (vertex, superstep),
   ``DebugRun.reproduce()`` replays the exact ``compute()`` call in-process,
   reporting precisely which source lines executed, and
   ``DebugRun.generate_test_code()`` emits a standalone pytest file (the
   paper's generated JUnit test) that rebuilds the context and re-runs the
   call under any debugger.

Master contexts are captured automatically every superstep, and the offline
small-graph builder plus end-to-end test generation round out Section 3.4.
"""

from repro.common.errors import StaticAnalysisError
from repro.graft.combiner_check import CombinerCheckReport, check_combiner_safety
from repro.graft.capture import (
    ExceptionRecord,
    MasterContextRecord,
    VertexContextRecord,
    Violation,
)
from repro.graft.config import (
    CaptureAllActiveConfig,
    DebugConfig,
    standard_configs,
)
from repro.graft.constraint_library import (
    BoundedValues,
    DistinctNeighborValues,
    MonotoneValues,
    NonNegativeMessages,
    NonNegativeValues,
    NoSelfMessages,
)
from repro.graft.debug_run import DebugRun, GraftSession, debug_job, debug_run
from repro.graft.diffing import DiffReport, Divergence, diff_runs
from repro.graft.fidelity import FidelityReport, verify_run_fidelity
from repro.graft.instrumenter import instrument
from repro.graft.offline import OfflineGraphBuilder
from repro.graft.sanitizer import (
    FirstDivergence,
    SanitizerReport,
    order_insensitive_digest,
    order_insensitive_lines,
    run_sanitizer,
)
from repro.graft.reproducer import (
    ReplayHarness,
    ReplayOutcome,
    ReplayReport,
    generate_end_to_end_test,
    generate_master_test_code,
    generate_test_code,
    replay_from_trace,
    replay_record,
)
from repro.graft.trace import (
    TRACE_FORMAT_V1,
    TRACE_FORMAT_V2,
    TraceReader,
    TraceStore,
    canonical_trace_digest,
    canonical_trace_lines,
    iter_canonical_trace_lines,
    iter_file_records,
    trace_stats,
)

__all__ = [
    "StaticAnalysisError",
    "Violation",
    "ExceptionRecord",
    "VertexContextRecord",
    "MasterContextRecord",
    "DebugConfig",
    "CaptureAllActiveConfig",
    "standard_configs",
    "BoundedValues",
    "DistinctNeighborValues",
    "MonotoneValues",
    "NonNegativeMessages",
    "NonNegativeValues",
    "NoSelfMessages",
    "DebugRun",
    "GraftSession",
    "debug_job",
    "debug_run",
    "DiffReport",
    "Divergence",
    "diff_runs",
    "CombinerCheckReport",
    "check_combiner_safety",
    "FidelityReport",
    "verify_run_fidelity",
    "FirstDivergence",
    "SanitizerReport",
    "order_insensitive_digest",
    "order_insensitive_lines",
    "run_sanitizer",
    "instrument",
    "OfflineGraphBuilder",
    "ReplayHarness",
    "ReplayOutcome",
    "ReplayReport",
    "replay_record",
    "replay_from_trace",
    "generate_test_code",
    "generate_master_test_code",
    "generate_end_to_end_test",
    "TraceReader",
    "TraceStore",
    "TRACE_FORMAT_V1",
    "TRACE_FORMAT_V2",
    "canonical_trace_digest",
    "canonical_trace_lines",
    "iter_canonical_trace_lines",
    "iter_file_records",
    "trace_stats",
]
