"""DebugConfig: how users tell Graft what to capture.

Users subclass :class:`DebugConfig` and override the methods they need —
the direct analogue of the paper's Figure 2. The five capture categories of
Section 3.1 map to:

1. ``vertices_to_capture()`` (+ ``capture_neighbors_of_vertices()``);
2. ``num_random_vertices_to_capture()`` (+ neighbors, same flag);
3. ``vertex_value_constraint(value, vertex_id, superstep)``;
4. ``message_value_constraint(message, source_id, target_id, superstep)``;
5. exception capture (``capture_exceptions()``, on by default).

``capture_all_active()`` switches to capturing every computed vertex, and
``should_capture_superstep()`` limits which supersteps capture at all
(Scenario 4.3 captures all active vertices only late in the run). The
``max_captures()`` safety net is the paper's adjustable threshold after
which Graft stops capturing.

Two extended-constraint hooks implement the paper's Section 7 future work:
``message_value_constraint_with_target`` also sees the *destination
vertex's current value*, and ``neighborhood_constraint`` sees the values of
all neighbors (enough to express "no two adjacent vertices share a color").
"""

from repro.common.errors import GraftError

DEFAULT_MAX_CAPTURES = 100_000


class DebugConfig:
    """Base configuration; every method has the paper's default behaviour.

    A constraint method returning ``True`` means the value satisfies the
    constraint; ``False`` flags a violation. Constraint checking is only
    enabled when the method is actually overridden, so an un-overridden
    constraint costs nothing (this matters for reproducing the paper's
    per-configuration overhead differences).
    """

    # -- category 1 & 2: which vertices --------------------------------------

    def vertices_to_capture(self):
        """Explicit vertex ids to capture (category 1). Default: none."""
        return ()

    def num_random_vertices_to_capture(self):
        """How many randomly chosen vertices to capture (category 2)."""
        return 0

    def capture_neighbors_of_vertices(self):
        """Also capture the out-neighbors of specified/random vertices."""
        return False

    def capture_all_active(self):
        """Capture every vertex that computes (subject to superstep filter)."""
        return False

    # -- categories 3-5: constraints and exceptions -------------------------

    def vertex_value_constraint(self, value, vertex_id, superstep):
        """Return False if ``value`` is bad; checked after each compute()."""
        return True

    def message_value_constraint(self, message, source_id, target_id, superstep):
        """Return False if ``message`` is bad; checked at each send."""
        return True

    def capture_exceptions(self):
        """Capture vertices whose compute() raises (category 5)."""
        return True

    def continue_on_exception(self):
        """After capturing an exception, halt the vertex and keep running
        instead of failing the job (lets one run collect every failure)."""
        return False

    # -- Section 7 extended constraints --------------------------------------

    def message_value_constraint_with_target(
        self, message, source_id, target_id, target_value, superstep
    ):
        """Like ``message_value_constraint`` but also sees the destination
        vertex's current value. Checked at the superstep barrier (the
        destination value is not known at send time on a real cluster)."""
        return True

    def neighborhood_constraint(self, value, neighbor_values, vertex_id, superstep):
        """Constraint over a vertex and its neighbors' values, checked at
        the superstep barrier. ``neighbor_values`` maps neighbor id ->
        value. Express e.g. "no two adjacent vertices share a color"."""
        return True

    # -- scoping --------------------------------------------------------------

    def should_capture_superstep(self, superstep):
        """Limit capturing to certain supersteps. Default: all of them."""
        return True

    def max_captures(self):
        """Safety-net capture budget; capturing stops once exhausted."""
        return DEFAULT_MAX_CAPTURES

    # -- introspection (used by the instrumenter) ----------------------------

    def checks_vertex_values(self):
        return _overridden(self, "vertex_value_constraint")

    def checks_messages(self):
        return _overridden(self, "message_value_constraint")

    def checks_messages_with_target(self):
        return _overridden(self, "message_value_constraint_with_target")

    def checks_neighborhoods(self):
        return _overridden(self, "neighborhood_constraint")

    def validate(self):
        """Sanity-check the configuration values."""
        if self.num_random_vertices_to_capture() < 0:
            raise GraftError("num_random_vertices_to_capture() must be >= 0")
        if self.max_captures() <= 0:
            raise GraftError("max_captures() must be positive")
        return self


def _overridden(config, method_name):
    """True when ``config``'s class replaces DebugConfig's default method."""
    return getattr(type(config), method_name) is not getattr(
        DebugConfig, method_name
    )


class CaptureAllActiveConfig(DebugConfig):
    """Capture every active vertex, optionally only from a superstep on.

    Scenario 4.3 in one line: ``CaptureAllActiveConfig(from_superstep=500)``.
    """

    def __init__(self, from_superstep=0, to_superstep=None, max_captures=None):
        self._from = from_superstep
        self._to = to_superstep
        self._max = max_captures or DEFAULT_MAX_CAPTURES

    def capture_all_active(self):
        return True

    def should_capture_superstep(self, superstep):
        if superstep < self._from:
            return False
        return self._to is None or superstep <= self._to

    def max_captures(self):
        return self._max


# -- Table 3: the paper's benchmark configurations -----------------------------


class _SpecifiedConfig(DebugConfig):
    """DC-sp: captures a handful of vertices specified by their ids."""

    def __init__(self, vertex_ids, neighbors=False):
        self._ids = tuple(vertex_ids)
        self._neighbors = neighbors

    def vertices_to_capture(self):
        return self._ids

    def capture_neighbors_of_vertices(self):
        return self._neighbors


class _MessageConstraintConfig(DebugConfig):
    """DC-msg: message values must be non-negative."""

    def message_value_constraint(self, message, source_id, target_id, superstep):
        return not _is_negative(message)


class _VertexValueConstraintConfig(DebugConfig):
    """DC-vv: vertex values must be non-negative."""

    def vertex_value_constraint(self, value, vertex_id, superstep):
        return not _is_negative(value)


class _FullConfig(DebugConfig):
    """DC-full: ids + neighbors + both constraints + exceptions."""

    def __init__(self, vertex_ids):
        self._ids = tuple(vertex_ids)

    def vertices_to_capture(self):
        return self._ids

    def capture_neighbors_of_vertices(self):
        return True

    def message_value_constraint(self, message, source_id, target_id, superstep):
        return not _is_negative(message)

    def vertex_value_constraint(self, value, vertex_id, superstep):
        return not _is_negative(value)


def _is_negative(value):
    """Negativity test tolerant of non-numeric values (never a violation).

    Checked on every message/vertex value, so it must not rely on raising
    ``TypeError`` for non-numeric values — raising is far too slow for a
    hot path. Fixed-width integer values expose ``.value``.
    """
    if isinstance(value, (int, float)):
        return value < 0
    inner = getattr(value, "value", None)
    if isinstance(inner, (int, float)):
        return inner < 0
    return False


def standard_configs(vertex_ids):
    """The paper's Table 3 DebugConfig set, keyed by the paper's names.

    ``vertex_ids`` supplies the specified vertices: DC-sp and DC-sp+nbr use
    the first 5, DC-full the first 10 (as in Table 3).

    >>> sorted(standard_configs(range(10)))
    ['DC-full', 'DC-msg', 'DC-sp', 'DC-sp+nbr', 'DC-vv']
    """
    ids = list(vertex_ids)
    if len(ids) < 10:
        raise GraftError("standard_configs needs at least 10 vertex ids")
    return {
        "DC-sp": _SpecifiedConfig(ids[:5]),
        "DC-sp+nbr": _SpecifiedConfig(ids[:5], neighbors=True),
        "DC-msg": _MessageConstraintConfig(),
        "DC-vv": _VertexValueConstraintConfig(),
        "DC-full": _FullConfig(ids[:10]),
    }


#: Table 3 descriptions, for the benchmark that regenerates the table.
STANDARD_CONFIG_DESCRIPTIONS = {
    "DC-sp": "Captures 5 specified vertices",
    "DC-sp+nbr": "Captures 5 specified vertices and their neighbors",
    "DC-msg": "Specifies constraint that message values are non-negative",
    "DC-vv": "Specifies constraint that vertex values are non-negative.",
    "DC-full": (
        "Captures 10 specified vertices and their neighbors, specifies "
        "message and vertex constraints, and checks for exceptions"
    ),
}
