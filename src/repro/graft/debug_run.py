"""The Graft session and the user-facing :func:`debug_run` entry point.

:class:`GraftSession` is the run-time half of the debugger: it owns the
capture policy derived from the user's :class:`~repro.graft.DebugConfig`,
the per-worker trace writers, the random-capture selection, the master
capture, the extended-constraint barrier checks, and the max-captures
safety net. It attaches to the engine as a listener — the engine has no
knowledge of Graft, mirroring how the paper's instrumented jar is "the
final program that is submitted to Giraph".

:func:`debug_run` is the one call a user makes::

    run = debug_run(MyComputation, graph, MyDebugConfig(), master=...)
    run.tabular_view(superstep=41).render()
    report = run.reproduce(vertex_id=672, superstep=41)
    print(run.generate_test_code(672, 41))
"""

import itertools
import warnings

from repro.common.errors import (
    GraftError,
    PregelError,
    ReproError,
    StaticAnalysisError,
)
from repro.common.rng import derive_rng
from repro.graft.capture import (
    REASON_MESSAGE,
    REASON_NEIGHBOR,
    REASON_NEIGHBORHOOD,
    REASON_RANDOM,
    REASON_SPECIFIED,
    MasterContextRecord,
    Violation,
)
from repro.graft.trace import TRACE_FORMAT_V2, TraceReader, TraceStore
from repro.pregel.engine import PregelEngine

_JOB_COUNTER = itertools.count()


class GraftSession:
    """Run-time capture machinery; also an engine listener."""

    def __init__(self, config, graph, filesystem, job_id, num_workers, codec=None,
                 trace_format=TRACE_FORMAT_V2):
        self.config = config.validate()
        self._graph = graph
        self.filesystem = filesystem
        self.job_id = job_id
        self.num_workers = num_workers
        self.store = TraceStore(
            filesystem, job_id, num_workers, codec, format=trace_format
        )
        self._worker_ids = itertools.count()
        self._static_reasons = {}
        self._current_aggregators = {}
        # Per-worker capture buffers. During a superstep each worker's step
        # appends only to its own list (no locks needed under concurrent
        # backends); the barrier drains them to the trace files in
        # worker-id order — the order a serial run would have written.
        self._buffers = {wid: [] for wid in range(num_workers)}
        self._deferred = {wid: [] for wid in range(num_workers)}
        self._engine = None
        self.run_seed = None
        self.superstep_metrics = []
        self.capture_count = 0
        self.capture_limit_hit = False
        self._finalized = False
        # Cache the config-shape booleans once; they are consulted per vertex.
        self.captures_all_active = config.capture_all_active()
        self.checks_messages = config.checks_messages()
        self.checks_vertex_values = config.checks_vertex_values()
        self.checks_messages_with_target = config.checks_messages_with_target()
        self.checks_neighborhoods = config.checks_neighborhoods()
        self.has_deferred_checks = (
            self.checks_messages_with_target or self.checks_neighborhoods
        )

    # -- instrumenter-facing API ----------------------------------------------

    def allocate_worker_id(self):
        return next(self._worker_ids)

    def tracking(self, superstep):
        """Whether anything should be captured this superstep."""
        if self.capture_limit_hit:
            return False
        return self.config.should_capture_superstep(superstep)

    def static_reasons(self, vertex_id):
        """Reasons known before the run (specified/random/neighbor)."""
        return self._static_reasons.get(vertex_id, ())

    def aggregator_snapshot(self):
        return self._current_aggregators

    def emit_record(self, record):
        """Queue a capture in its worker's buffer for the barrier drain.

        Called from inside worker steps (possibly concurrently — each
        worker touches only its own buffer). The max-captures safety net
        is enforced at drain time, where the global write order is known.
        """
        self._buffers[record.worker_id].append(record)

    def buffer_record(self, record, deferred_sends=()):
        """Hold a record until barrier-time extended checks run."""
        self._deferred[record.worker_id].append((record, tuple(deferred_sends)))

    def _write_record(self, record):
        """Write one capture immediately, enforcing the safety net."""
        if self.capture_limit_hit:
            return
        if self.capture_count >= self.config.max_captures():
            self.capture_limit_hit = True
            return
        self.store.write_vertex_record(record)
        self.capture_count += 1

    def _drain_buffers(self):
        """Flush per-worker capture buffers to the store in worker-id order.

        Reproduces a serial run's write order exactly: worker 0's records
        (in compute order), then worker 1's, and so on — which also makes
        the max-captures cutoff land on the same record regardless of the
        execution backend.
        """
        max_captures = self.config.max_captures()
        for worker_id in sorted(self._buffers):
            records = self._buffers[worker_id]
            if not records:
                continue
            self._buffers[worker_id] = []
            if self.capture_limit_hit:
                continue
            allowed = max_captures - self.capture_count
            if len(records) > allowed:
                self.capture_limit_hit = True
                records = records[:allowed]
            if records:
                self.store.write_vertex_records(records)
                self.capture_count += len(records)

    # -- process-backend payload transfer ---------------------------------
    # Under executor="processes" each step runs in a forked child, so the
    # records it buffered live in the child's memory. The engine calls
    # collect_step_payload inside the child and absorb_step_payload in the
    # parent at the barrier, after which draining proceeds as usual.

    def collect_step_payload(self, worker_id):
        return (
            self._buffers.get(worker_id, []),
            self._deferred.get(worker_id, []),
        )

    def absorb_step_payload(self, worker_id, payload):
        records, deferred = payload
        self._buffers[worker_id] = list(records)
        self._deferred[worker_id] = list(deferred)

    # -- engine listener hooks -------------------------------------------------

    def on_start(self, engine):
        self._engine = engine
        self.run_seed = engine._seed
        self._select_static_captures()

    def on_master_computed(self, superstep, master_ctx):
        self._current_aggregators = master_ctx.aggregator_snapshot()
        self.store.write_master_record(
            MasterContextRecord(
                superstep=superstep,
                aggregators=dict(self._current_aggregators),
                aggregators_before=master_ctx.initial_aggregator_snapshot(),
                halted=master_ctx.halted,
            )
        )

    def on_superstep_end(self, superstep, metrics):
        self._drain_buffers()
        if any(self._deferred.values()):
            self._evaluate_deferred(superstep)
        self.superstep_metrics.append(metrics)
        self.store.flush()

    def on_superstep_aborted(self, superstep, worker_id):
        """A step's fatal error is about to propagate; persist like serial.

        A serial engine never runs workers after the failing one, so their
        buffered captures (which concurrent backends *did* produce) are
        discarded; everything up to and including the failing worker is
        drained. Deferred records are dropped — their barrier-time checks
        never ran in a failing serial superstep either.
        """
        for wid in self._buffers:
            if wid > worker_id:
                self._buffers[wid] = []
        for wid in self._deferred:
            self._deferred[wid] = []
        self._drain_buffers()
        self.store.flush()

    def on_rollback(self, failed_superstep, restored_superstep):
        """The engine is rolling back to a checkpoint; discard torn state.

        Buffered and deferred captures belong to the superstep that
        failed — it will re-execute, re-capturing them — and the trace
        files may carry a torn frame or stale sidecar from a crash during
        a write. Repairing here means re-execution appends to structurally
        sound files; re-captured records duplicate already-persisted ones,
        which the canonical trace merge deduplicates.
        """
        for wid in self._buffers:
            self._buffers[wid] = []
        for wid in self._deferred:
            self._deferred[wid] = []
        self.store.repair()

    def on_finish(self, result):
        self.finalize()

    def finalize(self):
        """Flush and close trace writers; idempotent."""
        if not self._finalized:
            self._drain_buffers()
            self.store.close()
            self._finalized = True

    # -- internals -----------------------------------------------------------

    def _select_static_captures(self):
        reasons = {}
        for vertex_id in self.config.vertices_to_capture():
            reasons.setdefault(vertex_id, []).append(REASON_SPECIFIED)
        wanted = self.config.num_random_vertices_to_capture()
        if wanted:
            population = list(self._graph.vertex_ids())
            rng = derive_rng(self.run_seed, "graft", "random-capture")
            for vertex_id in rng.sample(population, min(wanted, len(population))):
                reasons.setdefault(vertex_id, []).append(REASON_RANDOM)
        if self.config.capture_neighbors_of_vertices():
            for vertex_id in list(reasons):
                if not self._graph.has_vertex(vertex_id):
                    continue
                for neighbor in self._graph.neighbors(vertex_id):
                    entry = reasons.setdefault(neighbor, [])
                    if REASON_NEIGHBOR not in entry:
                        entry.append(REASON_NEIGHBOR)
        self._static_reasons = {v: tuple(r) for v, r in reasons.items()}

    def _evaluate_deferred(self, superstep):
        """Barrier-time extended constraints (Section 7 future work).

        Runs after the immediate buffers drained, in worker-id order then
        per-worker compute order — the order a serial run evaluated (and
        wrote) them in.
        """
        for worker_id in sorted(self._deferred):
            pending = self._deferred[worker_id]
            if not pending:
                continue
            self._deferred[worker_id] = []
            for record, sends in pending:
                if self.checks_messages_with_target:
                    self._check_target_constraints(record, sends, superstep)
                if self.checks_neighborhoods:
                    self._check_neighborhood(record, superstep)
                if record.reasons:
                    self._write_record(record)

    def _check_target_constraints(self, record, sends, superstep):
        for target, value in sends:
            try:
                target_value = self._engine.vertex_value(target)
            except PregelError:
                continue
            ok = self.config.message_value_constraint_with_target(
                value, record.vertex_id, target, target_value, superstep
            )
            if not ok:
                record.violations.append(
                    Violation(
                        kind="message_target",
                        vertex_id=record.vertex_id,
                        superstep=superstep,
                        details={
                            "message": value,
                            "source": record.vertex_id,
                            "target": target,
                            "target_value": target_value,
                        },
                    )
                )
                if REASON_MESSAGE not in record.reasons:
                    record.reasons.append(REASON_MESSAGE)

    def _check_neighborhood(self, record, superstep):
        neighbor_values = {}
        for neighbor in record.edges_after:
            if self._engine.has_vertex(neighbor):
                neighbor_values[neighbor] = self._engine.vertex_value(neighbor)
        ok = self.config.neighborhood_constraint(
            record.value_after, neighbor_values, record.vertex_id, superstep
        )
        if not ok:
            record.violations.append(
                Violation(
                    kind="neighborhood",
                    vertex_id=record.vertex_id,
                    superstep=superstep,
                    details={
                        "value": record.value_after,
                        "neighbor_values": neighbor_values,
                    },
                )
            )
            if REASON_NEIGHBORHOOD not in record.reasons:
                record.reasons.append(REASON_NEIGHBORHOOD)


class DebugRun:
    """Everything a user does after (or about) one debugged run."""

    def __init__(self, session, computation_factory, graph, result, failure,
                 lint_report=None, reader_mode="lazy"):
        self.session = session
        self.computation_factory = computation_factory
        self.graph = graph
        self.result = result
        self.failure = failure
        #: The pre-flight graft-lint report (None when linting was skipped
        #: or the class source was unavailable).
        self.lint_report = lint_report
        #: Index-backed by default: opening the reader parses only the
        #: sidecars; records decode as the views ask for them.
        self.reader = TraceReader(
            session.filesystem, session.job_id, mode=reader_mode
        )

    # -- outcome ------------------------------------------------------------

    @property
    def ok(self):
        """True when the computation itself finished without failing."""
        return self.failure is None

    @property
    def capture_count(self):
        return self.session.capture_count

    @property
    def capture_limit_hit(self):
        return self.session.capture_limit_hit

    @property
    def trace_bytes(self):
        return self.session.store.total_bytes()

    def summary(self):
        outcome = self.result.summary() if self.ok else f"FAILED: {self.failure}"
        return (
            f"job {self.session.job_id}: {outcome}; "
            f"{self.capture_count} captures, {self.trace_bytes} trace bytes"
        )

    # -- capture queries (delegating to the trace reader) ------------------

    def captured(self, vertex_id, superstep):
        return self.reader.get(vertex_id, superstep)

    def captures_at(self, superstep):
        return self.reader.at_superstep(superstep)

    def history(self, vertex_id):
        return self.reader.history(vertex_id)

    def violations(self, superstep=None):
        return self.reader.violations(superstep)

    def exceptions(self, superstep=None):
        return self.reader.exceptions(superstep)

    def master_contexts(self):
        return list(self.reader.master_records)

    def superstep_stats(self):
        """Per-superstep engine counters collected during the debugged run."""
        return list(self.session.superstep_metrics)

    def superstep_table(self, limit=None):
        """Activity trend, one row per superstep.

        The quick way to see the shape of a run — e.g. the paper's MWM
        scenario, where the active set shrinks to a small stuck core that
        never reaches zero.
        """
        rows = self.superstep_stats()
        if limit is not None:
            rows = rows[-limit:]
        return "\n".join(metrics.row() for metrics in rows)

    # -- the three GUI views -------------------------------------------------

    def node_link_view(self, superstep=None):
        from repro.graft.views.nodelink import NodeLinkView

        return NodeLinkView(self.reader, self.graph, superstep)

    def tabular_view(self, superstep=None):
        from repro.graft.views.tabular import TabularView

        return TabularView(self.reader, superstep)

    def violations_view(self, sanitizer=None):
        from repro.graft.views.violations import ViolationsView

        return ViolationsView(
            self.reader, lint_report=self.lint_report, sanitizer=sanitizer
        )

    def observed_evidence_kinds(self):
        """The runtime evidence kinds this run actually produced.

        Constraint-violation kinds from the trace, plus ``"exception"``
        when any compute() raised, plus ``"nontermination"`` when the run
        only ended by exhausting ``max_supersteps`` — the vocabulary the
        static analyzer's ``predicts`` forecasts are graded against.
        """
        from repro.pregel import halting

        kinds = {violation.kind for violation in self.violations()}
        if self.exceptions():
            kinds.add("exception")
        if (
            self.result is not None
            and self.result.halt_reason == halting.MAX_SUPERSTEPS
        ):
            kinds.add("nontermination")
        return sorted(kinds)

    def prediction_score(self):
        """Grade the pre-flight lint's proven forecasts against this run.

        See :func:`repro.analysis.score_predictions` — precision is over
        the proven findings' ``predicts`` kinds, recall over the observed
        evidence the analyzer had a chance to predict.
        """
        from repro.analysis import score_predictions

        return score_predictions(
            self.lint_report, self.observed_evidence_kinds()
        )

    def explain_violation(self, violation):
        """Static findings that predicted ``violation``'s kind, if any.

        The cross-link from runtime evidence back to the pre-flight lint
        pass: a negative-message violation from a wrapped Short16 comes
        back annotated with the GL007 finding that warned about it.
        """
        from repro.analysis import predicted_findings

        return predicted_findings(self.lint_report, violation.kind)

    def html_report(self):
        """The whole run as one self-contained HTML page (the GUI artifact)."""
        from repro.graft.report import render_html_report

        return render_html_report(self)

    def export_html_report(self, path):
        """Write the HTML report to a local file; returns the path."""
        from repro.graft.report import export_html_report

        return export_html_report(self, path)

    def export_traces(self, directory):
        """Copy the run's trace files to a real directory for inspection."""
        self.session.filesystem.export_to_directory(directory)
        return directory

    # -- reproduce ------------------------------------------------------------

    def reproduce(self, vertex_id, superstep, verify=True, trace_lines=True):
        """Replay one captured compute() call; see :mod:`repro.graft.reproducer`."""
        from repro.graft.reproducer import replay_record

        record = self.reader.get(vertex_id, superstep)
        return replay_record(
            record,
            self.computation_factory,
            verify=verify,
            trace_lines=trace_lines,
        )

    def generate_test_code(self, vertex_id, superstep, test_name=None):
        """Generate the standalone pytest file for one captured context."""
        from repro.graft.reproducer import generate_test_code

        record = self.reader.get(vertex_id, superstep)
        return generate_test_code(
            record, self.computation_factory, test_name=test_name
        )

    def generate_master_test_code(self, superstep, master_factory):
        """Generate a pytest file reproducing the master's context."""
        from repro.graft.reproducer import generate_master_test_code

        record = self.reader.master_at(superstep)
        if record is None:
            raise GraftError(f"no master capture for superstep {superstep}")
        return generate_master_test_code(record, master_factory)


def debug_job(
    filesystem,
    input_path,
    computation_factory,
    config,
    directed=True,
    job_id=None,
    **engine_kwargs,
):
    """Debug a DFS-resident job: the paper's submission flow end to end.

    Reads the input graph from ``input_path`` on ``filesystem`` (the
    adjacency file a plain :func:`~repro.pregel.run_job` would read),
    runs it under Graft, and writes the traces to the same file system —
    exactly how the original Graft wraps a job whose input and traces both
    live on HDFS.
    """
    from repro.graph.io import read_adjacency_simfs

    graph = read_adjacency_simfs(filesystem, input_path, directed=directed)
    return debug_run(
        computation_factory,
        graph,
        config,
        filesystem=filesystem,
        job_id=job_id,
        **engine_kwargs,
    )


def _persist_metrics(session, result):
    """Write the run's metrics.json next to its trace files.

    A completed run persists the engine's full :class:`RunMetrics`; a
    failed run still persists the supersteps that did complete (built from
    the session's listener-observed rows) — profiling a failed run is
    exactly when the numbers matter. Persistence must never mask the run's
    own outcome, so filesystem errors are swallowed.
    """
    from repro.graft.trace import write_job_metrics
    from repro.pregel.metrics import RunMetrics

    if result is not None:
        metrics = result.metrics
    else:
        metrics = RunMetrics()
        for row in session.superstep_metrics:
            metrics.add_superstep(row)
        metrics.total_seconds = metrics.total_wall_seconds
    try:
        write_job_metrics(session.filesystem, session.job_id, metrics)
    except Exception:  # noqa: BLE001 - telemetry only, never break the run
        pass


def _preflight_lint(computation_factory, lint, strict, combiner=None):
    """Run graft-lint on the computation class before instrumenting.

    Returns the :class:`~repro.analysis.AnalysisReport` (or None when
    linting is off or the class cannot be analyzed). A message combiner,
    when the run uses one, is analyzed too (GL015 non-commutativity) and
    its findings are merged into the same report. ``strict=True`` turns
    error-severity findings into a :class:`StaticAnalysisError` — the
    program is refused before any superstep executes; otherwise errors are
    surfaced as a :class:`~repro.analysis.GraftLintWarning`.
    """
    if lint is False:
        return None
    try:
        from repro.analysis import (
            GraftLintWarning,
            analyze_combiner,
            analyze_computation,
        )

        cls = computation_factory
        if not isinstance(cls, type):
            cls = type(computation_factory())
        report = analyze_computation(cls)
        if combiner is not None:
            combiner_cls = combiner if isinstance(combiner, type) else (
                type(combiner)
            )
            combiner_report = analyze_combiner(combiner_cls)
            if combiner_report.analyzed and combiner_report.findings:
                # analyze_computation may have returned a cached report;
                # merge into a fresh one rather than mutating the cache.
                from repro.analysis import AnalysisReport

                report = AnalysisReport(
                    class_name=report.class_name,
                    filename=report.filename,
                    findings=list(report.findings)
                    + list(combiner_report.findings),
                    analyzed=report.analyzed,
                ).sort()
    except StaticAnalysisError:
        raise
    except Exception:  # noqa: BLE001 - lint must never break a debug run
        return None
    if report.has_errors:
        if strict:
            raise StaticAnalysisError(report.class_name, report.errors)
        warnings.warn(
            f"graft-lint: {report.summary()} — the captured run may not "
            "replay faithfully (pass strict=True to refuse such programs, "
            "or lint=False to silence this)",
            GraftLintWarning,
            stacklevel=3,
        )
    return report


def debug_run(
    computation_factory,
    graph,
    config,
    filesystem=None,
    job_id=None,
    lint=True,
    strict=False,
    trace_format=TRACE_FORMAT_V2,
    reader_mode="lazy",
    **engine_kwargs,
):
    """Run a computation under Graft and return a :class:`DebugRun`.

    ``engine_kwargs`` are passed to :class:`~repro.pregel.PregelEngine`
    (``master=``, ``combiner=``, ``num_workers=``, ``seed=``,
    ``max_supersteps=`` ...). If the computation itself fails (a
    ``compute()`` raised and the config does not continue past exceptions),
    the failure is returned on ``DebugRun.failure`` rather than raised — the
    traces collected up to the failure are exactly what the user wants to
    inspect.

    Before instrumenting, the computation class goes through graft-lint
    (:mod:`repro.analysis`). Error-severity findings — hazards that break
    capture fidelity or exact replay — warn by default
    (:class:`~repro.analysis.GraftLintWarning`); with ``strict=True`` the
    program is refused with :class:`StaticAnalysisError` before any
    superstep executes. ``lint=False`` skips the analysis entirely. The
    report is kept on ``DebugRun.lint_report`` and cross-linked to runtime
    violations and fidelity checks.

    ``trace_format`` picks the storage encoding (``"v2"`` framed+indexed,
    the default, or ``"v1"`` JSON lines); ``reader_mode`` picks how
    ``DebugRun.reader`` answers queries (``"lazy"`` index-backed, the
    default, or ``"eager"`` decode-everything). See docs/trace-format.md.
    """
    from repro.graft.instrumenter import instrument
    from repro.simfs.filesystem import SimFileSystem

    lint_report = _preflight_lint(
        computation_factory, lint, strict,
        combiner=engine_kwargs.get("combiner"),
    )
    if filesystem is None:
        filesystem = SimFileSystem()
    if job_id is None:
        job_id = f"job-{next(_JOB_COUNTER)}"
    num_workers = engine_kwargs.get("num_workers", 4)
    partitioner = engine_kwargs.get("partitioner")
    if partitioner is not None:
        num_workers = partitioner.num_workers

    session = GraftSession(
        config, graph, filesystem, job_id, num_workers,
        trace_format=trace_format,
    )
    engine = PregelEngine(
        instrument(computation_factory, session),
        graph,
        listeners=[session],
        **engine_kwargs,
    )
    result = None
    failure = None
    try:
        result = engine.run()
    except ReproError as exc:
        failure = exc
    finally:
        session.finalize()
    _persist_metrics(session, result)
    return DebugRun(
        session, computation_factory, graph, result, failure,
        lint_report=lint_report, reader_mode=reader_mode,
    )
