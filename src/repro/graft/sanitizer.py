"""graft-san: confirm or refute order-sensitivity predictions at runtime.

The static determinism pack (GL016–GL020) *predicts* that a computation
depends on message delivery order. This harness settles the question:
:func:`run_sanitizer` executes the same job once under the canonical
delivery order and once per :class:`~repro.pregel.PermutationSchedule` —
permuted-but-seeded inbox orders that change *nothing* about the message
bags — and compares the runs through an **order-insensitive canonical
digest**. The digest normalizes each captured record's ``incoming`` list
(whose order legitimately reflects the schedule) and keeps everything
else byte-exact, so any difference is real: a vertex value, a sent
message, a halt decision, or an aggregator that moved because the order
moved.

An order-insensitive computation produces one digest across every
schedule and backend. An order-sensitive one diverges, and the report
pins the **first divergence** — schedule, superstep, vertex, and the
exact record field that differs — reusing the canonical-merge machinery
the cross-backend determinism contract is built on. Verdicts feed the
same scoring pipeline as GL013/GL014 predictions: a divergence counts as
``order_divergence`` evidence for
:func:`~repro.analysis.score_predictions`, the fidelity report, and the
violations view.
"""

import hashlib
import warnings
from dataclasses import dataclass, field

from repro.common.serialization import default_codec
from repro.graft.capture import (
    MasterContextRecord,
    record_from_line,
    record_to_line,
)
from repro.graft.trace import iter_canonical_trace_lines
from repro.pregel.permutation import PermutationSchedule
from repro.simfs.filesystem import SimFileSystem

#: Rule ids whose findings a digest divergence confirms (the
#: ``order_divergence`` crosslink, minus nothing — kept in sync with
#: :data:`repro.analysis.crosslink.RUNTIME_LINKS`).
ORDER_SENSITIVE_RULES = ("GL015", "GL016", "GL017", "GL018")


def order_insensitive_lines(filesystem, job_id, codec=None):
    """Canonical trace lines with per-record ``incoming`` order normalized.

    Starts from :func:`~repro.graft.trace.iter_canonical_trace_lines`
    (worker placement already normalized, lines sorted and deduplicated),
    re-sorts each vertex record's ``incoming`` list by ``(source, value)``
    repr — the one field whose order is an artifact of the delivery
    schedule — and returns the re-serialized lines, sorted. Every other
    field stays byte-exact, so two schedules produce the same line list
    iff the computation itself ignored the order.
    """
    codec = codec or default_codec
    lines = set()
    key = lambda pair: (repr(pair[0]), repr(pair[1]))  # noqa: E731
    for line in iter_canonical_trace_lines(filesystem, job_id, codec=codec):
        record = record_from_line(line, codec)
        incoming = getattr(record, "incoming", None)
        if incoming and len(incoming) > 1:
            normalized = sorted(incoming, key=key)
            if normalized != incoming:
                record.incoming = normalized
                line = record_to_line(record, codec)
        lines.add(line)
    return sorted(lines)


def order_insensitive_digest(filesystem, job_id, codec=None):
    """SHA-256 over the order-insensitive canonical lines."""
    digest = hashlib.sha256()
    for line in order_insensitive_lines(filesystem, job_id, codec=codec):
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass(frozen=True)
class FirstDivergence:
    """The earliest point where a permuted run left the baseline."""

    schedule: int
    superstep: int
    vertex_id: str      # repr of the vertex id; "" for master records
    kind: str           # "vertex" | "master" | "capture-set"
    field: str          # diverging record field ("" for capture-set)
    baseline: str       # repr of the baseline value ("" when absent)
    permuted: str       # repr of the permuted-run value ("" when absent)

    def summary(self):
        where = (
            f"superstep {self.superstep}, vertex {self.vertex_id}"
            if self.kind == "vertex"
            else f"superstep {self.superstep} ({self.kind})"
        )
        if self.kind == "capture-set":
            return (
                f"schedule {self.schedule}: capture sets differ at {where}"
            )
        return (
            f"schedule {self.schedule}: first divergence at {where}, "
            f"field `{self.field}`: {self.baseline} -> {self.permuted}"
        )


@dataclass
class SanitizerReport:
    """Everything one graft-san sweep established."""

    computation: str
    executor: str
    num_workers: int
    seed: int
    schedules: tuple = ()
    checks: dict = field(default_factory=dict)
    failures: list = field(default_factory=list)
    baseline_digest: str = ""
    schedule_digests: dict = field(default_factory=dict)
    divergent_schedules: list = field(default_factory=list)
    first_divergence: object = None        # FirstDivergence | None
    lint_report: object = None
    inboxes_permuted: int = 0
    baseline_seconds: float = 0.0
    sanitizer_seconds: float = 0.0

    @property
    def ok(self):
        """The harness itself ran cleanly (divergence is a *finding*)."""
        return not self.failures

    @property
    def deterministic(self):
        """Every schedule reproduced the baseline digest."""
        return self.ok and not self.divergent_schedules

    def observed_evidence_kinds(self):
        """``["order_divergence"]`` when any schedule diverged, else []."""
        return ["order_divergence"] if self.divergent_schedules else []

    def prediction_score(self):
        """Grade the baseline lint's proven forecasts against the sweep."""
        from repro.analysis import score_predictions

        return score_predictions(
            self.lint_report, self.observed_evidence_kinds()
        )

    def verdicts(self):
        """Per-finding verdicts for the order-sensitivity rules.

        ``{finding: "confirmed" | "refuted"}`` — confirmed when the sweep
        observed a digest divergence, refuted when every schedule
        reproduced the baseline. Findings of rules outside the
        order-sensitivity pack are not judged (their evidence is replay
        divergence, not delivery order).
        """
        if self.lint_report is None:
            return {}
        verdict = "confirmed" if self.divergent_schedules else "refuted"
        return {
            finding: verdict
            for finding in self.lint_report.findings
            if finding.rule_id in ORDER_SENSITIVE_RULES
        }

    def summary(self):
        status = (
            "DETERMINISTIC"
            if self.deterministic
            else ("ORDER-SENSITIVE" if self.ok else "FAILED")
        )
        lines = [
            f"graft-san {self.computation} on executor={self.executor} "
            f"workers={self.num_workers} seed={self.seed}: {status}",
            f"  schedules run: {list(self.schedules)}; inboxes permuted: "
            f"{self.inboxes_permuted}",
            f"  baseline digest: {self.baseline_digest[:16]}...",
        ]
        for schedule in self.schedules:
            digest = self.schedule_digests.get(schedule, "")
            verdict = (
                "== baseline"
                if digest == self.baseline_digest
                else "!= baseline  <-- DIVERGED"
            )
            lines.append(f"  schedule {schedule}: {digest[:16]}... {verdict}")
        if self.first_divergence is not None:
            lines.append(f"  {self.first_divergence.summary()}")
        for finding, verdict in self.verdicts().items():
            lines.append(
                f"  [{verdict}] {finding.rule_id}@{finding.location()}"
            )
        for failure in self.failures:
            lines.append(f"  failure: {failure}")
        return "\n".join(lines)

    def to_dict(self):
        return {
            "computation": self.computation,
            "executor": self.executor,
            "num_workers": self.num_workers,
            "seed": self.seed,
            "schedules": list(self.schedules),
            "ok": self.ok,
            "deterministic": self.deterministic,
            "checks": dict(self.checks),
            "failures": list(self.failures),
            "baseline_digest": self.baseline_digest,
            "schedule_digests": dict(self.schedule_digests),
            "divergent_schedules": list(self.divergent_schedules),
            "first_divergence": (
                self.first_divergence.__dict__
                if self.first_divergence is not None
                else None
            ),
            "verdicts": {
                f"{f.rule_id}@{f.location()}": verdict
                for f, verdict in self.verdicts().items()
            },
            "inboxes_permuted": self.inboxes_permuted,
            "baseline_seconds": self.baseline_seconds,
            "sanitizer_seconds": self.sanitizer_seconds,
        }


def _record_key(record):
    if isinstance(record, MasterContextRecord):
        return ("master", record.superstep, "")
    return ("vertex", record.superstep, repr(record.vertex_id))


def first_divergence(baseline_lines, permuted_lines, schedule, codec=None):
    """Locate the earliest differing record between two line lists.

    Both inputs are order-insensitive canonical line lists. Returns a
    :class:`FirstDivergence` or None when the lists are identical.
    """
    codec = codec or default_codec
    if baseline_lines == permuted_lines:
        return None

    def keyed(lines):
        table = {}
        for line in lines:
            record = record_from_line(line, codec)
            table.setdefault(_record_key(record), []).append((line, record))
        return table

    base, perm = keyed(baseline_lines), keyed(permuted_lines)
    for key in sorted(set(base) | set(perm)):
        kind, superstep, vertex_repr = key
        base_entries = base.get(key, [])
        perm_entries = perm.get(key, [])
        if [line for line, _ in base_entries] == [
            line for line, _ in perm_entries
        ]:
            continue
        if not base_entries or not perm_entries:
            return FirstDivergence(
                schedule=schedule,
                superstep=superstep,
                vertex_id=vertex_repr,
                kind="capture-set",
                field="",
                baseline=repr(len(base_entries)),
                permuted=repr(len(perm_entries)),
            )
        base_record = base_entries[0][1]
        perm_record = perm_entries[0][1]
        for name in _diff_fields(base_record):
            base_value = getattr(base_record, name, None)
            perm_value = getattr(perm_record, name, None)
            if base_value != perm_value:
                return FirstDivergence(
                    schedule=schedule,
                    superstep=superstep,
                    vertex_id=vertex_repr,
                    kind=kind,
                    field=name,
                    baseline=repr(base_value),
                    permuted=repr(perm_value),
                )
        # Same first record; a later duplicate-keyed record differs.
        return FirstDivergence(
            schedule=schedule,
            superstep=superstep,
            vertex_id=vertex_repr,
            kind="capture-set",
            field="",
            baseline=repr(len(base_entries)),
            permuted=repr(perm_entries and len(perm_entries)),
        )
    return None


def _diff_fields(record):
    from repro.graft.capture import master_field_names, vertex_field_names

    if isinstance(record, MasterContextRecord):
        return master_field_names()
    # Report value/outcome fields before bookkeeping ones.
    preferred = (
        "value_after", "sent", "halted", "value_before", "incoming",
        "aggregators", "violations", "exception",
    )
    rest = [n for n in vertex_field_names() if n not in preferred]
    return tuple(preferred) + tuple(rest)


def run_sanitizer(
    computation_factory,
    graph,
    config=None,
    schedules=3,
    seed=0,
    num_workers=4,
    executor="serial",
    job_id="san",
    lint=True,
    **engine_kwargs,
):
    """Run K permuted-delivery schedules against the canonical baseline.

    ``schedules`` is either a count (runs schedules ``1..K``) or an
    explicit iterable of schedule indices. ``config`` defaults to
    capture-everything so the digest comparison sees every compute()
    call. Extra ``engine_kwargs`` (``master=``, ``combiner=``,
    ``max_supersteps=`` ...) apply to every run. The baseline run carries
    the pre-flight lint report (``lint=True``) so the report can grade
    GL015–GL018 findings; lint warnings are suppressed — the sanitizer
    *is* the follow-up those warnings ask for.
    """
    from repro.analysis import GraftLintWarning
    from repro.graft.config import CaptureAllActiveConfig
    from repro.graft.debug_run import debug_run

    if isinstance(schedules, int):
        schedule_indices = tuple(range(1, schedules + 1))
    else:
        schedule_indices = tuple(schedules)
    if config is None:
        config = CaptureAllActiveConfig()
    common = dict(
        seed=seed,
        num_workers=num_workers,
        executor=executor,
        **engine_kwargs,
    )

    name = getattr(computation_factory, "__name__", "")
    if not name or name == "<lambda>":
        # Factories are cheap to call; name the report after the product.
        try:
            name = type(computation_factory()).__name__
        except Exception:
            name = repr(computation_factory)
    report = SanitizerReport(
        computation=name,
        executor=executor,
        num_workers=num_workers,
        seed=seed,
        schedules=schedule_indices,
    )

    def check(name, passed, detail=""):
        report.checks[name] = bool(passed)
        if not passed:
            report.failures.append(detail or name)
        return bool(passed)

    baseline_fs = SimFileSystem()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", GraftLintWarning)
        baseline = debug_run(
            computation_factory, graph, config,
            filesystem=baseline_fs, job_id=job_id, lint=lint, **common,
        )
    report.lint_report = baseline.lint_report
    if not check(
        "baseline run completed", baseline.ok,
        f"baseline run failed: {baseline.failure}",
    ):
        return report
    report.baseline_seconds = baseline.result.metrics.total_seconds
    report.baseline_digest = order_insensitive_digest(baseline_fs, job_id)
    baseline_lines = None   # materialized lazily, only on divergence

    for schedule in schedule_indices:
        permuted_fs = SimFileSystem()
        permuted = debug_run(
            computation_factory, graph, config,
            filesystem=permuted_fs, job_id=job_id, lint=False,
            delivery_schedule=PermutationSchedule(schedule),
            **common,
        )
        if not check(
            f"schedule {schedule} run completed", permuted.ok,
            f"schedule {schedule} run failed: {permuted.failure}",
        ):
            continue
        report.sanitizer_seconds += permuted.result.metrics.total_seconds
        report.inboxes_permuted += (
            permuted.result.metrics.total_inboxes_permuted
        )
        digest = order_insensitive_digest(permuted_fs, job_id)
        report.schedule_digests[schedule] = digest
        if digest != report.baseline_digest:
            report.divergent_schedules.append(schedule)
            if report.first_divergence is None:
                if baseline_lines is None:
                    baseline_lines = order_insensitive_lines(
                        baseline_fs, job_id
                    )
                report.first_divergence = first_divergence(
                    baseline_lines,
                    order_insensitive_lines(permuted_fs, job_id),
                    schedule,
                )
    return report
