"""Differential debugging: compare two captured runs.

A natural extension of the Graft workflow (and of its future-work
direction): after fixing a bug, run the old and the new implementation
under capture-all-active with the same seed and diff the traces. The first
superstep at which a vertex's value or messages diverge is where the two
implementations' behaviour splits — usually the bug's first observable
effect.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Divergence:
    """The first difference found for one vertex."""

    vertex_id: object
    superstep: int
    field_name: str          # "value_after", "sent", "halted", or "presence"
    left: object
    right: object

    def summary(self):
        return (
            f"vertex {self.vertex_id!r} first diverges at superstep "
            f"{self.superstep} on {self.field_name}: "
            f"{self.left!r} vs {self.right!r}"
        )


@dataclass
class DiffReport:
    """All first-divergences between two runs, plus quick accessors."""

    divergences: list = field(default_factory=list)
    compared_keys: int = 0

    @property
    def identical(self):
        return not self.divergences

    def earliest(self):
        """The overall first divergence, or None."""
        if not self.divergences:
            return None
        return min(
            self.divergences, key=lambda d: (d.superstep, repr(d.vertex_id))
        )

    def by_superstep(self):
        """Histogram ``{superstep: number of vertices first diverging}``."""
        counts = {}
        for divergence in self.divergences:
            counts[divergence.superstep] = counts.get(divergence.superstep, 0) + 1
        return dict(sorted(counts.items()))

    def summary(self):
        if self.identical:
            return f"runs identical across {self.compared_keys} captured contexts"
        earliest = self.earliest()
        return (
            f"{len(self.divergences)} vertices diverge "
            f"(earliest: {earliest.summary()})"
        )


_COMPARED_FIELDS = ("value_after", "sent", "halted")


def diff_runs(left_run, right_run):
    """Diff two debug runs' traces; returns a :class:`DiffReport`.

    Both runs should capture the same vertices (typically
    capture-all-active) and use the same input graph and seed — then any
    divergence is attributable to the code difference alone.
    """
    report = DiffReport()
    left_keys = {r.key for r in left_run.reader.vertex_records}
    right_keys = {r.key for r in right_run.reader.vertex_records}
    first_divergence = {}

    def note(vertex_id, superstep, field_name, left, right):
        existing = first_divergence.get(vertex_id)
        if existing is None or superstep < existing.superstep:
            first_divergence[vertex_id] = Divergence(
                vertex_id, superstep, field_name, left, right
            )

    for key in sorted(left_keys & right_keys, key=lambda k: (k[1], repr(k[0]))):
        vertex_id, superstep = key
        report.compared_keys += 1
        left_record = left_run.reader.get(vertex_id, superstep)
        right_record = right_run.reader.get(vertex_id, superstep)
        for field_name in _COMPARED_FIELDS:
            left_value = getattr(left_record, field_name)
            right_value = getattr(right_record, field_name)
            if left_value != right_value:
                note(vertex_id, superstep, field_name, left_value, right_value)
                break

    for key in left_keys ^ right_keys:
        vertex_id, superstep = key
        present = "left" if key in left_keys else "right"
        note(vertex_id, superstep, "presence", present == "left", present == "right")

    report.divergences = sorted(
        first_divergence.values(), key=lambda d: (d.superstep, repr(d.vertex_id))
    )
    return report
