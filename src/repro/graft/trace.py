"""Trace files: how captures reach, and are read back from, the file system.

Layout under one job directory (mirroring Graft's per-worker HDFS files)::

    /graft/<job_id>/worker-<i>.trace       vertex captures for worker i
    /graft/<job_id>/worker-<i>.trace.idx   index sidecar (v2 format only)
    /graft/<job_id>/master.trace           master captures
    /graft/<job_id>/master.trace.idx       index sidecar (v2 format only)

:class:`TraceStore` is the write side, owned by the Graft session while the
job runs; :class:`TraceReader` is the read side, used by the GUI views and
the Context Reproducer after (or during) the run. Reading only needs the
file system and codec — a different process (the paper's "copy into your
IDE" step) can do it, provided the modules defining the value types are
imported.

Two storage formats exist (see docs/trace-format.md):

- ``"v1"`` — one JSON line per record; human-greppable, but any read
  decodes the entire file.
- ``"v2"`` (default) — framed records with interned field keys, optional
  zlib block compression, and an index sidecar built incrementally at
  flush boundaries. The sidecar maps ``(superstep, repr(vertex_id))`` to
  a byte extent plus violation/exception posting data, which is what
  makes the default ``mode="lazy"`` reader's open and point queries
  O(result) instead of O(trace).

:class:`TraceReader` accepts ``mode="lazy"`` (index-backed, decode on
demand, LRU-bounded memory) or ``mode="eager"`` (decode everything up
front — the v1 behaviour, kept as a fallback and as the oracle for the
equivalence tests). Both modes answer every query identically, for both
storage formats; index-less or corrupted v2 sidecars are recovered by
rescanning the unindexed tail of the trace file.

:func:`canonical_trace_lines` / :func:`canonical_trace_digest` provide the
*deterministic trace merge*: a single canonical view of a job's captures
that is byte-identical regardless of execution backend, worker count,
**and storage format**. Raw per-worker files are already byte-identical
across backends at the same worker count; the canonical merge additionally
normalizes the two partition-dependent artifacts (which file a record
landed in, and the ``worker_id`` field inside it) and imposes a
content-based total order, so two runs of the same job can be compared
with a single hash even when one used 1 worker and the other 8 — or one
wrote v1 files and the other v2.
"""

import hashlib
import json
import posixpath
import threading
import zlib

from repro.common.errors import SerializationError, SimFsError, TraceError
from repro.common.serialization import default_codec
from repro.graft.capture import (
    KIND_MASTER,
    KIND_VERTEX,
    MasterContextRecord,
    VertexContextRecord,
    record_from_line,
    record_from_row,
    record_to_line,
    record_to_row,
)
from repro.graft.traceformat import (
    TRACE_MAGIC,
    VFLAG_EXCEPTION,
    VFLAG_VIOLATIONS,
    build_header,
    encode_header,
    format_idx_header,
    format_idx_line,
    is_v2_file,
    iter_v2_records,
    load_index,
    pack_records,
    read_block_payload,
    record_entry,
    summarize_entries,
)
from repro.simfs.writers import (
    DEFAULT_BUFFER_BYTES,
    DEFAULT_BUFFER_LINES,
    BlockWriter,
    LineWriter,
    append_retrying,
)

DEFAULT_ROOT = "/graft"

TRACE_FORMAT_V1 = "v1"
TRACE_FORMAT_V2 = "v2"

#: Default LRU sizes for the lazy reader: decoded records and decompressed
#: block payloads kept hot. Both bound memory; misses just re-read.
DEFAULT_RECORD_CACHE = 1024
DEFAULT_BLOCK_CACHE = 16


def job_directory(job_id, root=DEFAULT_ROOT):
    return f"{root}/{job_id}"


def worker_trace_path(job_id, worker_id, root=DEFAULT_ROOT):
    return f"{job_directory(job_id, root)}/worker-{worker_id}.trace"


def master_trace_path(job_id, root=DEFAULT_ROOT):
    return f"{job_directory(job_id, root)}/master.trace"


def metrics_path(job_id, root=DEFAULT_ROOT):
    """The per-job ``metrics.json`` sidecar (persisted RunMetrics)."""
    return f"{job_directory(job_id, root)}/metrics.json"


def write_job_metrics(filesystem, job_id, run_metrics, root=DEFAULT_ROOT):
    """Persist one run's :class:`~repro.pregel.metrics.RunMetrics`.

    Written at ``debug_run`` completion next to the trace files, so the
    debug server's profiler endpoints and ``repro trace stats`` can report
    per-superstep counters without re-executing the job. Returns the path.
    """
    from repro.pregel.metrics import run_metrics_to_dict

    path = metrics_path(job_id, root)
    payload = run_metrics_to_dict(run_metrics)
    filesystem.write_text(
        path, json.dumps(payload, separators=(",", ":"), sort_keys=True)
    )
    return path


def load_job_metrics(filesystem, job_id, root=DEFAULT_ROOT):
    """Load a job's persisted metrics document, or None when absent/corrupt."""
    path = metrics_path(job_id, root)
    if not filesystem.is_file(path):
        return None
    try:
        return json.loads(filesystem.read_text(path))
    except (ValueError, UnicodeDecodeError):
        return None


def iter_file_records(filesystem, path, codec=None):
    """Decode every record of one trace file, v1 or v2, in file order."""
    codec = codec or default_codec
    if is_v2_file(filesystem, path):
        return iter_v2_records(filesystem, path, codec)
    return (
        record_from_line(line, codec) for line in filesystem.read_lines(path)
    )


# -- write side ---------------------------------------------------------------


class _V2FileWriter:
    """One v2 trace file plus its index sidecar.

    Records buffer in encoded form; a flush packs them into one framed
    (optionally compressed) block and appends the matching index line, so
    index granularity == flush granularity == superstep barriers (plus
    threshold flushes inside huge supersteps).
    """

    def __init__(
        self,
        filesystem,
        path,
        codec,
        buffer_records=DEFAULT_BUFFER_LINES,
        buffer_bytes=DEFAULT_BUFFER_BYTES,
        compression=True,
    ):
        self._fs = filesystem
        self._codec = codec
        self.path = path
        self._block_writer = BlockWriter(filesystem, path, compression=compression)
        self._data_start = self._block_writer.write_prelude(
            TRACE_MAGIC + encode_header(build_header())
        )
        self._idx_path = path + ".idx"
        filesystem.create(self._idx_path, overwrite=True)
        idx_header = format_idx_header(posixpath.basename(path)) + "\n"
        filesystem.append_text(self._idx_path, idx_header)
        # Every line successfully represented in the sidecar, header
        # included. repair() rewrites the sidecar from this list, so a
        # crash that tears an index append (or lands between the block
        # append and its index line) never leaves a stale sidecar behind.
        self._idx_lines = [idx_header]
        self._buffer_records = buffer_records
        self._buffer_bytes = buffer_bytes
        self._encoded = []
        self._metas = []
        self._buffered_bytes = 0
        self.records_written = 0

    def _encode(self, record):
        row = record_to_row(record, self._codec)
        rec_bytes = json.dumps(
            row, separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
        if isinstance(record, MasterContextRecord):
            meta = (KIND_MASTER, record.superstep, None, 0)
        else:
            vflags = 0
            if record.violations:
                vflags |= VFLAG_VIOLATIONS
            if record.exception is not None:
                vflags |= VFLAG_EXCEPTION
            meta = (KIND_VERTEX, record.superstep, repr(record.vertex_id), vflags)
        return rec_bytes, meta

    def write_record(self, record):
        rec_bytes, meta = self._encode(record)
        self._encoded.append(rec_bytes)
        self._metas.append(meta)
        self._buffered_bytes += len(rec_bytes)
        self.records_written += 1
        self._maybe_flush()

    def write_records(self, records):
        """Bulk append with a single threshold check at the end."""
        for record in records:
            rec_bytes, meta = self._encode(record)
            self._encoded.append(rec_bytes)
            self._metas.append(meta)
            self._buffered_bytes += len(rec_bytes)
            self.records_written += 1
        self._maybe_flush()

    def _maybe_flush(self):
        if (
            len(self._encoded) >= self._buffer_records
            or self._buffered_bytes >= self._buffer_bytes
        ):
            self.flush()

    def flush(self):
        """Write one block + one index line for the buffered records."""
        if not self._encoded:
            return
        payload, extents = pack_records(self._encoded)
        offset, length, flags = self._block_writer.write_block(payload)
        entries = [
            record_entry(kind, superstep, vid_repr, inner_off, inner_len, vflags)
            for (kind, superstep, vid_repr, vflags), (inner_off, inner_len)
            in zip(self._metas, extents)
        ]
        meta = summarize_entries(offset, length, flags, entries)
        line = format_idx_line(meta, entries) + "\n"
        # Remember the line before attempting the append: the block is
        # already durable, so if the index append crashes the line can be
        # restored by repair()'s sidecar rewrite.
        self._idx_lines.append(line)
        append_retrying(self._fs, self._idx_path, line)
        self._encoded = []
        self._metas = []
        self._buffered_bytes = 0

    def repair(self):
        """Restore file/sidecar consistency after a crash-induced rollback.

        Buffered records are discarded (they belong to the superstep being
        rolled back and will be re-captured on re-execution), a torn block
        frame is truncated away, and the index sidecar is rewritten from
        the known-good line list whenever the on-disk bytes disagree —
        covering both a torn index append and an index line that was never
        written because the crash hit between block and sidecar.
        """
        self.records_written -= len(self._encoded)
        self._encoded = []
        self._metas = []
        self._buffered_bytes = 0
        self._block_writer.repair()
        expected = "".join(self._idx_lines)
        try:
            current = self._fs.read_bytes(self._idx_path).decode("utf-8")
        except (SimFsError, UnicodeDecodeError):
            current = None
        if current != expected:
            self._fs.write_text(self._idx_path, expected)

    def close(self):
        self.flush()
        self._block_writer.close()


class _V1FileWriter:
    """Legacy JSON-lines writer, kept for compatibility tooling and tests."""

    def __init__(self, filesystem, path, codec):
        self._writer = LineWriter(filesystem, path)
        self._codec = codec
        self.path = path

    def write_record(self, record):
        self._writer.write_line(record_to_line(record, self._codec))

    def write_records(self, records):
        codec = self._codec
        self._writer.write_lines(record_to_line(r, codec) for r in records)

    def flush(self):
        self._writer.flush()

    def repair(self):
        self._writer.repair()

    def close(self):
        self._writer.close()


class TraceStore:
    """Write side: per-worker appenders plus the master appender."""

    def __init__(
        self,
        filesystem,
        job_id,
        num_workers,
        codec=None,
        format=TRACE_FORMAT_V2,
        compression=True,
    ):
        if format not in (TRACE_FORMAT_V1, TRACE_FORMAT_V2):
            raise TraceError(f"unknown trace format {format!r}")
        self._fs = filesystem
        self.job_id = job_id
        self.format = format
        self._codec = codec or default_codec

        def make_writer(path):
            if format == TRACE_FORMAT_V2:
                return _V2FileWriter(
                    filesystem, path, self._codec, compression=compression
                )
            return _V1FileWriter(filesystem, path, self._codec)

        self._worker_writers = [
            make_writer(worker_trace_path(job_id, worker_id))
            for worker_id in range(num_workers)
        ]
        self._master_writer = make_writer(master_trace_path(job_id))
        self.records_written = 0

    def write_vertex_record(self, record):
        """Append one vertex capture to its worker's trace file."""
        self._worker_writers[record.worker_id].write_record(record)
        self.records_written += 1

    def write_vertex_records(self, records):
        """Bulk-append vertex captures (the session's barrier drain path).

        Records are grouped per worker file and handed to each file's
        writer as a batch, so a drain of N records costs one buffered
        append per touched file instead of N per-record threshold checks.
        Order within each worker's file follows the order of ``records``.
        """
        by_worker = {}
        count = 0
        for record in records:
            group = by_worker.get(record.worker_id)
            if group is None:
                group = by_worker[record.worker_id] = []
            group.append(record)
            count += 1
        for worker_id, group in by_worker.items():
            self._worker_writers[worker_id].write_records(group)
        self.records_written += count

    def write_master_record(self, record):
        """Append one master capture to the master trace file."""
        self._master_writer.write_record(record)
        self.records_written += 1

    def flush(self):
        """Flush all writers (the session does this at superstep barriers).

        For v2 files each flush is also an index boundary: the buffered
        records become one block and one sidecar line.
        """
        for writer in self._worker_writers:
            writer.flush()
        self._master_writer.flush()

    def repair(self):
        """Restore every trace file after a crash-induced rollback.

        Called by the Graft session when the engine rolls back to a
        checkpoint: torn frames are truncated, stale sidecars rewritten,
        and buffered records of the torn superstep discarded so
        re-execution appends to structurally sound files.
        """
        for writer in self._worker_writers:
            writer.repair()
        self._master_writer.repair()

    def close(self):
        for writer in self._worker_writers:
            writer.close()
        self._master_writer.close()

    def total_bytes(self):
        """Bytes currently stored for this job's traces (sidecars included)."""
        return self._fs.total_bytes(job_directory(self.job_id))


# -- read side: sources -------------------------------------------------------
#
# A *source* wraps one trace file and yields uniform index entries
# ``(kind, superstep, vid_repr, ref, vflags)``; ``fetch(ref)`` decodes one
# record. _IndexedSource is the lazy v2 path (sidecar-backed, ranged
# reads); _FallbackSource is the compatibility path for v1 files (decoded
# up front, which is all a keyless format allows).


class _LRUCache:
    """A tiny LRU map; ``maxsize=0`` disables caching entirely.

    Thread-safe: the debug server shares one record cache and one block
    cache across every concurrent read session (a process-wide memory
    budget), so ``get``'s recency bump and ``put``'s eviction walk — both
    multi-step mutations of the underlying OrderedDict — run under a lock.
    Uncontended acquisition is a few hundred nanoseconds; the disk read a
    miss triggers is microseconds, so the lock never shows up in profiles.
    """

    def __init__(self, maxsize):
        from collections import OrderedDict

        self._maxsize = maxsize
        self._data = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        with self._lock:
            data = self._data
            if key in data:
                data.move_to_end(key)
                self.hits += 1
                return data[key]
            self.misses += 1
            return None

    def put(self, key, value):
        if self._maxsize <= 0:
            return
        with self._lock:
            data = self._data
            data[key] = value
            data.move_to_end(key)
            while len(data) > self._maxsize:
                data.popitem(last=False)

    def __len__(self):
        with self._lock:
            return len(self._data)


class _FallbackSource:
    """v1 (or otherwise index-less) file: decode once, serve from memory."""

    def __init__(self, filesystem, path, codec):
        self.path = path
        self._records = []
        self._entries = []
        for record in iter_file_records(filesystem, path, codec):
            ref = len(self._records)
            self._records.append(record)
            if isinstance(record, MasterContextRecord):
                entry = (KIND_MASTER, record.superstep, None, ref, 0)
            elif isinstance(record, VertexContextRecord):
                vflags = 0
                if record.violations:
                    vflags |= VFLAG_VIOLATIONS
                if record.exception is not None:
                    vflags |= VFLAG_EXCEPTION
                entry = (
                    KIND_VERTEX, record.superstep, repr(record.vertex_id),
                    ref, vflags,
                )
            else:
                raise TraceError(
                    f"unexpected record type {type(record).__name__}"
                )
            self._entries.append(entry)
        self.index_stats = {"indexed_blocks": 0, "recovered_blocks": 0}

    def iter_entries(self):
        return iter(self._entries)

    def entries_for_superstep(self, superstep):
        for entry in self._entries:
            if entry[0] == KIND_VERTEX and entry[1] == superstep:
                yield entry

    def supersteps(self):
        return {e[1] for e in self._entries if e[0] == KIND_VERTEX}

    def flagged_supersteps(self, vflag):
        return {
            e[1]
            for e in self._entries
            if e[0] == KIND_VERTEX and e[4] & vflag
        }

    def master_entries(self):
        return [e for e in self._entries if e[0] == KIND_MASTER]

    def fetch(self, ref):
        return self._records[ref]


class _IndexedSource:
    """v2 file behind its sidecar: block directory now, records on demand.

    Safe for concurrent readers: the sidecar's per-record entry lists parse
    lazily on first touch, and that parse-and-memoize is a multi-step
    mutation of the shared :class:`BlockMeta`, so it runs under a
    per-source lock (``_entries_of``). The record/block LRUs are locked
    internally (see :class:`_LRUCache`).
    """

    def __init__(self, filesystem, path, codec, record_cache, block_cache):
        self.path = path
        self._fs = filesystem
        self._codec = codec
        self._record_cache = record_cache
        self._block_cache = block_cache
        self._entries_lock = threading.Lock()
        self._blocks, header, self.index_stats = load_index(
            filesystem, path, codec
        )
        fields = header.get("fields", {})
        self._vertex_fields = fields.get("vertex")
        self._master_fields = fields.get("master")

    # Entries come out of sidecar lines as raw lists
    # [kind, ss, vid_repr, inner_off, inner_len, vflags]; refs address
    # (block_index, inner_off, inner_len).

    def _entry_tuple(self, block_index, raw):
        return (raw[0], raw[1], raw[2], (block_index, raw[3], raw[4]), raw[5])

    def _entries_of(self, meta):
        """``meta.entries()`` with the lazy JSON parse done under a lock."""
        entries = meta._entries
        if entries is not None:
            return entries
        with self._entries_lock:
            return meta.entries()

    def iter_entries(self):
        for block_index, meta in enumerate(self._blocks):
            for raw in self._entries_of(meta):
                yield self._entry_tuple(block_index, raw)

    def entries_for_superstep(self, superstep):
        for block_index, meta in enumerate(self._blocks):
            if not meta.covers_superstep(superstep):
                continue
            if meta.num_masters == meta.num_records:
                continue
            for raw in self._entries_of(meta):
                if raw[0] == KIND_VERTEX and raw[1] == superstep:
                    yield self._entry_tuple(block_index, raw)

    def supersteps(self):
        found = set()
        for meta in self._blocks:
            if meta.num_masters == meta.num_records:
                continue  # pure master block contributes no vertex steps
            if meta.min_superstep == meta.max_superstep:
                found.add(meta.min_superstep)
            else:
                for raw in self._entries_of(meta):
                    if raw[0] == KIND_VERTEX:
                        found.add(raw[1])
        return found

    def flagged_supersteps(self, vflag):
        counter = (
            "num_violations" if vflag == VFLAG_VIOLATIONS else "num_exceptions"
        )
        found = set()
        for meta in self._blocks:
            if not getattr(meta, counter):
                continue
            for raw in self._entries_of(meta):
                if raw[0] == KIND_VERTEX and raw[5] & vflag:
                    found.add(raw[1])
        return found

    def master_entries(self):
        entries = []
        for block_index, meta in enumerate(self._blocks):
            if not meta.num_masters:
                continue
            for raw in self._entries_of(meta):
                if raw[0] == KIND_MASTER:
                    entries.append(self._entry_tuple(block_index, raw))
        return entries

    def _payload(self, block_index):
        key = (self.path, block_index)
        payload = self._block_cache.get(key)
        if payload is None:
            payload = read_block_payload(
                self._fs, self.path, self._blocks[block_index]
            )
            self._block_cache.put(key, payload)
        return payload

    def fetch(self, ref):
        block_index, inner_off, inner_len = ref
        key = (self.path, block_index, inner_off)
        record = self._record_cache.get(key)
        if record is None:
            payload = self._payload(block_index)
            rec_bytes = payload[inner_off:inner_off + inner_len]
            row = json.loads(rec_bytes.decode("utf-8"))
            record = record_from_row(
                row, self._codec, self._vertex_fields, self._master_fields
            )
            self._record_cache.put(key, record)
        return record


def _trace_sources(filesystem, job_id, codec, root,
                   record_cache=None, block_cache=None):
    """One source per trace file of a job, in sorted path order."""
    directory = job_directory(job_id, root)
    if not filesystem.is_dir(directory):
        raise TraceError(f"no trace directory for job {job_id!r}")
    # Explicit None checks: an injected-but-currently-empty cache is falsy
    # (it has __len__), and must still be used, not replaced.
    if record_cache is None:
        record_cache = _LRUCache(0)
    if block_cache is None:
        block_cache = _LRUCache(DEFAULT_BLOCK_CACHE)
    sources = []
    for path in filesystem.glob_files(directory, suffix=".trace"):
        if is_v2_file(filesystem, path):
            sources.append(
                _IndexedSource(filesystem, path, codec, record_cache, block_cache)
            )
        else:
            sources.append(_FallbackSource(filesystem, path, codec))
    return sources


# -- read side: the reader ----------------------------------------------------


class TraceReader:
    """Read side: answers the queries the GUI views and reproducer make.

    Queries: by ``(vertex_id, superstep)``, by superstep, per-vertex
    history, violations, exceptions, and master contexts.

    ``mode="lazy"`` (default) keeps only the block directory in memory and
    decodes records on demand — one index lookup + one ranged read + one
    decode per point query, with an LRU bounding what stays decoded.
    ``mode="eager"`` decodes every file up front (the historical
    behaviour); it remains the oracle for equivalence testing and the
    right choice when a caller will touch every record anyway.

    Failure recovery re-executes supersteps, appending a second record for
    the same (vertex, superstep); both modes keep the latest.
    """

    def __init__(
        self,
        filesystem,
        job_id,
        codec=None,
        root=DEFAULT_ROOT,
        mode="lazy",
        cache_records=DEFAULT_RECORD_CACHE,
        cache_blocks=DEFAULT_BLOCK_CACHE,
        record_cache=None,
        block_cache=None,
    ):
        if mode not in ("lazy", "eager"):
            raise TraceError(f"unknown TraceReader mode {mode!r}")
        self._codec = codec or default_codec
        self.job_id = job_id
        self.mode = mode
        # Guards *installation* of the lazy mode's build-once structures
        # (superstep maps, postings, sorted tuples). Builds themselves run
        # outside the lock — they are pure reads over the sources (which
        # carry their own locks), so a cheap point query is never stuck
        # behind another thread materializing a whole superstep; a lost
        # race just wastes one duplicate build.
        self._lock = threading.RLock()
        directory = job_directory(job_id, root)
        if not filesystem.is_dir(directory):
            raise TraceError(f"no trace directory for job {job_id!r}")
        if mode == "eager":
            self._load_eager(filesystem, directory)
        else:
            # record_cache/block_cache inject *shared* caches (the debug
            # server's process-wide budgets); cache_records/cache_blocks
            # size private per-reader ones otherwise.
            self._open_lazy(
                filesystem, root, cache_records, cache_blocks,
                record_cache=record_cache, block_cache=block_cache,
            )

    # -- eager construction --------------------------------------------------

    def _load_eager(self, filesystem, directory):
        by_key = {}
        master_by_superstep = {}
        for path in filesystem.glob_files(directory, suffix=".trace"):
            for record in iter_file_records(filesystem, path, self._codec):
                if isinstance(record, VertexContextRecord):
                    by_key[record.key] = record
                elif isinstance(record, MasterContextRecord):
                    master_by_superstep[record.superstep] = record
                else:
                    raise TraceError(
                        f"unexpected record type {type(record).__name__}"
                    )
        self._by_key = by_key
        self._master_by_superstep = master_by_superstep
        self._vertex_records = sorted(
            by_key.values(), key=lambda r: (r.superstep, repr(r.vertex_id))
        )
        self.master_records = sorted(
            master_by_superstep.values(), key=lambda r: r.superstep
        )
        # Derived views, each built exactly once: per-superstep tuples
        # (already id-ordered — no re-sort per call) and per-vertex
        # posting lists (history is O(captures of that vertex)).
        by_superstep = {}
        history = {}
        for record in self._vertex_records:
            by_superstep.setdefault(record.superstep, []).append(record)
            history.setdefault(record.vertex_id, []).append(record)
        self._by_superstep = {
            step: tuple(records) for step, records in by_superstep.items()
        }
        self._history = history
        self._supersteps = sorted(self._by_superstep)

    # -- lazy construction ---------------------------------------------------

    def _open_lazy(self, filesystem, root, cache_records, cache_blocks,
                   record_cache=None, block_cache=None):
        if record_cache is None:
            record_cache = _LRUCache(cache_records)
        if block_cache is None:
            block_cache = _LRUCache(cache_blocks)
        self._record_cache = record_cache
        self._block_cache = block_cache
        self._sources = _trace_sources(
            filesystem, self.job_id, self._codec, root,
            record_cache=self._record_cache, block_cache=self._block_cache,
        )
        # Master contexts are one record per superstep — always cheap
        # enough to pin eagerly, and every view's aggregator panel wants
        # them.
        master_by_superstep = {}
        for source in self._sources:
            for entry in source.master_entries():
                master_by_superstep[entry[1]] = source.fetch(entry[3])
        self._master_by_superstep = master_by_superstep
        self.master_records = sorted(
            master_by_superstep.values(), key=lambda r: r.superstep
        )
        self._superstep_maps = {}
        self._at_cache = {}
        self._supersteps = None
        self._postings = None
        self._vertex_records = None

    # -- lazy internals ------------------------------------------------------

    def _superstep_map(self, superstep):
        """``{vid_repr: (source, entry)}`` for one superstep, last write wins."""
        found = self._superstep_maps.get(superstep)
        if found is None:
            built = {}
            for source in self._sources:
                for entry in source.entries_for_superstep(superstep):
                    built[entry[2]] = (source, entry)
            with self._lock:
                found = self._superstep_maps.setdefault(superstep, built)
        return found

    def _vertex_postings(self):
        """``{vid_repr: {superstep: (source, entry)}}`` over the whole job."""
        if self._postings is None:
            postings = {}
            for source in self._sources:
                for entry in source.iter_entries():
                    if entry[0] != KIND_VERTEX:
                        continue
                    postings.setdefault(entry[2], {})[entry[1]] = (
                        source, entry
                    )
            with self._lock:
                if self._postings is None:
                    self._postings = postings
        return self._postings

    def _lazy_lookup(self, vertex_id, superstep):
        hit = self._superstep_map(superstep).get(repr(vertex_id))
        if hit is None:
            return None
        source, entry = hit
        record = source.fetch(entry[3])
        # The index keys on repr(); confirm the decoded id really matches.
        return record if record.vertex_id == vertex_id else None

    def _flagged(self, vflag, superstep=None):
        """Decoded records carrying ``vflag``, in (superstep, id) order."""
        if self.mode == "eager":
            for record in self._vertex_records:
                if superstep is not None and record.superstep != superstep:
                    continue
                wanted = (
                    record.violations
                    if vflag == VFLAG_VIOLATIONS
                    else record.exception is not None
                )
                if wanted:
                    yield record
            return
        steps = set()
        for source in self._sources:
            steps |= source.flagged_supersteps(vflag)
        if superstep is not None:
            steps &= {superstep}
        for step in sorted(steps):
            step_map = self._superstep_map(step)
            for vid_repr in sorted(step_map):
                source, entry = step_map[vid_repr]
                if entry[4] & vflag:
                    yield source.fetch(entry[3])

    # -- queries ------------------------------------------------------------

    def get(self, vertex_id, superstep):
        """The capture record for one (vertex, superstep), or raise."""
        if self.mode == "eager":
            key = (vertex_id, superstep)
            record = self._by_key.get(key)
        else:
            record = self._lazy_lookup(vertex_id, superstep)
        if record is None:
            raise TraceError(
                f"vertex {vertex_id!r} was not captured in superstep {superstep}"
            )
        return record

    def has(self, vertex_id, superstep):
        if self.mode == "eager":
            return (vertex_id, superstep) in self._by_key
        return self._lazy_lookup(vertex_id, superstep) is not None

    def at_superstep(self, superstep):
        """All vertex captures for one superstep, id-ordered.

        Returns a cached tuple: built (and sorted) once per superstep, not
        re-sorted per call.
        """
        if self.mode == "eager":
            return self._by_superstep.get(superstep, ())
        cached = self._at_cache.get(superstep)
        if cached is None:
            step_map = self._superstep_map(superstep)
            built = tuple(
                source.fetch(entry[3])
                for _vid_repr, (source, entry)
                in sorted(step_map.items())
            )
            with self._lock:
                cached = self._at_cache.setdefault(superstep, built)
        return cached

    def history(self, vertex_id):
        """One vertex's captures across supersteps, in superstep order.

        Backed by a per-vertex posting list: O(captures of that vertex),
        not O(all records).
        """
        if self.mode == "eager":
            return list(self._history.get(vertex_id, ()))
        chain = self._vertex_postings().get(repr(vertex_id))
        if not chain:
            return []
        records = []
        for superstep in sorted(chain):
            source, entry = chain[superstep]
            record = source.fetch(entry[3])
            if record.vertex_id == vertex_id:
                records.append(record)
        return records

    def supersteps(self):
        """Sorted superstep numbers that have at least one vertex capture."""
        if self._supersteps is None:
            found = set()
            for source in self._sources:
                found |= source.supersteps()
            ordered = sorted(found)
            with self._lock:
                if self._supersteps is None:
                    self._supersteps = ordered
        return self._supersteps

    def captured_vertex_ids(self):
        """All distinct captured vertex ids."""
        if self.mode == "eager":
            return sorted({r.vertex_id for r in self._vertex_records}, key=repr)
        ids = []
        postings = self._vertex_postings()
        for vid_repr in sorted(postings):
            chain = postings[vid_repr]
            source, entry = chain[min(chain)]
            ids.append(source.fetch(entry[3]).vertex_id)
        return ids

    def violations(self, superstep=None):
        """All violations, optionally limited to one superstep.

        Lazy mode touches only blocks whose index line advertises
        violations — a posting-list walk, not a table scan.
        """
        found = []
        for record in self._flagged(VFLAG_VIOLATIONS, superstep):
            found.extend(record.violations)
        return found

    def exceptions(self, superstep=None):
        """All (record, exception) pairs, optionally for one superstep."""
        return [
            (record, record.exception)
            for record in self._flagged(VFLAG_EXCEPTION, superstep)
        ]

    def master_at(self, superstep):
        """The master capture for one superstep, or None."""
        return self._master_by_superstep.get(superstep)

    @property
    def vertex_records(self):
        """Every vertex capture, (superstep, id)-ordered.

        In lazy mode this materializes the whole trace on first use — the
        escape hatch for callers (fidelity sweeps, diffing) that genuinely
        visit everything.
        """
        if self._vertex_records is None:
            records = []
            for superstep in self.supersteps():
                records.extend(self.at_superstep(superstep))
            with self._lock:
                if self._vertex_records is None:
                    self._vertex_records = records
        return self._vertex_records

    def __len__(self):
        if self.mode == "eager":
            return len(self._by_key)
        return sum(len(c) for c in self._vertex_postings().values())


# -- deterministic trace merge ------------------------------------------------

_NORMALIZED_WORKER_ID = 0


def iter_canonical_trace_lines(filesystem, job_id, codec=None, root=DEFAULT_ROOT):
    """Stream one job's captures as canonical, partition-independent lines.

    Every record from every trace file is decoded, its ``worker_id``
    normalized (vertex placement is an artifact of partitioning, not of
    the computation), re-encoded with the canonical codec (v1 line form:
    sorted keys, compact separators), and totally ordered by ``(kind,
    superstep, repr(vertex_id), line_text)``. Byte-identical lines within
    one key collapse to a single line: a superstep re-executed after a
    checkpoint rollback re-captures exactly the records the first attempt
    already persisted, and deduplication makes the canonical stream — and
    :func:`canonical_trace_digest` — invariant under such recoveries.
    Genuinely different records sharing a key are all preserved. Two runs
    of the same job produce equal streams — and equal digest hashes —
    whatever backend, worker count, storage format, or fault/recovery
    history produced them.

    Only the sort keys (plus, for v1 files, their decoded records) are
    held in memory; the re-encoded lines themselves stream out one
    equal-key group at a time.
    """
    codec = codec or default_codec
    sources = _trace_sources(filesystem, job_id, codec, root)
    keyed = []
    for source_index, source in enumerate(sources):
        for entry in source.iter_entries():
            if entry[0] == KIND_VERTEX:
                key = (0, entry[1], entry[2])
            else:
                key = (1, entry[1], "")
            keyed.append((key, source_index, entry[3]))
    keyed.sort(key=lambda item: item[0])
    total = len(keyed)
    start = 0
    while start < total:
        stop = start
        key = keyed[start][0]
        while stop < total and keyed[stop][0] == key:
            stop += 1
        lines = []
        for _key, source_index, ref in keyed[start:stop]:
            record = sources[source_index].fetch(ref)
            if isinstance(record, VertexContextRecord):
                record.worker_id = _NORMALIZED_WORKER_ID
            lines.append(record_to_line(record, codec))
        if len(lines) > 1:
            # Content tiebreak inside one (kind, ss, id) key; identical
            # lines (rollback re-captures) collapse to one.
            lines = sorted(set(lines))
        for line in lines:
            yield line
        start = stop


def canonical_trace_lines(filesystem, job_id, codec=None, root=DEFAULT_ROOT):
    """One job's captures as a canonical line list (see the iterator form)."""
    return list(iter_canonical_trace_lines(filesystem, job_id, codec, root))


def canonical_trace_digest(filesystem, job_id, codec=None, root=DEFAULT_ROOT):
    """SHA-256 over the canonical merged trace (hex string).

    The one-number answer to "did these two runs capture the same thing?"
    — byte-identical across execution backends, worker counts, and the
    v1/v2 storage formats. Computed streamingly: no full line list is ever
    materialized.
    """
    digest = hashlib.sha256()
    for line in iter_canonical_trace_lines(filesystem, job_id, codec, root):
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


# -- stats --------------------------------------------------------------------


def trace_stats(filesystem, job_id, codec=None, root=DEFAULT_ROOT):
    """Per-file storage statistics for one job's traces.

    Returns a dict with one row per trace file (format, bytes, index
    bytes, record counts, index coverage, compression ratio) plus totals —
    what the ``repro trace stats`` subcommand renders. A ``*.trace`` file
    that is not actually a readable trace (foreign bytes someone parked
    under the job directory, undecodable garbage) is skipped rather than
    failing the whole report: it lands in the returned ``skipped`` list as
    ``{"path", "error"}`` so callers can warn about it.
    """
    codec = codec or default_codec
    directory = job_directory(job_id, root)
    if not filesystem.is_dir(directory):
        raise TraceError(f"no trace directory for job {job_id!r}")
    files = []
    skipped = []
    for path in filesystem.glob_files(directory, suffix=".trace"):
        try:
            files.append(_file_stats(filesystem, path, codec))
        except (
            TraceError,
            SerializationError,
            SimFsError,
            UnicodeDecodeError,
            ValueError,
            KeyError,
            zlib.error,
        ) as exc:
            skipped.append({"path": path, "error": str(exc)})
    total_records = sum(f["records"] for f in files)
    total_bytes = sum(f["bytes"] for f in files)
    total_idx = sum(f["index_bytes"] for f in files)
    total_raw = sum(f["raw_payload_bytes"] for f in files)
    total_stored = sum(f["stored_payload_bytes"] for f in files)
    indexed = sum(f["indexed_records"] for f in files)
    return {
        "job_id": job_id,
        "files": files,
        "skipped": skipped,
        "totals": {
            "files": len(files),
            "records": total_records,
            "bytes": total_bytes,
            "index_bytes": total_idx,
            "index_coverage": (
                round(indexed / total_records, 4) if total_records else 1.0
            ),
            "compression_ratio": (
                round(total_raw / total_stored, 3) if total_stored else 1.0
            ),
        },
    }


def _file_stats(filesystem, path, codec):
    """Stats row for one trace file; raises when the file is unreadable."""
    size = filesystem.stat(path).size
    idx_path = path + ".idx"
    idx_bytes = (
        filesystem.stat(idx_path).size if filesystem.is_file(idx_path) else 0
    )
    if is_v2_file(filesystem, path):
        blocks, _header, index_stats = load_index(filesystem, path, codec)
        indexed_blocks = index_stats["indexed_blocks"]
        records = sum(meta.num_records for meta in blocks)
        indexed_records = sum(
            meta.num_records for meta in blocks[:indexed_blocks]
        )
        raw = stored = 0
        for meta in blocks:
            raw += len(read_block_payload(filesystem, path, meta))
            stored += meta.length
        return {
            "path": path,
            "format": TRACE_FORMAT_V2,
            "bytes": size,
            "index_bytes": idx_bytes,
            "records": records,
            "indexed_records": indexed_records,
            "recovered_records": records - indexed_records,
            "index_coverage": (
                round(indexed_records / records, 4) if records else 1.0
            ),
            "violations": sum(meta.num_violations for meta in blocks),
            "exceptions": sum(meta.num_exceptions for meta in blocks),
            "raw_payload_bytes": raw,
            "stored_payload_bytes": stored,
            "compression_ratio": round(raw / stored, 3) if stored else 1.0,
        }
    # v1 has no magic line, so *any* text file reaches this branch: parse
    # every line with the real record decoder so foreign files raise (and
    # get skipped with a warning) instead of masquerading as empty traces.
    records = 0
    for line in filesystem.read_lines(path):
        record_from_line(line, codec)
        records += 1
    return {
        "path": path,
        "format": TRACE_FORMAT_V1,
        "bytes": size,
        "index_bytes": idx_bytes,
        "records": records,
        "indexed_records": 0,
        "recovered_records": 0,
        "index_coverage": 0.0,
        "violations": None,
        "exceptions": None,
        "raw_payload_bytes": size,
        "stored_payload_bytes": size,
        "compression_ratio": 1.0,
    }
