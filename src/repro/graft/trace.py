"""Trace files: how captures reach, and are read back from, the file system.

Layout under one job directory (mirroring Graft's per-worker HDFS files)::

    /graft/<job_id>/worker-<i>.trace   one JSON line per vertex capture
    /graft/<job_id>/master.trace       one JSON line per master capture

:class:`TraceStore` is the write side, owned by the Graft session while the
job runs; :class:`TraceReader` is the read side, used by the GUI views and
the Context Reproducer after (or during) the run. Reading only needs the
file system and codec — a different process (the paper's "copy into your
IDE" step) can do it, provided the modules defining the value types are
imported.

:func:`canonical_trace_lines` / :func:`canonical_trace_digest` provide the
*deterministic trace merge*: a single canonical view of a job's captures
that is byte-identical regardless of execution backend **and** worker
count. Raw per-worker files are already byte-identical across backends at
the same worker count; the canonical merge additionally normalizes the two
partition-dependent artifacts (which file a record landed in, and the
``worker_id`` field inside it) and imposes a content-based total order, so
two runs of the same job can be compared with a single hash even when one
used 1 worker and the other 8.
"""

import hashlib

from repro.common.errors import TraceError
from repro.common.serialization import default_codec
from repro.graft.capture import (
    MasterContextRecord,
    VertexContextRecord,
    record_from_line,
    record_to_line,
)
from repro.simfs.writers import LineWriter

DEFAULT_ROOT = "/graft"


def job_directory(job_id, root=DEFAULT_ROOT):
    return f"{root}/{job_id}"


def worker_trace_path(job_id, worker_id, root=DEFAULT_ROOT):
    return f"{job_directory(job_id, root)}/worker-{worker_id}.trace"


def master_trace_path(job_id, root=DEFAULT_ROOT):
    return f"{job_directory(job_id, root)}/master.trace"


class TraceStore:
    """Write side: per-worker appenders plus the master appender."""

    def __init__(self, filesystem, job_id, num_workers, codec=None):
        self._fs = filesystem
        self.job_id = job_id
        self._codec = codec or default_codec
        self._worker_writers = [
            LineWriter(filesystem, worker_trace_path(job_id, worker_id))
            for worker_id in range(num_workers)
        ]
        self._master_writer = LineWriter(filesystem, master_trace_path(job_id))
        self.records_written = 0

    def write_vertex_record(self, record):
        """Append one vertex capture to its worker's trace file."""
        writer = self._worker_writers[record.worker_id]
        writer.write_line(record_to_line(record, self._codec))
        self.records_written += 1

    def write_vertex_records(self, records):
        """Bulk-append vertex captures (the session's barrier drain path).

        Records are encoded in one pass and handed to each worker file's
        writer as a batch, so a drain of N records costs one buffered
        append per touched file instead of N per-line threshold checks.
        Order within each worker's file follows the order of ``records``.
        """
        codec = self._codec
        lines_by_worker = {}
        count = 0
        for record in records:
            lines = lines_by_worker.get(record.worker_id)
            if lines is None:
                lines = lines_by_worker[record.worker_id] = []
            lines.append(record_to_line(record, codec))
            count += 1
        for worker_id, lines in lines_by_worker.items():
            self._worker_writers[worker_id].write_lines(lines)
        self.records_written += count

    def write_master_record(self, record):
        """Append one master capture to the master trace file."""
        self._master_writer.write_line(record_to_line(record, self._codec))
        self.records_written += 1

    def flush(self):
        """Flush all writers (the session does this at superstep barriers)."""
        for writer in self._worker_writers:
            writer.flush()
        self._master_writer.flush()

    def close(self):
        for writer in self._worker_writers:
            writer.close()
        self._master_writer.close()

    def total_bytes(self):
        """Bytes currently stored for this job's traces."""
        return self._fs.total_bytes(job_directory(self.job_id))


class TraceReader:
    """Read side: loads a job's trace files and indexes the records.

    Indexes: by ``(vertex_id, superstep)``, by superstep, violations, and
    exceptions — everything the three GUI views and the reproducer query.
    """

    def __init__(self, filesystem, job_id, codec=None, root=DEFAULT_ROOT):
        self._codec = codec or default_codec
        self.job_id = job_id
        self._by_key = {}
        self._master_by_superstep = {}
        directory = job_directory(job_id, root)
        if not filesystem.is_dir(directory):
            raise TraceError(f"no trace directory for job {job_id!r}")
        for path in filesystem.glob_files(directory, suffix=".trace"):
            for line in filesystem.read_lines(path):
                self._add(record_from_line(line, self._codec))
        # Failure recovery re-executes supersteps, appending a second record
        # for the same (vertex, superstep); the indexes above keep the
        # latest, and the derived views below are built from them.
        self.vertex_records = sorted(
            self._by_key.values(), key=lambda r: (r.superstep, repr(r.vertex_id))
        )
        self.master_records = sorted(
            self._master_by_superstep.values(), key=lambda r: r.superstep
        )
        self._by_superstep = {}
        for record in self.vertex_records:
            self._by_superstep.setdefault(record.superstep, []).append(record)

    def _add(self, record):
        if isinstance(record, VertexContextRecord):
            self._by_key[record.key] = record
        elif isinstance(record, MasterContextRecord):
            self._master_by_superstep[record.superstep] = record
        else:
            raise TraceError(f"unexpected record type {type(record).__name__}")

    # -- queries ------------------------------------------------------------

    def get(self, vertex_id, superstep):
        """The capture record for one (vertex, superstep), or raise."""
        key = (vertex_id, superstep)
        if key not in self._by_key:
            raise TraceError(
                f"vertex {vertex_id!r} was not captured in superstep {superstep}"
            )
        return self._by_key[key]

    def has(self, vertex_id, superstep):
        return (vertex_id, superstep) in self._by_key

    def at_superstep(self, superstep):
        """All vertex captures for one superstep, id-ordered."""
        records = self._by_superstep.get(superstep, [])
        return sorted(records, key=lambda r: repr(r.vertex_id))

    def history(self, vertex_id):
        """One vertex's captures across supersteps, in superstep order."""
        return [r for r in self.vertex_records if r.vertex_id == vertex_id]

    def supersteps(self):
        """Sorted superstep numbers that have at least one vertex capture."""
        return sorted(self._by_superstep)

    def captured_vertex_ids(self):
        """All distinct captured vertex ids."""
        return sorted({r.vertex_id for r in self.vertex_records}, key=repr)

    def violations(self, superstep=None):
        """All violations, optionally limited to one superstep."""
        found = []
        for record in self.vertex_records:
            if superstep is not None and record.superstep != superstep:
                continue
            found.extend(record.violations)
        return found

    def exceptions(self, superstep=None):
        """All (record, exception) pairs, optionally for one superstep."""
        return [
            (record, record.exception)
            for record in self.vertex_records
            if record.exception is not None
            and (superstep is None or record.superstep == superstep)
        ]

    def master_at(self, superstep):
        """The master capture for one superstep, or None."""
        return self._master_by_superstep.get(superstep)

    def __len__(self):
        return len(self.vertex_records)


# -- deterministic trace merge ------------------------------------------------

_NORMALIZED_WORKER_ID = 0


def canonical_trace_lines(filesystem, job_id, codec=None, root=DEFAULT_ROOT):
    """One job's captures as a canonical, partition-independent line list.

    Every record from every trace file is decoded, its ``worker_id``
    normalized (vertex placement is an artifact of partitioning, not of
    the computation), re-encoded with the canonical codec (sorted keys,
    compact separators), and totally ordered by ``(kind, superstep,
    repr(vertex_id), line_text)``. Two runs of the same job produce equal
    lists — and equal :func:`canonical_trace_digest` hashes — whatever
    backend or worker count executed them.
    """
    codec = codec or default_codec
    directory = job_directory(job_id, root)
    if not filesystem.is_dir(directory):
        raise TraceError(f"no trace directory for job {job_id!r}")
    keyed = []
    for path in filesystem.glob_files(directory, suffix=".trace"):
        for line in filesystem.read_lines(path):
            record = record_from_line(line, codec)
            if isinstance(record, VertexContextRecord):
                record.worker_id = _NORMALIZED_WORKER_ID
                key = (0, record.superstep, repr(record.vertex_id))
            else:
                key = (1, record.superstep, "")
            keyed.append((key, record_to_line(record, codec)))
    keyed.sort(key=lambda pair: (pair[0], pair[1]))
    return [text for _, text in keyed]


def canonical_trace_digest(filesystem, job_id, codec=None, root=DEFAULT_ROOT):
    """SHA-256 over the canonical merged trace (hex string).

    The one-number answer to "did these two runs capture the same thing?"
    — byte-identical across execution backends and worker counts.
    """
    digest = hashlib.sha256()
    for line in canonical_trace_lines(filesystem, job_id, codec, root):
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()
