"""Trace files: how captures reach, and are read back from, the file system.

Layout under one job directory (mirroring Graft's per-worker HDFS files)::

    /graft/<job_id>/worker-<i>.trace   one JSON line per vertex capture
    /graft/<job_id>/master.trace       one JSON line per master capture

:class:`TraceStore` is the write side, owned by the Graft session while the
job runs; :class:`TraceReader` is the read side, used by the GUI views and
the Context Reproducer after (or during) the run. Reading only needs the
file system and codec — a different process (the paper's "copy into your
IDE" step) can do it, provided the modules defining the value types are
imported.
"""

from repro.common.errors import TraceError
from repro.common.serialization import default_codec
from repro.graft.capture import (
    MasterContextRecord,
    VertexContextRecord,
    record_from_line,
    record_to_line,
)
from repro.simfs.writers import LineWriter

DEFAULT_ROOT = "/graft"


def job_directory(job_id, root=DEFAULT_ROOT):
    return f"{root}/{job_id}"


def worker_trace_path(job_id, worker_id, root=DEFAULT_ROOT):
    return f"{job_directory(job_id, root)}/worker-{worker_id}.trace"


def master_trace_path(job_id, root=DEFAULT_ROOT):
    return f"{job_directory(job_id, root)}/master.trace"


class TraceStore:
    """Write side: per-worker appenders plus the master appender."""

    def __init__(self, filesystem, job_id, num_workers, codec=None):
        self._fs = filesystem
        self.job_id = job_id
        self._codec = codec or default_codec
        self._worker_writers = [
            LineWriter(filesystem, worker_trace_path(job_id, worker_id))
            for worker_id in range(num_workers)
        ]
        self._master_writer = LineWriter(filesystem, master_trace_path(job_id))
        self.records_written = 0

    def write_vertex_record(self, record):
        """Append one vertex capture to its worker's trace file."""
        writer = self._worker_writers[record.worker_id]
        writer.write_line(record_to_line(record, self._codec))
        self.records_written += 1

    def write_master_record(self, record):
        """Append one master capture to the master trace file."""
        self._master_writer.write_line(record_to_line(record, self._codec))
        self.records_written += 1

    def flush(self):
        """Flush all writers (the session does this at superstep barriers)."""
        for writer in self._worker_writers:
            writer.flush()
        self._master_writer.flush()

    def close(self):
        for writer in self._worker_writers:
            writer.close()
        self._master_writer.close()

    def total_bytes(self):
        """Bytes currently stored for this job's traces."""
        return self._fs.total_bytes(job_directory(self.job_id))


class TraceReader:
    """Read side: loads a job's trace files and indexes the records.

    Indexes: by ``(vertex_id, superstep)``, by superstep, violations, and
    exceptions — everything the three GUI views and the reproducer query.
    """

    def __init__(self, filesystem, job_id, codec=None, root=DEFAULT_ROOT):
        self._codec = codec or default_codec
        self.job_id = job_id
        self._by_key = {}
        self._master_by_superstep = {}
        directory = job_directory(job_id, root)
        if not filesystem.is_dir(directory):
            raise TraceError(f"no trace directory for job {job_id!r}")
        for path in filesystem.glob_files(directory, suffix=".trace"):
            for line in filesystem.read_lines(path):
                self._add(record_from_line(line, self._codec))
        # Failure recovery re-executes supersteps, appending a second record
        # for the same (vertex, superstep); the indexes above keep the
        # latest, and the derived views below are built from them.
        self.vertex_records = sorted(
            self._by_key.values(), key=lambda r: (r.superstep, repr(r.vertex_id))
        )
        self.master_records = sorted(
            self._master_by_superstep.values(), key=lambda r: r.superstep
        )
        self._by_superstep = {}
        for record in self.vertex_records:
            self._by_superstep.setdefault(record.superstep, []).append(record)

    def _add(self, record):
        if isinstance(record, VertexContextRecord):
            self._by_key[record.key] = record
        elif isinstance(record, MasterContextRecord):
            self._master_by_superstep[record.superstep] = record
        else:
            raise TraceError(f"unexpected record type {type(record).__name__}")

    # -- queries ------------------------------------------------------------

    def get(self, vertex_id, superstep):
        """The capture record for one (vertex, superstep), or raise."""
        key = (vertex_id, superstep)
        if key not in self._by_key:
            raise TraceError(
                f"vertex {vertex_id!r} was not captured in superstep {superstep}"
            )
        return self._by_key[key]

    def has(self, vertex_id, superstep):
        return (vertex_id, superstep) in self._by_key

    def at_superstep(self, superstep):
        """All vertex captures for one superstep, id-ordered."""
        records = self._by_superstep.get(superstep, [])
        return sorted(records, key=lambda r: repr(r.vertex_id))

    def history(self, vertex_id):
        """One vertex's captures across supersteps, in superstep order."""
        return [r for r in self.vertex_records if r.vertex_id == vertex_id]

    def supersteps(self):
        """Sorted superstep numbers that have at least one vertex capture."""
        return sorted(self._by_superstep)

    def captured_vertex_ids(self):
        """All distinct captured vertex ids."""
        return sorted({r.vertex_id for r in self.vertex_records}, key=repr)

    def violations(self, superstep=None):
        """All violations, optionally limited to one superstep."""
        found = []
        for record in self.vertex_records:
            if superstep is not None and record.superstep != superstep:
                continue
            found.extend(record.violations)
        return found

    def exceptions(self, superstep=None):
        """All (record, exception) pairs, optionally for one superstep."""
        return [
            (record, record.exception)
            for record in self.vertex_records
            if record.exception is not None
            and (superstep is None or record.superstep == superstep)
        ]

    def master_at(self, superstep):
        """The master capture for one superstep, or None."""
        return self._master_by_superstep.get(superstep)

    def __len__(self):
        return len(self.vertex_records)
