"""Offline mode: small-graph construction for end-to-end tests.

Section 3.4 of the paper: the Node-link View has an "offline" mode where
users add vertices, draw edges, edit values, or pick premade graphs from a
menu, then obtain either the graph's adjacency-list text file or an
end-to-end test code template. :class:`OfflineGraphBuilder` is that mode as
a library object.
"""

from repro.datasets.premade import premade_graph, premade_menu
from repro.graph.builder import GraphBuilder
from repro.graph.io import render_adjacency_text
from repro.graft.reproducer import generate_end_to_end_test


class OfflineGraphBuilder(GraphBuilder):
    """GraphBuilder plus the offline mode's export actions.

    >>> builder = OfflineGraphBuilder(directed=False).edge(1, 2).edge(2, 3)
    >>> builder.to_adjacency_text().split("\\n")
    ['1\\t\\t2:', '2\\t\\t1:\\t3:', '3\\t\\t2:']
    """

    @classmethod
    def menu(cls):
        """Names of the premade graphs (the GUI's dropdown)."""
        return premade_menu()

    @classmethod
    def from_premade(cls, name):
        """Start from a premade graph, ready for further editing."""
        graph = premade_graph(name)
        builder = cls(directed=graph.directed)
        for vertex_id in graph.vertex_ids():
            builder.vertex(vertex_id, graph.vertex_value(vertex_id))
        seen = set()
        for source, target, value in graph.edges():
            if graph.directed:
                builder.edge(source, target, value)
                continue
            key = (
                (source, target) if repr(source) <= repr(target) else (target, source)
            )
            if key not in seen:
                seen.add(key)
                builder.edge(source, target, value)
        return builder

    def to_adjacency_text(self):
        """The graph as adjacency-list text for an end-to-end test's input."""
        return render_adjacency_text(self.build())

    def to_end_to_end_test(
        self,
        computation_factory,
        test_name="test_end_to_end",
        expected_values=None,
        engine_kwargs=None,
    ):
        """An end-to-end pytest file exercising this graph (Section 3.4)."""
        return generate_end_to_end_test(
            self.build(),
            computation_factory,
            test_name=test_name,
            expected_values=expected_values,
            engine_kwargs=engine_kwargs,
        )
