"""Text rendering of benchmark outputs: tables and the Figure 7/8 bars."""

from repro.bench.overhead import NO_DEBUG


def render_table(headers, rows, title=None):
    """Fixed-width text table.

    >>> print(render_table(["a", "b"], [["x", 1]]))
    a  b
    -  -
    x  1
    """
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_overhead_bars(cells, bar_width=32, title=None):
    """The Figure 7/8 layout: clusters of normalized bars with capture counts.

    Each cluster is one (algorithm, dataset) pair; each bar one
    DebugConfig, scaled relative to the no-debug baseline (1.0), annotated
    with its normalized runtime and total capture count.
    """
    lines = []
    if title:
        lines.append(title)
    clusters = {}
    for cell in cells:
        clusters.setdefault((cell.algorithm, cell.dataset), []).append(cell)
    scale = max((c.normalized for c in cells), default=1.0)
    for (algorithm, dataset), cluster in clusters.items():
        lines.append("")
        lines.append(f"{algorithm}-{dataset}")
        for cell in cluster:
            filled = max(1, round(cell.normalized / scale * bar_width))
            bar = "#" * filled + " " * (bar_width - filled)
            captures = "" if cell.config_name == NO_DEBUG else f"  captures={cell.captures}"
            lines.append(
                f"  {cell.config_name:<10} {cell.normalized:5.2f} |{bar}|"
                f" ±{cell.std_seconds * 1e3:5.1f}ms{captures}"
            )
    return "\n".join(lines)


def render_headlines(worst_by_config):
    """The paper's Section 5 headline sentences from measured maxima."""
    lines = ["Worst-case overhead per DebugConfig across the grid:"]
    for config_name in sorted(worst_by_config):
        percent = worst_by_config[config_name] * 100.0
        lines.append(f"  {config_name:<10} {percent:6.1f}%")
    return "\n".join(lines)
