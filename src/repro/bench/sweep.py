"""Repetition sweeps with summary statistics.

The paper ran each experiment five times and reported averages with small
variances (the error bars of Figure 7/8); :func:`repeat_timed` does the
same for any callable.
"""

import math
from dataclasses import dataclass

from repro.common.timing import Timer


@dataclass(frozen=True)
class SweepStats:
    """Mean/stddev/min/max of one repeated measurement, in seconds."""

    mean: float
    std: float
    minimum: float
    maximum: float
    repetitions: int

    @classmethod
    def from_samples(cls, samples):
        n = len(samples)
        if n == 0:
            raise ValueError("no samples")
        mean = sum(samples) / n
        variance = sum((s - mean) ** 2 for s in samples) / n
        return cls(
            mean=mean,
            std=math.sqrt(variance),
            minimum=min(samples),
            maximum=max(samples),
            repetitions=n,
        )

    def summary(self):
        return f"{self.mean * 1e3:.1f}ms ± {self.std * 1e3:.1f}ms (n={self.repetitions})"


def repeat_timed(fn, repetitions=3, warmup=1):
    """Call ``fn()`` ``warmup + repetitions`` times; time the last ``repetitions``.

    Returns ``(stats, last_result)`` — the last call's return value is kept
    so callers can report run-specific outputs (capture counts, trace
    bytes) alongside the timing.
    """
    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    result = None
    for _ in range(warmup):
        result = fn()
    samples = []
    for _ in range(repetitions):
        with Timer() as timer:
            result = fn()
        samples.append(timer.elapsed)
    return SweepStats.from_samples(samples), result
