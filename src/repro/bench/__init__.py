"""Benchmark harness: regenerates the paper's tables and figures.

The paper automated its performance study with the 3X experiment manager;
this package plays that role: :mod:`repro.bench.sweep` runs repetition
sweeps with mean/stddev, :mod:`repro.bench.overhead` runs the Figure 7/8
experiment grid (algorithm x dataset x DebugConfig, normalized against
no-debug), and :mod:`repro.bench.render` prints the tables and bar charts.
The runnable entry points live in ``benchmarks/``.
"""

from repro.bench.overhead import (
    ExperimentSpec,
    OverheadCell,
    max_overhead_by_config,
    run_overhead_grid,
)
from repro.bench.render import render_headlines, render_overhead_bars, render_table
from repro.bench.sweep import SweepStats, repeat_timed

__all__ = [
    "ExperimentSpec",
    "OverheadCell",
    "max_overhead_by_config",
    "run_overhead_grid",
    "render_headlines",
    "render_overhead_bars",
    "render_table",
    "SweepStats",
    "repeat_timed",
]
