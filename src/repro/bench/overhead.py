"""The Figure 7/8 experiment: Graft's runtime overhead per DebugConfig.

For each (algorithm, dataset) cluster, the experiment runs the computation
without Graft ("no-debug") and under each DebugConfig of Table 3, reports
the total runtime normalized against no-debug (1.0), and annotates each bar
with the total number of vertex captures — exactly the figure's layout.
"""

from dataclasses import dataclass

from repro.bench.sweep import repeat_timed
from repro.graft.debug_run import debug_run
from repro.pregel.engine import PregelEngine

NO_DEBUG = "no-debug"


@dataclass
class OverheadCell:
    """One bar of the figure."""

    algorithm: str
    dataset: str
    config_name: str
    mean_seconds: float
    std_seconds: float
    normalized: float
    captures: int
    trace_bytes: int

    @property
    def overhead_percent(self):
        return (self.normalized - 1.0) * 100.0


@dataclass(frozen=True)
class ExperimentSpec:
    """One (algorithm, dataset) cluster of the grid.

    ``computation_factory`` builds the vertex program;
    ``engine_kwargs_factory`` builds fresh per-run engine keyword arguments
    (master instances and similar per-run state must not be shared between
    runs).
    """

    algorithm: str
    dataset: str
    graph: object
    computation_factory: object
    engine_kwargs_factory: object = None

    def engine_kwargs(self):
        if self.engine_kwargs_factory is None:
            return {}
        return dict(self.engine_kwargs_factory())


def _run_plain(spec, seed):
    def once():
        engine = PregelEngine(
            spec.computation_factory, spec.graph, seed=seed, **spec.engine_kwargs()
        )
        return engine.run()

    return once


def _run_debug(spec, config_factory, seed):
    def once():
        return debug_run(
            spec.computation_factory,
            spec.graph,
            config_factory(),
            seed=seed,
            **spec.engine_kwargs(),
        )

    return once


def run_overhead_grid(specs, config_factories, repetitions=3, seed=0, warmup=1):
    """Run the full grid and return the figure's cells in display order.

    ``specs`` is a list of :class:`ExperimentSpec`; ``config_factories``
    maps DebugConfig name -> zero-argument factory (fresh config per run).
    Every cluster leads with its no-debug baseline (normalized 1.0).
    """
    cells = []
    for spec in specs:
        baseline_stats, baseline_result = repeat_timed(
            _run_plain(spec, seed), repetitions, warmup
        )
        del baseline_result
        baseline = baseline_stats.mean
        cells.append(
            OverheadCell(
                algorithm=spec.algorithm,
                dataset=spec.dataset,
                config_name=NO_DEBUG,
                mean_seconds=baseline,
                std_seconds=baseline_stats.std,
                normalized=1.0,
                captures=0,
                trace_bytes=0,
            )
        )
        for config_name, config_factory in config_factories.items():
            stats, run = repeat_timed(
                _run_debug(spec, config_factory, seed), repetitions, warmup
            )
            if run.failure is not None:
                raise run.failure
            cells.append(
                OverheadCell(
                    algorithm=spec.algorithm,
                    dataset=spec.dataset,
                    config_name=config_name,
                    mean_seconds=stats.mean,
                    std_seconds=stats.std,
                    normalized=stats.mean / baseline if baseline else float("inf"),
                    captures=run.capture_count,
                    trace_bytes=run.trace_bytes,
                )
            )
    return cells


def max_overhead_by_config(cells):
    """The paper's headline numbers: worst overhead per config across the grid.

    Returns ``{config_name: max overhead fraction}`` (e.g. 0.16 for "<16%"),
    excluding the no-debug baselines.
    """
    worst = {}
    for cell in cells:
        if cell.config_name == NO_DEBUG:
            continue
        previous = worst.get(cell.config_name, 0.0)
        worst[cell.config_name] = max(previous, cell.normalized - 1.0)
    return worst
