"""SARIF 2.1.0 export for graft-lint reports.

SARIF (Static Analysis Results Interchange Format) is the schema code
hosts ingest for code-scanning annotations — one ``run`` with a tool
descriptor, a rule catalog, and a flat result list. This module turns a
batch of :class:`~repro.analysis.findings.AnalysisReport` objects into
one SARIF log:

- every rule that fired (plus the full catalog by default) appears under
  ``tool.driver.rules`` with its title as ``shortDescription``;
- every finding becomes a ``result`` with ``level`` mapped from the
  finding severity, a physical location, and graft-specific fields
  (class, method, confidence, predicted runtime evidence) preserved
  under ``properties`` so nothing the text renderer shows is lost;
- file paths are emitted relative to ``base_dir`` when given, since
  code-scanning UIs match annotations by repo-relative URI.

The export is pure-dict construction — callers ``json.dumps`` the
returned log (``repro lint --format sarif`` does exactly that).
"""

import os

from repro.analysis.findings import ERROR, INFO, WARNING

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {ERROR: "error", WARNING: "warning", INFO: "note"}


def _rule_descriptor(rule_id, severity, title):
    return {
        "id": rule_id,
        "name": rule_id,
        "shortDescription": {"text": title},
        "defaultConfiguration": {"level": _LEVELS.get(severity, "warning")},
    }


def _artifact_uri(filename, base_dir):
    if not filename or filename.startswith("<"):
        return filename or "<unknown>"
    if base_dir:
        try:
            rel = os.path.relpath(filename, base_dir)
        except ValueError:  # different drive on windows
            return filename
        if not rel.startswith(".."):
            return rel.replace(os.sep, "/")
    return filename


def _result(finding, base_dir):
    result = {
        "ruleId": finding.rule_id,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {
            "text": f"{finding.class_name}.{finding.method}: "
                    f"{finding.message}"
        },
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": _artifact_uri(finding.filename, base_dir),
                },
                "region": {"startLine": max(1, int(finding.line or 1))},
            },
        }],
        "properties": {
            "className": finding.class_name,
            "method": finding.method,
            "confidence": finding.confidence,
        },
    }
    if finding.predicts:
        result["properties"]["predicts"] = finding.predicts
    if finding.hint:
        result["properties"]["hint"] = finding.hint
    return result


def sarif_log(reports, base_dir=None, tool_version="0.1"):
    """One SARIF 2.1.0 log (a plain dict) for a batch of reports.

    ``reports`` is an iterable of :class:`AnalysisReport`. The rule
    catalog covers every registered rule, so code-scanning UIs can show
    descriptions even for rules that produced no results this run.
    """
    from repro.analysis.rules import rule_catalog

    rules = [
        _rule_descriptor(rule_id, severity, title)
        for rule_id, (severity, title) in sorted(rule_catalog().items())
    ]
    results = []
    for report in reports:
        for finding in report.findings:
            results.append(_result(finding, base_dir))
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "graft-lint",
                    "informationUri": "https://example.org/graft-lint",
                    "version": tool_version,
                    "rules": rules,
                },
            },
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }
