"""The graft-lint rule engine.

Given a ``Computation`` subclass (or raw module source), the engine locates
the class's AST — following the MRO so inherited ``compute`` methods are
analyzed with the subclass's overrides in effect — builds one
:class:`~repro.analysis.scopes.MethodScope` per effective method, resolves
module- and class-level string constants (aggregator names are usually
module constants), and runs every registered rule over the resulting
:class:`ClassContext`. Rules emit :class:`~repro.analysis.findings.Finding`
objects; the engine returns them as a sorted
:class:`~repro.analysis.findings.AnalysisReport`.

Two entry points:

- :func:`analyze_computation` — a live class; used by the ``repro lint``
  CLI on ``module:Class`` targets and by ``debug_run``'s pre-flight check.
- :func:`analyze_module_source` — raw source text, no import executed;
  used to lint example scripts (importing them would *run* them).
"""

import ast
import inspect
import sys
import textwrap

from repro.analysis.findings import AnalysisReport
from repro.analysis.scopes import build_method_scope

_REPORT_CACHE = {}


class ClassContext:
    """Everything the rules see about one analyzed class."""

    def __init__(self, class_name, filename, scopes, constants):
        self.class_name = class_name
        self.filename = filename
        #: Effective methods after MRO resolution: name -> MethodScope.
        self.scopes = scopes
        #: Resolved string/number constants visible to the class: a merge
        #: of module-level and class-level simple assignments, name -> value.
        self.constants = constants

    def scope(self, name):
        return self.scopes.get(name)

    def iter_scopes(self, include_init=False):
        for name, scope in self.scopes.items():
            if name == "__init__" and not include_init:
                continue
            yield scope

    def resolve_constant(self, node):
        """The literal value behind an expression, or None if dynamic.

        Handles ``"phase"`` (a constant) and ``PHASE_AGG`` (a name bound to
        a constant at module or class level) — the two ways aggregator
        names are written in practice.
        """
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            return self.constants.get(node.id)
        return None


def _collect_constants(tree, into):
    """Record simple ``NAME = <literal>`` assignments from a body."""
    for node in tree.body:
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Constant):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    into[target.id] = node.value.value
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.value, ast.Constant
        ):
            if isinstance(node.target, ast.Name):
                into[node.target.id] = node.value.value
    return into


def _class_defs_from_module(tree):
    return {
        node.name: node for node in tree.body if isinstance(node, ast.ClassDef)
    }


def _build_context(class_name, mro_class_defs, constants, filename):
    """Assemble a :class:`ClassContext` from base-to-derived class defs.

    ``mro_class_defs`` is ``[(class_def, defining_name), ...]`` ordered
    base first, so later (more derived) definitions override earlier ones —
    exactly Python's attribute resolution.
    """
    method_names = set()
    for class_def, _name in mro_class_defs:
        for node in class_def.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method_names.add(node.name)
        _collect_constants(class_def, constants)

    scopes = {}
    for class_def, defining_name in mro_class_defs:
        for node in class_def.body:
            if isinstance(node, ast.FunctionDef):
                scopes[node.name] = build_method_scope(
                    node, defining_name, filename, method_names
                )
    return ClassContext(class_name, filename, scopes, constants)


def _run_rules(context, rules=None):
    from repro.analysis.rules import all_rules

    report = AnalysisReport(class_name=context.class_name,
                           filename=context.filename)
    for rule in rules if rules is not None else all_rules():
        for finding in rule.check(context):
            report.add(finding)
    return report.sort()


# -- live-class analysis -------------------------------------------------------


def analyze_computation(cls, rules=None):
    """Statically analyze a ``Computation`` subclass; returns a report.

    Inherited methods are included (``BuggyRandomWalk`` is judged with the
    ``RandomWalk.compute`` it actually runs). Classes whose source cannot
    be located (built in ``exec``/REPL contexts) come back with
    ``analyzed=False`` and no findings — the analyzer never blocks a run it
    cannot see.
    """
    if rules is None and cls in _REPORT_CACHE:
        return _REPORT_CACHE[cls]

    from repro.pregel.computation import Computation

    mro_class_defs = []
    constants = {}
    filename = "<unknown>"
    try:
        chain = [
            klass
            for klass in cls.__mro__
            if klass not in (Computation, object)
            and issubclass(klass, Computation)
        ]
        for klass in reversed(chain):  # base first, derived overrides last
            source, start_line = inspect.getsourcelines(klass)
            tree = ast.parse(textwrap.dedent("".join(source)))
            class_def = tree.body[0]
            if not isinstance(class_def, ast.ClassDef):
                continue
            ast.increment_lineno(class_def, start_line - 1)
            klass_file = inspect.getsourcefile(klass) or "<unknown>"
            filename = klass_file if klass is cls else filename
            module = sys.modules.get(klass.__module__)
            if module is not None:
                _collect_constants(_module_tree(module), constants)
            mro_class_defs.append((class_def, klass.__name__))
        if filename == "<unknown>" and mro_class_defs:
            filename = inspect.getsourcefile(cls) or "<unknown>"
    except (OSError, TypeError, SyntaxError):
        return AnalysisReport(class_name=getattr(cls, "__name__", repr(cls)),
                              analyzed=False)
    if not mro_class_defs:
        return AnalysisReport(class_name=cls.__name__, analyzed=False)

    context = _build_context(cls.__name__, mro_class_defs, constants, filename)
    report = _run_rules(context, rules)
    if rules is None:
        _REPORT_CACHE[cls] = report
    return report


_MODULE_TREE_CACHE = {}


def _module_tree(module):
    name = module.__name__
    if name not in _MODULE_TREE_CACHE:
        try:
            _MODULE_TREE_CACHE[name] = ast.parse(inspect.getsource(module))
        except (OSError, TypeError, SyntaxError):
            _MODULE_TREE_CACHE[name] = ast.parse("")
    return _MODULE_TREE_CACHE[name]


# -- source-level analysis -----------------------------------------------------

#: Base names that mark a class as a vertex program when analyzing raw
#: source: the framework base itself plus the shipped algorithm classes
#: users commonly extend.
_KNOWN_COMPUTATION_BASES = {"Computation"}


def _computation_class_names(tree):
    """Names of classes in ``tree`` that (transitively) look like vertex
    programs — they extend ``Computation`` or another such class."""
    class_defs = _class_defs_from_module(tree)
    known = set(_KNOWN_COMPUTATION_BASES)
    try:
        import repro.algorithms as _algorithms
        from repro.pregel.computation import Computation

        for name in dir(_algorithms):
            obj = getattr(_algorithms, name)
            if isinstance(obj, type) and issubclass(obj, Computation):
                known.add(name)
    except ImportError:  # pragma: no cover - algorithms always importable here
        pass

    found = set()
    changed = True
    while changed:
        changed = False
        for name, class_def in class_defs.items():
            if name in found:
                continue
            for base in class_def.bases:
                base_name = base.attr if isinstance(base, ast.Attribute) else (
                    base.id if isinstance(base, ast.Name) else None
                )
                if base_name in known or base_name in found:
                    found.add(name)
                    changed = True
                    break
    return [name for name in class_defs if name in found], class_defs


def analyze_module_source(source, filename="<string>", rules=None):
    """Analyze every vertex-program class in ``source`` without importing.

    Returns ``[AnalysisReport, ...]``, one per detected class. Inheritance
    is followed *within the module*; bases defined elsewhere contribute
    nothing (their methods are not visible in this source).
    """
    tree = ast.parse(source, filename=filename)
    constants_base = _collect_constants(tree, {})
    names, class_defs = _computation_class_names(tree)

    reports = []
    for name in names:
        chain = []
        cursor = class_defs[name]
        while cursor is not None:
            chain.append(cursor)
            parent = None
            for base in cursor.bases:
                if isinstance(base, ast.Name) and base.id in class_defs:
                    parent = class_defs[base.id]
                    break
            cursor = parent
        mro_class_defs = [(cd, cd.name) for cd in reversed(chain)]
        context = _build_context(
            name, mro_class_defs, dict(constants_base), filename
        )
        reports.append(_run_rules(context, rules))
    return reports


def analyze_path(path, rules=None):
    """Analyze a ``.py`` file on disk (see :func:`analyze_module_source`)."""
    with open(path, "r", encoding="utf-8") as handle:
        return analyze_module_source(handle.read(), filename=str(path),
                                     rules=rules)
