"""The graft-lint rule engine.

Given a ``Computation`` subclass (or raw module source), the engine locates
the class's AST — following the MRO so inherited ``compute`` methods are
analyzed with the subclass's overrides in effect — builds one
:class:`~repro.analysis.scopes.MethodScope` per effective method, resolves
module- and class-level string constants (aggregator names are usually
module constants), and runs every registered rule over the resulting
:class:`ClassContext`. Rules emit :class:`~repro.analysis.findings.Finding`
objects; the engine returns them as a sorted
:class:`~repro.analysis.findings.AnalysisReport`.

Entry points:

- :func:`analyze_computation` — a live class; used by the ``repro lint``
  CLI on ``module:Class`` targets and by ``debug_run``'s pre-flight check.
- :func:`analyze_combiner` — a live ``MessageCombiner`` subclass (GL015).
- :func:`analyze_module_source` — raw source text, no import executed;
  used to lint example scripts (importing them would *run* them).

``dataflow=True`` (the default) additionally builds per-method CFGs and
runs the dataflow rule pack (GL009–GL015); ``dataflow=False`` restores
the cheap pattern-matching rules only.
"""

import ast
import hashlib
import inspect
import os
import sys
import textwrap
import threading
from collections import OrderedDict

from repro.analysis.findings import AnalysisReport

#: Analysis reports keyed on (kind, qualified name, source hash, dataflow).
#: Hashing the actual MRO sources means a class redefined with new code
#: (notebooks, exec'd test fixtures) never sees a stale report; the LRU
#: bound keeps long-lived sessions from accumulating every class ever
#: linted. The cache is process-global shared mutable state reachable
#: from the threads backend's pre-flight lint (the very hazard GL019
#: flags in user code), so every access holds ``_REPORT_CACHE_LOCK`` —
#: ``move_to_end`` on an ``OrderedDict`` is not atomic.
_REPORT_CACHE = OrderedDict()
_REPORT_CACHE_MAX = 128
_REPORT_CACHE_LOCK = threading.Lock()


#: Sentinel for lazily-built, possibly-None context attributes.
_UNSET = object()


class ClassContext:
    """Everything the rules see about one analyzed class."""

    def __init__(self, class_name, filename, scopes, constants,
                 kind="computation", dataflow_enabled=True,
                 module_functions=None):
        self.class_name = class_name
        self.filename = filename
        #: Effective methods after MRO resolution: name -> MethodScope.
        self.scopes = scopes
        #: Resolved string/number constants visible to the class: a merge
        #: of module-level and class-level simple assignments, name -> value.
        self.constants = constants
        #: Module-level helper functions visible to the class:
        #: name -> (ast.FunctionDef, filename). The interprocedural layer
        #: resolves bare-name calls against these.
        self.module_functions = module_functions or {}
        #: "computation" or "combiner" — rules declare which kind they
        #: apply to via a module-level ``APPLIES_TO``.
        self.kind = kind
        self.dataflow_enabled = dataflow_enabled
        self._dataflow = {}
        self._interproc = _UNSET
        self._protocol = _UNSET
        #: scope name -> exception, for dataflow passes that failed. The
        #: analyzer degrades to pattern rules rather than blocking a run.
        self.dataflow_errors = {}

    def scope(self, name):
        return self.scopes.get(name)

    def iter_scopes(self, include_init=False):
        for name, scope in self.scopes.items():
            if name == "__init__" and not include_init:
                continue
            yield scope

    def dataflow(self, scope):
        """The :class:`MethodDataflow` for one scope, or None.

        None means dataflow is disabled for this analysis or the pass
        failed on this method (recorded in :attr:`dataflow_errors`).
        Rules treat None as "no information" and stay silent.
        """
        if not self.dataflow_enabled or scope is None:
            return None
        key = id(scope)
        if key not in self._dataflow:
            from repro.analysis.dataflow import MethodDataflow

            try:
                self._dataflow[key] = MethodDataflow(
                    scope, interproc=self.interproc
                )
            except Exception as exc:  # degrade, never block
                self._dataflow[key] = None
                self.dataflow_errors[scope.name] = exc
        return self._dataflow[key]

    @property
    def interproc(self):
        """The class's :class:`~repro.analysis.interproc.Interprocedural`
        bundle (call graph + callee summaries), or None on failure."""
        if self._interproc is _UNSET:
            from repro.analysis.interproc import Interprocedural

            try:
                self._interproc = Interprocedural(self)
            except Exception as exc:  # degrade, never block
                self._interproc = None
                self.dataflow_errors["<interproc>"] = exc
        return self._interproc

    @property
    def protocol(self):
        """The class's message-protocol table
        (:class:`~repro.analysis.protocol.ProtocolTable`), or None."""
        if self._protocol is _UNSET:
            from repro.analysis.protocol import ProtocolTable

            try:
                self._protocol = ProtocolTable(self)
            except Exception as exc:  # degrade, never block
                self._protocol = None
                self.dataflow_errors["<protocol>"] = exc
        return self._protocol

    def helper_source_text(self):
        """Source of module helpers the class can call (cache-key input)."""
        interproc = self.interproc
        if interproc is None:
            return ""
        try:
            return interproc.helper_source_text()
        except Exception:
            return ""

    def resolve_constant(self, node):
        """The literal value behind an expression, or None if dynamic.

        Handles ``"phase"`` (a constant) and ``PHASE_AGG`` (a name bound to
        a constant at module or class level) — the two ways aggregator
        names are written in practice.
        """
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            return self.constants.get(node.id)
        return None


def _collect_constants(tree, into):
    """Record simple ``NAME = <literal>`` assignments from a body."""
    for node in tree.body:
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Constant):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    into[target.id] = node.value.value
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.value, ast.Constant
        ):
            if isinstance(node.target, ast.Name):
                into[node.target.id] = node.value.value
    return into


def _class_defs_from_module(tree):
    """Every ClassDef in ``tree``, including ones nested in classes,
    functions, and conditional blocks.

    Breadth-first, so on a name collision the shallower (top-level)
    definition wins — matching what an importer of the module would see.
    """
    defs = {}
    queue = list(tree.body)
    while queue:
        node = queue.pop(0)
        if isinstance(node, ast.ClassDef):
            defs.setdefault(node.name, node)
        for attr in ("body", "orelse", "finalbody"):
            queue.extend(getattr(node, attr, None) or [])
        for handler in getattr(node, "handlers", None) or []:
            queue.extend(handler.body)
    return defs


def _build_context(class_name, mro_class_defs, constants, filename,
                   kind="computation", dataflow=True, module_functions=None):
    """Assemble a :class:`ClassContext` from base-to-derived class defs.

    ``mro_class_defs`` is ``[(class_def, defining_name), ...]`` ordered
    base first, so later (more derived) definitions override earlier ones —
    exactly Python's attribute resolution.
    """
    from repro.analysis.scopes import build_method_scope

    method_names = set()
    for class_def, _name in mro_class_defs:
        for node in class_def.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method_names.add(node.name)
        _collect_constants(class_def, constants)

    scopes = {}
    for class_def, defining_name in mro_class_defs:
        for node in class_def.body:
            if isinstance(node, ast.FunctionDef):
                scopes[node.name] = build_method_scope(
                    node, defining_name, filename, method_names
                )
    return ClassContext(class_name, filename, scopes, constants,
                        kind=kind, dataflow_enabled=dataflow,
                        module_functions=module_functions)


def _module_function_defs(tree, filename, into=None):
    """Record top-level ``def``s from a module tree: name -> (def, file)."""
    funcs = into if into is not None else {}
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            funcs[node.name] = (node, filename)
    return funcs


#: Dataflow rules that *upgrade* a pattern rule: when the upgrading rule
#: fires, the pattern rule's finding on the same evidence is dropped —
#: GL013 proves the overflow GL007 only suspects (same line), GL014 proves
#: the no-halt-path GL005 only suspects (same class).
_LINE_SUPERSEDES = {"GL013": "GL007", "GL024": "GL006"}
_CLASS_SUPERSEDES = {"GL014": "GL005"}


def _apply_supersedes(findings):
    upgraded_lines = {
        (_LINE_SUPERSEDES[f.rule_id], f.line)
        for f in findings
        if f.rule_id in _LINE_SUPERSEDES
    }
    upgraded_rules = {
        _CLASS_SUPERSEDES[f.rule_id]
        for f in findings
        if f.rule_id in _CLASS_SUPERSEDES
    }
    return [
        f
        for f in findings
        if f.rule_id not in upgraded_rules
        and (f.rule_id, f.line) not in upgraded_lines
    ]


def _run_rules(context, rules=None):
    from repro.analysis.rules import all_rules

    report = AnalysisReport(class_name=context.class_name,
                           filename=context.filename)
    if rules is None:
        rules = all_rules(dataflow=context.dataflow_enabled)
    for rule in rules:
        if getattr(rule, "APPLIES_TO", "computation") != context.kind:
            continue
        for finding in rule.check(context):
            report.add(finding)
    report.findings[:] = _apply_supersedes(report.findings)
    return report.sort()


# -- live-class analysis -------------------------------------------------------


def _live_context(cls, base_class, kind, dataflow):
    """Build the ClassContext for a live class, or None when the source
    cannot be located (exec/REPL-built classes are skipped, not failed).

    Returns ``(context, source_text)`` — the concatenated MRO sources feed
    the report cache key.
    """
    mro_class_defs = []
    constants = {}
    module_functions = {}
    filename = "<unknown>"
    sources = []
    try:
        chain = [
            klass
            for klass in cls.__mro__
            if klass not in (base_class, object)
            and issubclass(klass, base_class)
        ]
        for klass in reversed(chain):  # base first, derived overrides last
            source, start_line = inspect.getsourcelines(klass)
            text = textwrap.dedent("".join(source))
            sources.append(text)
            tree = ast.parse(text)
            class_def = tree.body[0]
            if not isinstance(class_def, ast.ClassDef):
                continue
            ast.increment_lineno(class_def, start_line - 1)
            klass_file = inspect.getsourcefile(klass) or "<unknown>"
            filename = klass_file if klass is cls else filename
            module = sys.modules.get(klass.__module__)
            if module is not None:
                module_tree = _module_tree(module)
                _collect_constants(module_tree, constants)
                # Derived modules override base modules' helper names,
                # matching what a bare-name call in the derived class sees.
                _module_function_defs(module_tree, klass_file,
                                      into=module_functions)
            mro_class_defs.append((class_def, klass.__name__))
        if filename == "<unknown>" and mro_class_defs:
            filename = inspect.getsourcefile(cls) or "<unknown>"
    except (OSError, TypeError, SyntaxError):
        return None, ""
    if not mro_class_defs:
        return None, ""

    context = _build_context(cls.__name__, mro_class_defs, constants,
                             filename, kind=kind, dataflow=dataflow,
                             module_functions=module_functions)
    return context, "".join(sources)


def _analyze_live(cls, base_class, kind, rules, dataflow):
    context, source_text = _live_context(cls, base_class, kind, dataflow)
    if context is None:
        return AnalysisReport(class_name=getattr(cls, "__name__", repr(cls)),
                              analyzed=False)

    cache_key = None
    if rules is None:
        # The digest covers the MRO class sources *and* every module-level
        # helper the class can call: an edit to a called helper changes
        # the analysis result, so it must miss the cache.
        keyed_source = source_text + "\x00" + context.helper_source_text()
        digest = hashlib.sha1(keyed_source.encode("utf-8")).hexdigest()
        cache_key = (kind, cls.__module__, cls.__qualname__, digest, dataflow)
        with _REPORT_CACHE_LOCK:
            cached = _REPORT_CACHE.get(cache_key)
            if cached is not None:
                _REPORT_CACHE.move_to_end(cache_key)
                return cached

    report = _run_rules(context, rules)
    if cache_key is not None:
        with _REPORT_CACHE_LOCK:
            _REPORT_CACHE[cache_key] = report
            while len(_REPORT_CACHE) > _REPORT_CACHE_MAX:
                _REPORT_CACHE.popitem(last=False)
    return report


def analyze_computation(cls, rules=None, dataflow=True):
    """Statically analyze a ``Computation`` subclass; returns a report.

    Inherited methods are included (``BuggyRandomWalk`` is judged with the
    ``RandomWalk.compute`` it actually runs). Classes whose source cannot
    be located (built in ``exec``/REPL contexts) come back with
    ``analyzed=False`` and no findings — the analyzer never blocks a run it
    cannot see.
    """
    from repro.pregel.computation import Computation

    return _analyze_live(cls, Computation, "computation", rules, dataflow)


def analyze_combiner(cls, rules=None, dataflow=True):
    """Statically analyze a ``MessageCombiner`` subclass (GL015)."""
    from repro.pregel.combiners import MessageCombiner

    return _analyze_live(cls, MessageCombiner, "combiner", rules, dataflow)


def computation_context(cls, dataflow=True):
    """The :class:`ClassContext` for a live class, or None if sourceless.

    Exposed for ``repro lint --explain-cfg``, which renders CFGs and phase
    facts straight off the context's dataflow bundles.
    """
    from repro.pregel.computation import Computation

    context, _source = _live_context(cls, Computation, "computation", dataflow)
    return context


#: module name -> (file stamp, parsed tree). Stamped by (mtime_ns, size)
#: so an edited-and-reloaded module file is re-read instead of served
#: stale — the helper-hash half of the report-cache key depends on it.
_MODULE_TREE_CACHE = {}


def _module_tree(module):
    name = module.__name__
    path = getattr(module, "__file__", None)
    stamp = None
    if path:
        try:
            status = os.stat(path)
            stamp = (status.st_mtime_ns, status.st_size)
        except OSError:
            path = None
    cached = _MODULE_TREE_CACHE.get(name)
    if cached is not None and cached[0] == stamp:
        return cached[1]
    try:
        if path and path.endswith(".py"):
            with open(path, "r", encoding="utf-8") as handle:
                tree = ast.parse(handle.read())
        else:
            tree = ast.parse(inspect.getsource(module))
    except (OSError, TypeError, SyntaxError, ValueError):
        tree = ast.parse("")
    _MODULE_TREE_CACHE[name] = (stamp, tree)
    return tree


# -- source-level analysis -----------------------------------------------------

#: Base names that mark a class as a vertex program when analyzing raw
#: source: the framework base itself plus the shipped algorithm classes
#: users commonly extend.
_KNOWN_COMPUTATION_BASES = {"Computation"}

#: Base names that mark a class as a message combiner.
_KNOWN_COMBINER_BASES = {
    "MessageCombiner",
    "SumCombiner",
    "MinCombiner",
    "MaxCombiner",
}


def _transitive_subclass_names(class_defs, known):
    """Names in ``class_defs`` whose base chain reaches a ``known`` name."""
    found = set()
    changed = True
    while changed:
        changed = False
        for name, class_def in class_defs.items():
            if name in found:
                continue
            for base in class_def.bases:
                base_name = base.attr if isinstance(base, ast.Attribute) else (
                    base.id if isinstance(base, ast.Name) else None
                )
                if base_name in known or base_name in found:
                    found.add(name)
                    changed = True
                    break
    return [name for name in class_defs if name in found]


def _computation_class_names(tree):
    """Names of classes in ``tree`` that (transitively) look like vertex
    programs — they extend ``Computation`` or another such class."""
    class_defs = _class_defs_from_module(tree)
    known = set(_KNOWN_COMPUTATION_BASES)
    try:
        import repro.algorithms as _algorithms
        from repro.pregel.computation import Computation

        for name in dir(_algorithms):
            obj = getattr(_algorithms, name)
            if isinstance(obj, type) and issubclass(obj, Computation):
                known.add(name)
    except ImportError:  # pragma: no cover - algorithms always importable here
        pass

    return _transitive_subclass_names(class_defs, known), class_defs


def _source_context(name, class_defs, constants_base, filename, kind,
                    dataflow, module_functions=None):
    chain = []
    cursor = class_defs[name]
    while cursor is not None:
        chain.append(cursor)
        parent = None
        for base in cursor.bases:
            if isinstance(base, ast.Name) and base.id in class_defs:
                candidate = class_defs[base.id]
                if candidate not in chain:  # guard vs. base-name cycles
                    parent = candidate
                break
        cursor = parent
    mro_class_defs = [(cd, cd.name) for cd in reversed(chain)]
    return _build_context(
        name, mro_class_defs, dict(constants_base), filename,
        kind=kind, dataflow=dataflow,
        module_functions=dict(module_functions or {}),
    )


def contexts_from_module_source(source, filename="<string>", dataflow=True):
    """Build a :class:`ClassContext` per vertex-program / combiner class
    found in raw source, without importing it."""
    tree = ast.parse(source, filename=filename)
    constants_base = _collect_constants(tree, {})
    module_functions = _module_function_defs(tree, filename)
    comp_names, class_defs = _computation_class_names(tree)
    combiner_names = [
        name
        for name in _transitive_subclass_names(
            class_defs, set(_KNOWN_COMBINER_BASES)
        )
        if name not in comp_names
    ]

    contexts = []
    for name in comp_names:
        contexts.append(_source_context(
            name, class_defs, constants_base, filename, "computation",
            dataflow, module_functions=module_functions,
        ))
    for name in combiner_names:
        contexts.append(_source_context(
            name, class_defs, constants_base, filename, "combiner", dataflow,
            module_functions=module_functions,
        ))
    return contexts


def analyze_module_source(source, filename="<string>", rules=None,
                          dataflow=True):
    """Analyze every vertex-program class in ``source`` without importing.

    Returns ``[AnalysisReport, ...]``, one per detected class (combiner
    classes included, analyzed under the combiner rule pack). Inheritance
    is followed *within the module*; bases defined elsewhere contribute
    nothing (their methods are not visible in this source).
    """
    return [
        _run_rules(context, rules)
        for context in contexts_from_module_source(
            source, filename=filename, dataflow=dataflow
        )
    ]


def analyze_path(path, rules=None, dataflow=True):
    """Analyze a ``.py`` file on disk (see :func:`analyze_module_source`)."""
    with open(path, "r", encoding="utf-8") as handle:
        return analyze_module_source(handle.read(), filename=str(path),
                                     rules=rules, dataflow=dataflow)
