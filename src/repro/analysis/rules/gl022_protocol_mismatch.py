"""GL022: a payload shape the receiving phase cannot digest.

The protocol table (:mod:`repro.analysis.protocol`) knows every send's
payload kind (through helper summaries) and delivery interval, and every
receive's consumption pattern and superstep interval. When a delivery
lands inside a receive's window and the shapes contradict — a tuple
payload folded with ``sum``, a 2-tuple unpacked into three names, a
float subscripted — the receiving superstep raises.

The join is phase-aware: sending tuples in phase 0 and floats in phase 1
is fine as long as each phase's consumer matches; GL011 (which ignores
phases) stays conservative about exactly this pattern, while GL022 can
*prove* the mismatch because it intersects the intervals first. Proven
findings predict ``exception`` evidence.
"""

from repro.analysis.findings import ERROR, PROVEN, WARNING, Finding

RULE_ID = "GL022"
SEVERITY = ERROR
TITLE = "message payload mismatches its receiving phase's consumption"


def check(context):
    protocol = context.protocol
    if protocol is None:
        return
    seen = set()
    for conflict in protocol.conflicts():
        send, receive = conflict.send, conflict.receive
        key = (send.line, receive.line, conflict.reason)
        if key in seen:
            continue
        seen.add(key)
        scope = context.scopes.get(receive.method)
        via = f" (via {send.via})" if send.via else ""
        yield Finding(
            rule_id=RULE_ID,
            severity=ERROR if conflict.proven else WARNING,
            message=(
                f"the {send.describe_payload()} sent at line "
                f"{send.line}{via} is delivered at superstep in "
                f"{send.delivery!r}, where line {receive.line} "
                f"({receive.method}) {receive.describe()} — "
                f"{conflict.reason}"
                + (
                    f" ({conflict.exception})"
                    if conflict.proven else ""
                )
            ),
            class_name=context.class_name,
            method=receive.method,
            filename=scope.filename if scope is not None else context.filename,
            line=receive.line,
            hint=(
                "make the send and the receive agree on one payload shape "
                "per phase — or gate the consumption on the superstep the "
                "matching payload actually arrives in"
            ),
            confidence=PROVEN if conflict.proven else "likely",
            predicts="exception" if conflict.proven else "",
        )
