"""GL021: dataflow hazards that only appear through the call graph.

GL009 (use-before-def) runs per method, so a buggy fold moved into a
module-level helper used to vanish from the report. With the
interprocedural layer two new hazards become checkable:

- **use-before-def inside a reachable module helper** — the same
  reaching-definitions proof GL009 makes, run over the helper's own CFG.
  Parameters enter defined; a local read only the synthetic "undefined"
  definition reaches is a guaranteed ``UnboundLocalError`` the first
  time the vertex program calls the helper.
- **summary-propagated type conflict at a call site** — a callee whose
  every return is provably non-numeric (a tuple, a list, ``None`` from
  falling off the end) used directly in numeric arithmetic by the
  caller. The callee summary is context-insensitive, so the conflict
  holds for every call: a proven ``TypeError``.

Both variants predict ``exception`` evidence when proven.
"""

import ast

from repro.analysis.dataflow.reachdef import UNDEF
from repro.analysis.findings import ERROR, PROVEN, WARNING, Finding
from repro.analysis.scopes import dotted_name

RULE_ID = "GL021"
SEVERITY = ERROR
TITLE = "helper-propagated use-before-def or return-type conflict"

#: Return kinds that explode inside numeric arithmetic.
_NON_NUMERIC_RETURNS = {"tuple", "list", "str", "set", "dict", "none",
                        "bytes"}

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod,
              ast.Pow)


def check(context):
    interproc = context.interproc
    if interproc is None:
        return
    yield from _helper_use_before_def(context, interproc)
    yield from _return_type_conflicts(context, interproc)


def _helper_use_before_def(context, interproc):
    for name in sorted(interproc.reachable_helper_names()):
        scope = interproc.helper_scope(name)
        dataflow = interproc.helper_dataflow(name)
        if scope is None or dataflow is None:
            continue
        seen = set()
        for name_node, defs in dataflow.reaching.uses_with_states():
            if UNDEF not in defs:
                continue
            key = (name_node.id, name_node.lineno)
            if key in seen:
                continue
            seen.add(key)
            proven = defs == frozenset([UNDEF])
            if proven:
                message = (
                    f"helper `{name}` (called from "
                    f"`{context.class_name}`) reads `{name_node.id}` at "
                    f"line {name_node.lineno} but no assignment reaches it "
                    "on any path — the first call raises UnboundLocalError"
                )
            else:
                message = (
                    f"helper `{name}` (called from "
                    f"`{context.class_name}`) reads `{name_node.id}` at "
                    f"line {name_node.lineno} but some path reaches the "
                    "read without assigning it (bound only in one branch, "
                    "or only inside a loop that can run zero times)"
                )
            yield Finding(
                rule_id=RULE_ID,
                severity=ERROR if proven else WARNING,
                message=message,
                class_name=context.class_name,
                method=name,
                filename=scope.filename,
                line=name_node.lineno,
                hint=(
                    f"initialize `{name_node.id}` before the first read — "
                    "an empty message list is exactly the path that skips "
                    "the assignment"
                ),
                confidence=PROVEN if proven else "likely",
                predicts="exception" if proven else "",
            )


def _return_type_conflicts(context, interproc):
    reachable = interproc.reachable_scope_names()
    for scope in context.iter_scopes():
        if scope.name not in reachable:
            continue
        dataflow = context.dataflow(scope)
        parents = _parent_map(scope.node)
        seen = set()
        for call in scope.calls:
            key = interproc.resolve(scope, call)
            if key is None:
                continue
            summary = interproc.summary(key)
            if summary is None or not summary.complete:
                continue
            kind = summary.return_kind
            if kind not in _NON_NUMERIC_RETURNS:
                continue
            parent = parents.get(id(call.node))
            if not (
                isinstance(parent, ast.BinOp)
                and isinstance(parent.op, _ARITH_OPS)
            ):
                continue
            other = (
                parent.right if parent.left is call.node else parent.left
            )
            from repro.analysis.rules._typekinds import expr_kind

            other_kind = expr_kind(other, context)
            if other_kind is None and interproc is not None and isinstance(
                other, ast.Call
            ):
                other_kind = interproc.return_kind_for(
                    scope, other, dotted_name(other.func)
                )
            if other_kind != "number":
                continue
            dedupe = (scope.name, call.line, summary.describe())
            if dedupe in seen:
                continue
            seen.add(dedupe)
            returns = (
                "returns None on some path"
                if kind == "none"
                else f"always returns a {kind}"
            )
            reachable_site = (
                dataflow is None or dataflow.node_reachable(call.node)
            )
            yield Finding(
                rule_id=RULE_ID,
                severity=ERROR if reachable_site else WARNING,
                message=(
                    f"`{scope.name}` uses the result of "
                    f"{summary.describe()} in numeric arithmetic at line "
                    f"{call.line}, but the callee {returns} — this "
                    "expression raises TypeError when it runs"
                ),
                class_name=context.class_name,
                method=scope.name,
                filename=scope.filename,
                line=call.line,
                hint=(
                    f"make {summary.describe()} return a number on every "
                    "path, or unpack its result before doing arithmetic"
                ),
                confidence=PROVEN if reachable_site else "likely",
                predicts="exception" if reachable_site else "",
            )


def _parent_map(root):
    parents = {}
    for parent in ast.walk(root):
        for child in ast.iter_child_nodes(parent):
            parents[id(child)] = parent
    return parents
