"""GL009: a local read before any assignment can reach it.

Reaching definitions over the method CFG, with a synthetic "undefined"
definition entering at the function entry. A use reached *only* by that
definition is a guaranteed ``UnboundLocalError`` the first time the
statement executes — ``proven``. A use where the undefined definition
survives alongside real ones (the variable is bound only inside one
branch, or only inside a loop that may run zero times) is ``likely``:
it blows up exactly when the unlucky path runs — for a vertex program,
usually on the superstep where the message list comes up empty.
"""

from repro.analysis.dataflow.reachdef import UNDEF
from repro.analysis.findings import ERROR, PROVEN, WARNING, Finding

RULE_ID = "GL009"
SEVERITY = ERROR
TITLE = "local variable can be read before assignment"


def check(context):
    for scope in context.iter_scopes():
        dataflow = context.dataflow(scope)
        if dataflow is None:
            continue
        seen = set()
        for name_node, defs in dataflow.reaching.uses_with_states():
            if UNDEF not in defs:
                continue
            key = (scope.name, name_node.id, name_node.lineno)
            if key in seen:
                continue
            seen.add(key)
            proven = defs == frozenset([UNDEF])
            if proven:
                message = (
                    f"`{name_node.id}` is read at line {name_node.lineno} "
                    "but no assignment reaches it on any path — this "
                    "statement raises UnboundLocalError whenever it runs"
                )
                hint = (
                    f"assign `{name_node.id}` before this point (or delete "
                    "the dead read)"
                )
            else:
                message = (
                    f"`{name_node.id}` is read at line {name_node.lineno} "
                    "but some path reaches the read without assigning it "
                    "(bound only in one branch, or only inside a loop that "
                    "can run zero times)"
                )
                hint = (
                    f"initialize `{name_node.id}` before the branch/loop — "
                    "an empty message list on one superstep is exactly the "
                    "path that skips the assignment"
                )
            yield Finding(
                rule_id=RULE_ID,
                severity=ERROR if proven else WARNING,
                message=message,
                class_name=context.class_name,
                method=scope.name,
                filename=scope.filename,
                line=name_node.lineno,
                hint=hint,
                confidence=PROVEN if proven else "likely",
                predicts="exception" if proven else "",
            )
