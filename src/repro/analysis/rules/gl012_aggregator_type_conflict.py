"""GL012: one aggregator fed contributions of conflicting types.

An aggregator folds every contribution with one operator; feeding it a
number from one call site and a string from another dies inside the
master's fold, far from either call site. The rule resolves the
aggregator name at each ``ctx.aggregate(name, value)`` site (literal or
module/class constant) and flags names whose contribution kinds disagree.
"""

from repro.analysis.findings import WARNING, Finding
from repro.analysis.rules._typekinds import expr_kind

RULE_ID = "GL012"
SEVERITY = WARNING
TITLE = "aggregator contributions of conflicting types"


def check(context):
    by_name = {}  # aggregator name -> [(kind, line, method), ...]
    for scope in context.iter_scopes():
        for call in scope.ctx_calls("aggregate"):
            args = call.node.args
            if len(args) < 2:
                continue
            name = context.resolve_constant(args[0])
            if not isinstance(name, str):
                continue
            kind = expr_kind(args[1], context)
            if kind is not None:
                by_name.setdefault(name, []).append(
                    (kind, call.line, scope.name)
                )

    for name, sites in sorted(by_name.items()):
        kinds = sorted({kind for kind, _line, _method in sites})
        if len(kinds) < 2:
            continue
        detail = ", ".join(
            f"{kind} at line {line} ({method})"
            for kind, line, method in sorted(sites, key=lambda s: s[1])
        )
        first = min(sites, key=lambda site: site[1])
        yield Finding(
            rule_id=RULE_ID,
            severity=SEVERITY,
            message=(
                f"aggregator '{name}' receives contributions of "
                f"conflicting types: {detail}; the fold operator cannot "
                "combine them"
            ),
            class_name=context.class_name,
            method=first[2],
            filename=context.scope(first[2]).filename,
            line=first[1],
            hint=(
                f"make every `aggregate('{name}', ...)` contribute the "
                "same type, or split the traffic across two aggregators"
            ),
            predicts="exception",
        )
