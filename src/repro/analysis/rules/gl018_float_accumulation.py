"""GL018: float accumulation whose low bits depend on delivery order.

Float addition is commutative but *not associative*: summing the same
bag of floats in a different order changes the rounding, so
``sum(messages)`` over float payloads produces (slightly) different
values under different delivery schedules. On a convergence-checked
algorithm those low bits decide when vertices halt — runs stop being
byte-identical across backends, which is exactly the invariant the
canonical trace digest enforces.

All findings are ``likely`` (warning severity): payload types are a
runtime fact, so the rule only fires when it sees *float evidence* — a
float-literal accumulator init, a float literal in the fold expression,
or a float literal in the same statement as a ``sum(messages)`` call.
The stable-reduce idioms are exempt by construction: folding
``sorted(messages)`` or using ``math.fsum`` never matches (the rule
only recognizes direct folds of the raw message parameter).
"""

import ast

from repro.analysis.determinism import message_fold_sites
from repro.analysis.findings import LIKELY, WARNING, Finding
from repro.analysis.scopes import dotted_name, iter_statements

RULE_ID = "GL018"
SEVERITY = WARNING
TITLE = "float accumulation over messages is delivery-order sensitive"

_HINT = (
    "make the reduction order canonical: `sum(sorted(messages))` (or "
    "math.fsum) gives the same bits under every delivery order"
)


def check(context):
    for scope in context.iter_scopes():
        dataflow = context.dataflow(scope)
        seen_lines = set()
        for site in message_fold_sites(scope):
            if site.kind == "last_wins" or not site.escapes:
                continue
            if site.op not in ("+", "*") or not site.float_evidence:
                continue
            if dataflow is not None and not dataflow.node_reachable(
                site.loop.iter
            ):
                continue
            seen_lines.add(site.line)
            yield _finding(
                context, scope, site.line,
                message=(
                    f"`{site.acc} {site.op}= {site.alias}` accumulates "
                    "floats in delivery order — float addition is not "
                    "associative, so the low bits differ between "
                    "schedules and backends"
                ),
            )
        for line in _float_sum_lines(scope, dataflow):
            if line not in seen_lines:
                yield _finding(
                    context, scope, line,
                    message=(
                        "`sum(messages)` in a float expression folds the "
                        "bag in delivery order — float addition is not "
                        "associative, so permuted schedules change the "
                        "low bits of the result"
                    ),
                )


def _float_sum_lines(scope, dataflow):
    """Lines holding ``sum(<messages>)`` next to a float literal."""
    if scope.messages_name is None:
        return []
    lines = []
    for stmt in iter_statements(scope.node.body):
        sum_call = None
        has_float = False
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and dotted_name(node.func) == "sum"
                and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == scope.messages_name
            ):
                sum_call = node
            elif isinstance(node, ast.Constant) and isinstance(
                node.value, float
            ):
                has_float = True
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                has_float = True
        if sum_call is None or not has_float:
            continue
        if dataflow is not None and not dataflow.node_reachable(sum_call):
            continue
        if sum_call.lineno not in lines:
            lines.append(sum_call.lineno)
    return lines


def _finding(context, scope, line, message):
    return Finding(
        rule_id=RULE_ID,
        severity=WARNING,
        message=message,
        class_name=context.class_name,
        method=scope.name,
        filename=scope.filename,
        line=line,
        hint=_HINT,
        confidence=LIKELY,
        predicts="order_divergence",
    )
