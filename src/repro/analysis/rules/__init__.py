"""The graft-lint rule pack.

Each rule lives in its own module exposing ``RULE_ID``, ``SEVERITY``,
``TITLE``, and ``check(context) -> iterable[Finding]``. The catalog (with
before/after examples) is documented in ``docs/analysis.md``.

Summary:

========  ========  =====================================================
rule      severity  catches
========  ========  =====================================================
GL001     error     worker-local state smuggled through instance attrs
GL002     error     in-place mutation of a vertex value or message
GL003     error     unseeded randomness / wall-clock nondeterminism
GL004     warning   ``send_message`` reachable after ``vote_to_halt``
GL005     warning   no halt path and no superstep bound (may never end)
GL006     warning   aggregator read & written in the same ``compute``
GL007     warning   fixed-width counters that wrap silently (Scenario 4.2)
GL008     warning   non-strict min/max comparison admits ties (Scenario 4.1)
========  ========  =====================================================
"""

from repro.analysis.rules import (
    gl001_worker_local_state,
    gl002_inplace_mutation,
    gl003_unseeded_randomness,
    gl004_send_after_halt,
    gl005_no_halt_path,
    gl006_aggregator_read_write,
    gl007_fixed_width_overflow,
    gl008_nonstrict_tiebreak,
)

_RULE_MODULES = (
    gl001_worker_local_state,
    gl002_inplace_mutation,
    gl003_unseeded_randomness,
    gl004_send_after_halt,
    gl005_no_halt_path,
    gl006_aggregator_read_write,
    gl007_fixed_width_overflow,
    gl008_nonstrict_tiebreak,
)


def all_rules():
    """The registered rule modules, in rule-id order."""
    return _RULE_MODULES


def rule_catalog():
    """``{rule_id: (severity, title)}`` for docs and reporting."""
    return {
        module.RULE_ID: (module.SEVERITY, module.TITLE)
        for module in _RULE_MODULES
    }
