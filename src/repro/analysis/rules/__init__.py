"""The graft-lint rule pack.

Each rule lives in its own module exposing ``RULE_ID``, ``SEVERITY``,
``TITLE``, and ``check(context) -> iterable[Finding]``; rules that apply
to message combiners instead of vertex programs declare
``APPLIES_TO = "combiner"``. The catalog (with before/after examples) is
documented in ``docs/analysis.md``.

GL001–GL008 are pattern rules over method scopes. GL009–GL015 are the
dataflow pack: they consume the CFG / reaching-definitions / interval
analyses in :mod:`repro.analysis.dataflow` and can mark findings
``proven`` when the property holds on every path. GL016–GL020 are the
determinism pack (:mod:`repro.analysis.determinism`): order-sensitivity
hazards whose predictions the runtime permutation sanitizer
(``repro san``) confirms or refutes. GL021–GL025 are the
interprocedural pack: they consume the per-class call graph and callee
summaries (:mod:`repro.analysis.interproc`) and the message-protocol
table (:mod:`repro.analysis.protocol`).

Summary:

========  ========  =====================================================
rule      severity  catches
========  ========  =====================================================
GL001     error     worker-local state smuggled through instance attrs
GL002     error     in-place mutation of a vertex value or message
GL003     error     unseeded randomness / wall-clock nondeterminism
GL004     warning   ``send_message`` reachable after ``vote_to_halt``
GL005     warning   no halt path and no superstep bound (may never end)
GL006     warning   aggregator read & written in the same ``compute``
GL007     warning   fixed-width counters that wrap silently (Scenario 4.2)
GL008     warning   non-strict min/max comparison admits ties (Scenario 4.1)
GL009     error     local read before any assignment reaches it
GL010     warning   send whose delivery phase is never read (proven)
GL011     warning   message payloads of conflicting types
GL012     warning   aggregator contributions of conflicting types
GL013     error     fixed-width construction proven to wrap (upgrades GL007)
GL014     error     CFG-proven absence of a halt path (upgrades GL005)
GL015     error     statically non-commutative message combiner
GL016     error     non-commutative fold over the unordered message bag
GL017     warning   message-position / set-iteration order dependence
GL018     warning   float accumulation sensitive to delivery order
GL019     error     compute() mutates state shared across vertices
GL020     warning   nondeterminism sources GL003's module scan misses
GL021     error     use-before-def / type conflicts hidden in helpers
GL022     error     payload shape vs. receiving-phase consumption mismatch
GL023     error     delivery into a phase that never reads the inbox
GL024     warning   aggregator proven read-only-before-first-write
GL025     error     unbounded helper recursion / halt-window starvation
========  ========  =====================================================
"""

from repro.analysis.rules import (
    gl001_worker_local_state,
    gl002_inplace_mutation,
    gl003_unseeded_randomness,
    gl004_send_after_halt,
    gl005_no_halt_path,
    gl006_aggregator_read_write,
    gl007_fixed_width_overflow,
    gl008_nonstrict_tiebreak,
    gl009_use_before_def,
    gl010_dead_send,
    gl011_message_type_mismatch,
    gl012_aggregator_type_conflict,
    gl013_interval_overflow,
    gl014_proven_no_halt,
    gl015_noncommutative_combiner,
    gl016_noncommutative_fold,
    gl017_iteration_order,
    gl018_float_accumulation,
    gl019_shared_mutable_state,
    gl020_unseeded_sources,
    gl021_helper_dataflow,
    gl022_protocol_mismatch,
    gl023_phase_gap,
    gl024_aggregator_lifecycle,
    gl025_recursion_progression,
)

_RULE_MODULES = (
    gl001_worker_local_state,
    gl002_inplace_mutation,
    gl003_unseeded_randomness,
    gl004_send_after_halt,
    gl005_no_halt_path,
    gl006_aggregator_read_write,
    gl007_fixed_width_overflow,
    gl008_nonstrict_tiebreak,
)

#: The dataflow pack — needs per-method CFG/interval analyses. The
#: determinism pack (GL016–GL020) rides with it: its rules use interval
#: phase stamps and reachability when available.
_DATAFLOW_RULE_MODULES = (
    gl009_use_before_def,
    gl010_dead_send,
    gl011_message_type_mismatch,
    gl012_aggregator_type_conflict,
    gl013_interval_overflow,
    gl014_proven_no_halt,
    gl015_noncommutative_combiner,
    gl016_noncommutative_fold,
    gl017_iteration_order,
    gl018_float_accumulation,
    gl019_shared_mutable_state,
    gl020_unseeded_sources,
    gl021_helper_dataflow,
    gl022_protocol_mismatch,
    gl023_phase_gap,
    gl024_aggregator_lifecycle,
    gl025_recursion_progression,
)


def all_rules(dataflow=True):
    """The registered rule modules, in rule-id order.

    ``dataflow=False`` restricts to the cheap pattern rules (GL001–GL008).
    """
    if dataflow:
        return _RULE_MODULES + _DATAFLOW_RULE_MODULES
    return _RULE_MODULES


def dataflow_rules():
    """The dataflow + determinism + interprocedural packs (GL009–GL025)."""
    return _DATAFLOW_RULE_MODULES


def rule_catalog():
    """``{rule_id: (severity, title)}`` for docs and reporting."""
    return {
        module.RULE_ID: (module.SEVERITY, module.TITLE)
        for module in all_rules()
    }
