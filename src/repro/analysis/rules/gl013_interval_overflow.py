"""GL013: a fixed-width value built from an interval outside its range.

GL007 flags every ``Short16``/``Int32``/``Long64``/``Byte8`` construction
site as a conscious-decision checkpoint. This rule does the arithmetic:
the interval analysis evaluates the constructor argument at its exact
program point, and

- if the whole interval falls outside the representable range, the value
  wraps on *every* execution that reaches the site — ``proven``, error
  severity, and it supersedes GL007's generic warning on that line;
- if the interval is finite but pokes past either end, the value wraps on
  some executions — ``likely``, warning severity.

Arguments the analysis cannot bound (most runtime data) yield nothing;
GL007's blanket warning still covers those sites.
"""

from repro.analysis.dataflow.intervals import FIXED_WIDTH_RANGES, Interval
from repro.analysis.findings import ERROR, LIKELY, PROVEN, WARNING, Finding

RULE_ID = "GL013"
SEVERITY = ERROR
TITLE = "fixed-width construction proven (or likely) to wrap"


def check(context):
    for scope in context.iter_scopes(include_init=True):
        dataflow = context.dataflow(scope)
        if dataflow is None:
            continue
        sends = scope.ctx_calls("send_message", "send_message_to_all_neighbors")
        predicts = "message" if sends else "vertex_value"
        for call in scope.calls:
            type_name = call.target.rsplit(".", 1)[-1]
            if type_name not in FIXED_WIDTH_RANGES or not call.node.args:
                continue
            status, state = dataflow.site_state(call.node)
            if status != "ok":
                continue
            arg = dataflow.intervals.eval(call.node.args[0], state)
            lo, hi = FIXED_WIDTH_RANGES[type_name]
            width = Interval(lo, hi)
            if not arg.intersects(width):
                proven = True
            elif arg.is_bounded and (arg.hi > hi or arg.lo < lo):
                proven = False
            else:
                continue
            if proven:
                message = (
                    f"{type_name}({_short(arg)}) always wraps: the "
                    f"argument's proven range {arg!r} lies entirely "
                    f"outside [{lo}, {hi}] — every execution reaching "
                    f"line {call.line} produces a corrupted value"
                )
            else:
                message = (
                    f"{type_name}({_short(arg)}) can wrap: the argument "
                    f"ranges over {arg!r}, which exceeds [{lo}, {hi}] — "
                    "the paper's Scenario 4.2 silent-overflow bug"
                )
            yield Finding(
                rule_id=RULE_ID,
                severity=ERROR if proven else WARNING,
                message=message,
                class_name=context.class_name,
                method=scope.name,
                filename=scope.filename,
                line=call.line,
                hint=(
                    "use a plain (unbounded) int, or widen the type until "
                    "the proven range fits"
                ),
                confidence=PROVEN if proven else LIKELY,
                predicts=predicts if proven else "",
            )


def _short(interval):
    if interval.is_point:
        return repr(interval.lo)
    return "..."
