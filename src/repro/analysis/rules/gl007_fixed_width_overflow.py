"""GL007: fixed-width counters that wrap around silently (Scenario 4.2).

The paper's random-walk bug in one rule: counters and messages declared as
16-bit shorts "to optimize the memory and network I/O" wrap past 32767 and
a vertex sends a *negative* number of walkers. Python code using this
library's Java-semantics types (``Short16``, ``Int32``, ``Long64``) inside
a vertex program inherits exactly that failure mode — fine when the range
is provably sufficient, silent corruption when it is not. The rule flags
each construction site so the bound is a conscious decision.
"""

from repro.analysis.findings import WARNING, Finding

RULE_ID = "GL007"
SEVERITY = WARNING
TITLE = "fixed-width integer values wrap silently past their range"

_FIXED_WIDTH_TYPES = {
    "Short16": 15,
    "Int32": 31,
    "Long64": 63,
    "Byte8": 7,
}


def check(context):
    for scope in context.iter_scopes(include_init=True):
        for call in scope.calls:
            type_name = call.target.rsplit(".", 1)[-1]
            if type_name not in _FIXED_WIDTH_TYPES:
                continue
            bits = _FIXED_WIDTH_TYPES[type_name]
            yield Finding(
                rule_id=RULE_ID,
                severity=SEVERITY,
                message=(
                    f"`{scope.name}` builds a {type_name} (wraps past "
                    f"2^{bits} - 1 with Java semantics); a counter or "
                    "message exceeding the range silently turns negative — "
                    "the paper's Scenario 4.2 bug"
                ),
                class_name=context.class_name,
                method=scope.name,
                filename=scope.filename,
                line=call.line,
                hint=(
                    "use plain (unbounded) ints unless the range is proven, "
                    "and guard the run with a non-negative message "
                    "constraint (NonNegativeMessages) to catch wrap-around"
                ),
            )
