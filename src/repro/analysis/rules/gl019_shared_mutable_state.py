"""GL019: compute() writes state shared across vertices.

A module global, a class-level attribute, or a closed-over mutable
written from ``compute()`` is visible to *every* vertex — and under the
threads backend those writes race: two vertices in the same superstep
interleave arbitrarily, so the final state depends on scheduling, not
on the computation. Even under the serial backend the value depends on
vertex *iteration* order, which the Pregel model leaves undefined.

This is GL001's bigger sibling: GL001 catches per-*worker* state
smuggled through instance attributes; GL019 catches per-*job* state
shared across every vertex and worker.

Decided cases:

- ``global name`` + assignment, or ``nonlocal name`` + assignment —
  ``proven``, error severity, predicts ``replay_divergence``;
- assignment through the class object (``Cls.attr = ...``,
  ``type(self).attr = ...``, ``self.__class__.attr = ...``), including
  in-place mutation of class-level containers — ``proven``;
- in-place mutation (``.append``, ``[k] = v``, ...) of a name never
  bound in the method — a closed-over or module-level mutable —
  ``likely`` (the name might be an imported helper object rather than
  shared state).
"""

from repro.analysis.determinism import shared_state_writes
from repro.analysis.findings import ERROR, LIKELY, PROVEN, WARNING, Finding

RULE_ID = "GL019"
SEVERITY = ERROR
TITLE = "compute() mutates state shared across vertices"

_HINT = (
    "keep per-vertex state in ctx.value and cross-vertex reductions in "
    "aggregators; shared Python objects race under the threads backend "
    "and break replay everywhere"
)


def check(context):
    for scope in context.iter_scopes():
        for write in shared_state_writes(scope, context.class_name):
            if write.kind == "global":
                message = (
                    f"`{scope.name}` assigns the module global "
                    f"`{write.name}` — every vertex on every worker sees "
                    "the same binding, so the final value depends on "
                    "scheduling, not the computation"
                )
                confidence = PROVEN
            elif write.kind == "class-attr":
                message = (
                    f"`{scope.name}` writes the class-level attribute "
                    f"`{write.name}` — one object shared by every vertex "
                    "instance; a true data race under the threads backend"
                )
                confidence = PROVEN
            else:
                message = (
                    f"`{scope.name}` mutates `{write.name}`, which is "
                    "never bound in the method — if it is a closed-over "
                    "or module-level container, every vertex shares it "
                    "and writes race"
                )
                confidence = LIKELY
            yield Finding(
                rule_id=RULE_ID,
                severity=ERROR if confidence == PROVEN else WARNING,
                message=message,
                class_name=context.class_name,
                method=scope.name,
                filename=scope.filename,
                line=write.line,
                hint=_HINT,
                confidence=confidence,
                predicts="replay_divergence" if confidence == PROVEN else "",
            )
