"""GL002: in-place mutation of a vertex value or received message.

Graft records the *pre-compute* vertex value by reference before the user
code runs (the caveat documented in the instrumenter): a ``compute()`` that
mutates the value object in place — ``ctx.value.total += 1``,
``ctx.value.items.append(x)`` — corrupts the recorded pre-state, so the
capture shows the wrong "before" and replay verifies against garbage.
Mutating a received message (or the inbox list itself) is the same hazard
on the sender's recorded outcome. The fix is always the same: build a new
value and call ``ctx.set_value(new)``.
"""

import ast

from repro.analysis.findings import ERROR, Finding
from repro.analysis.scopes import root_path

RULE_ID = "GL002"
SEVERITY = ERROR
TITLE = "in-place mutation of a vertex value or message corrupts capture"

#: Method names that mutate their receiver in place.
_MUTATORS = {
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "add", "discard", "update", "setdefault", "popitem",
}


def _mutation_roots(scope):
    """Dotted prefixes that denote the vertex value or a message."""
    roots = set()
    if scope.ctx_name is not None:
        roots.add(f"{scope.ctx_name}.value")
    if scope.messages_name is not None:
        roots.add(scope.messages_name)
    roots.update(scope.value_aliases)
    roots.update(scope.message_aliases)
    return roots


def _hits_root(path, roots):
    if path is None:
        return None
    for root in roots:
        if path == root or path.startswith(root + "."):
            return root
    return None


def check(context):
    for scope in context.iter_scopes():
        roots = _mutation_roots(scope)
        if not roots:
            continue
        for node in ast.walk(scope.node):
            finding = _check_node(context, scope, roots, node)
            if finding is not None:
                yield finding


def _check_node(context, scope, roots, node):
    # ctx.value.attr = x / ctx.value[k] = x / del ctx.value[k], and the
    # same through aliases and messages.
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
        targets = node.targets if isinstance(node, ast.Assign) else (
            [node.target] if isinstance(node, ast.AugAssign) else node.targets
        )
        for target in targets:
            if isinstance(target, ast.Name):
                continue  # rebinding a local is not mutation
            root = _hits_root(root_path(target), roots)
            if root is not None:
                return _finding(context, scope, target.lineno, root,
                                "assigns into")
    # ctx.value.items.append(x) and friends.
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _MUTATORS:
            root = _hits_root(root_path(node.func.value), roots)
            if root is not None:
                return _finding(context, scope, node.lineno, root,
                                f"calls .{node.func.attr}() on")
    return None


def _finding(context, scope, line, root, verb):
    kind = (
        "the received messages"
        if root == scope.messages_name or root in scope.message_aliases
        else "the vertex value"
    )
    return Finding(
        rule_id=RULE_ID,
        severity=SEVERITY,
        message=(
            f"`{scope.name}` {verb} `{root}`, mutating {kind} in place; "
            "Graft records the pre-compute value by reference, so the "
            "captured context is corrupted and replay cannot be trusted"
        ),
        class_name=context.class_name,
        method=scope.name,
        filename=scope.filename,
        line=line,
        hint="treat values and messages as immutable: build a new object "
             "and apply it with ctx.set_value(new_value)",
    )
