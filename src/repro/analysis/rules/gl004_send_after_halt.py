"""GL004: ``send_message`` reachable after ``vote_to_halt`` on a path.

Voting to halt and then sending reads like "I am done" followed by more
work. Pregel does deliver the message (and it will re-activate the
target), but the pattern almost always means the author believed the halt
ends the method — the classic source of one-extra-superstep bugs. The
analysis is path-local: a halt that dominates a later send in the same
statement sequence (including sends nested in loops or branches below it)
is flagged; halts inside one branch do not taint the other.
"""

import ast

from repro.analysis.findings import WARNING, Finding

RULE_ID = "GL004"
SEVERITY = WARNING
TITLE = "message send reachable after vote_to_halt on the same path"

_SEND_NAMES = ("send_message", "send_message_to_all_neighbors")


def check(context):
    for scope in context.iter_scopes():
        if scope.ctx_name is None:
            continue
        yield from _scan_block(context, scope, scope.node.body, halted=False)


def _scan_block(context, scope, body, halted):
    """Linear scan of one statement block; returns findings generated.

    ``halted`` is True when every path into this block has already voted to
    halt. Branch bodies are scanned with the inherited flag; a halt inside
    a branch does not mark the code after the branch (the other arm may not
    have halted).
    """
    for stmt in body:
        if halted:
            for call, name in _calls_in(stmt, scope):
                if name in _SEND_NAMES:
                    yield Finding(
                        rule_id=RULE_ID,
                        severity=SEVERITY,
                        message=(
                            f"`{scope.name}` calls "
                            f"`{scope.ctx_name}.{name}()` after "
                            f"`{scope.ctx_name}.vote_to_halt()` on the same "
                            "path; the message still sends and will "
                            "re-activate its target next superstep"
                        ),
                        class_name=context.class_name,
                        method=scope.name,
                        filename=scope.filename,
                        line=call.lineno,
                        hint=(
                            "send first and halt last, or return right "
                            "after vote_to_halt() if the method is done"
                        ),
                    )
                    halted = False  # one finding per halt..send run
                    break
        if _is_halt_stmt(stmt, scope):
            halted = True
        elif isinstance(stmt, ast.Return):
            halted = False
        elif isinstance(stmt, (ast.If, ast.For, ast.While, ast.Try, ast.With)):
            for block in _sub_blocks(stmt):
                yield from _scan_block(context, scope, block, halted)


def _sub_blocks(stmt):
    for attr in ("body", "orelse", "finalbody"):
        block = getattr(stmt, attr, None)
        if block:
            yield block
    for handler in getattr(stmt, "handlers", []) or []:
        yield handler.body


def _is_halt_stmt(stmt, scope):
    """True for a bare ``ctx.vote_to_halt()`` statement."""
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Attribute)
        and stmt.value.func.attr == "vote_to_halt"
        and isinstance(stmt.value.func.value, ast.Name)
        and stmt.value.func.value.id == scope.ctx_name
    )


def _calls_in(stmt, scope):
    """``(call_node, method_name)`` for ctx-method calls anywhere in stmt."""
    for node in ast.walk(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == scope.ctx_name
        ):
            yield node, node.func.attr
