"""GL017: semantics that depend on message position or set order.

The engine canonicalizes inbox order (stable sort by source id), which
makes ``messages[0]`` *reproducible* — but still meaningless: the Pregel
model never promises which message arrives first, and under a permuted
delivery schedule (``repro san``) or on a real cluster the "first"
message is a different one. Positional access to ``messages``
(indexing, ``enumerate``, ``next(iter(...))``) and iteration over
unordered ``set`` containers are ``likely`` order-sensitivity hazards.

All findings here are ``likely`` (warning severity): positional access
only diverges when multiple distinct messages actually arrive, which is
a runtime fact. The sanitizer settles it — that is the point of the
static/runtime split.
"""

from repro.analysis.determinism import messages_order_uses
from repro.analysis.findings import LIKELY, WARNING, Finding

RULE_ID = "GL017"
SEVERITY = WARNING
TITLE = "computation depends on message position or set iteration order"

_MESSAGES = {
    "subscript": (
        "indexes the message bag ({detail}) — the Pregel model does not "
        "define which message occupies a position, so the selected value "
        "changes with delivery order"
    ),
    "enumerate": (
        "enumerates the message bag — positions are an artifact of "
        "delivery order, not part of the computation's input"
    ),
    "next": (
        "takes the first message via {detail} — which message is first "
        "depends on delivery order"
    ),
    "set-iteration": (
        "iterates over an unordered set — iteration order varies across "
        "interpreter runs (hash randomization), so any order-dependent "
        "effect in the loop body is nondeterministic"
    ),
}

_HINTS = {
    "subscript": (
        "select messages by value (min/max/sorted) instead of by position"
    ),
    "enumerate": (
        "drop the index, or sort the messages first if positions must "
        "be meaningful"
    ),
    "next": "use min()/max() to pick a message by value",
    "set-iteration": (
        "iterate `sorted(the_set)` when the loop body's effects depend "
        "on order"
    ),
}


def check(context):
    for scope in context.iter_scopes():
        dataflow = context.dataflow(scope)
        for use in messages_order_uses(scope):
            if dataflow is not None and not dataflow.node_reachable(use.node):
                continue
            template = _MESSAGES[use.kind]
            yield Finding(
                rule_id=RULE_ID,
                severity=WARNING,
                message=(
                    f"`{scope.name}` "
                    + template.format(detail=use.detail or "messages[...]")
                ),
                class_name=context.class_name,
                method=scope.name,
                filename=scope.filename,
                line=use.line,
                hint=_HINTS[use.kind],
                confidence=LIKELY,
                predicts="order_divergence",
            )
