"""Shallow static type kinds for payload/contribution expressions.

GL011/GL012 only need to tell *families* apart — a number vs. a string
vs. a container — so the inference is deliberately coarse: literals,
well-known constructors, and module constants resolve to a kind string;
everything dynamic resolves to None ("unknown"), which never conflicts.
"""

import ast

#: Call targets whose result is numeric.
_NUMERIC_CALLS = {
    "int", "float", "abs", "round", "len", "sum", "min", "max", "pow",
    "Short16", "Int32", "Long64", "Byte8",
    "superstep", "out_degree", "num_vertices", "num_edges", "random",
    "aggregated_value",
}

_CONSTRUCTOR_KINDS = {
    "str": "str",
    "tuple": "tuple",
    "list": "list",
    "dict": "dict",
    "set": "set",
    "bool": "number",
    "bytes": "bytes",
}


def value_kind(value):
    """The kind of a resolved Python constant."""
    if isinstance(value, bool):
        return "number"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "str"
    if isinstance(value, bytes):
        return "bytes"
    if value is None:
        return "none"
    if isinstance(value, tuple):
        return "tuple"
    return None


def expr_kind(node, context=None):
    """The kind of an expression, or None when it cannot be pinned down.

    ``context`` (a ClassContext) resolves module/class constants by name.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant):
        return value_kind(node.value)
    if isinstance(node, (ast.JoinedStr, ast.FormattedValue)):
        return "str"
    if isinstance(node, ast.List):
        return "list"
    if isinstance(node, ast.Tuple):
        return "tuple"
    if isinstance(node, ast.Dict):
        return "dict"
    if isinstance(node, ast.Set):
        return "set"
    if isinstance(node, ast.UnaryOp):
        if isinstance(node.op, (ast.USub, ast.UAdd)):
            return expr_kind(node.operand, context)
        if isinstance(node.op, ast.Not):
            return "number"
        return None
    if isinstance(node, ast.BinOp):
        left = expr_kind(node.left, context)
        right = expr_kind(node.right, context)
        if left == "number" and right == "number":
            return "number"
        return None  # str + str, seq * n, ... stay unknown rather than wrong
    if isinstance(node, ast.IfExp):
        body = expr_kind(node.body, context)
        orelse = expr_kind(node.orelse, context)
        return body if body == orelse else None
    if isinstance(node, ast.Compare):
        return "number"
    if isinstance(node, ast.Call):
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name in _NUMERIC_CALLS:
            return "number"
        if name in _CONSTRUCTOR_KINDS:
            return _CONSTRUCTOR_KINDS[name]
        return None
    if isinstance(node, ast.Name) and context is not None:
        value = context.resolve_constant(node)
        if value is not None:
            return value_kind(value)
    return None
