"""GL023: a delivery landing in a phase that never reads the inbox.

GL010 catches sends whose delivery misses the read window *entirely*.
This rule catches the subtler off-by-one: the program does read messages
both before and after the delivery superstep, but not *at* it — e.g.
phase 1 relays a value that arrives in phase 2, while the consumer only
looks at the inbox in phases 1 and 3. Pregel silently discards an
unread inbox at the superstep barrier, so the payload is lost and the
consuming phase computes from defaults — wrong values rather than a
crash, which is why the finding predicts ``vertex_value`` evidence (a
value constraint catches the default leaking into the vertex state).

Proven: the delivery interval intersects the hull of the read intervals
(so GL010 stays silent) but intersects no individual read interval.
Interval stamps are over-approximations, so an empty intersection
against *every* read is a proof the delivery superstep never consumes.
"""

from repro.analysis.findings import ERROR, PROVEN, Finding

RULE_ID = "GL023"
SEVERITY = ERROR
TITLE = "message delivered into a phase that never reads the inbox"


def check(context):
    protocol = context.protocol
    if protocol is None:
        return
    for gap in protocol.phase_gaps():
        send = gap.send
        scope = context.scopes.get(send.method)
        via = f" (via {send.via})" if send.via else ""
        yield Finding(
            rule_id=RULE_ID,
            severity=SEVERITY,
            message=(
                f"the message sent at line {send.line}{via} is delivered "
                f"at superstep in {send.delivery!r} — inside the program's "
                f"read window {gap.read_hull!r}, but no inbox read "
                "executes in that phase; the barrier discards the payload "
                "and the next reading phase computes from defaults"
            ),
            class_name=context.class_name,
            method=send.method,
            filename=scope.filename if scope is not None else context.filename,
            line=send.line,
            hint=(
                "shift the send (or the phase guard on the read) by one "
                "superstep so the delivery lands in a phase that consumes "
                "it — or add a relay read in the gap phase"
            ),
            confidence=PROVEN,
            predicts="vertex_value",
        )
