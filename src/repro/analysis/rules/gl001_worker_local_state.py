"""GL001: worker-local state smuggled through instance attributes.

One ``Computation`` instance exists per *worker*, not per vertex, so an
instance attribute written during ``compute`` or a superstep hook and read
back in ``compute`` is shared, partition-dependent scratch space. It is
invisible to Graft's capture (the paper's Section 7 limitation): replay
rebuilds the context but not the attribute, so ``verify_run_fidelity``
diverges — and results silently depend on worker count and vertex order.

``__init__`` is exempt: ``self.steps = steps`` is how configuration
arrives, and configuration never changes during a run.
"""

from repro.analysis.findings import ERROR, Finding

RULE_ID = "GL001"
SEVERITY = ERROR
TITLE = "worker-local instance-attribute state breaks capture and replay"

#: Where a write constitutes run-time state (vs. construction-time config).
_STATEFUL_METHODS = ("compute", "pre_superstep", "post_superstep")


def check(context):
    written = {}   # attr -> (method_name, line) of first run-time write
    for name in _STATEFUL_METHODS:
        scope = context.scope(name)
        if scope is None:
            continue
        for attr, lines in scope.attr_writes.items():
            written.setdefault(attr, (scope, min(lines)))

    # Helper methods are reachable from compute; writes there count too.
    for scope in context.iter_scopes():
        if scope.name in _STATEFUL_METHODS or scope.name == "__init__":
            continue
        for attr, lines in scope.attr_writes.items():
            written.setdefault(attr, (scope, min(lines)))

    if not written:
        return

    for scope in context.iter_scopes():
        if scope.name == "__init__":
            continue
        for attr, lines in scope.attr_reads.items():
            if attr not in written:
                continue
            write_scope, write_line = written[attr]
            yield Finding(
                rule_id=RULE_ID,
                severity=SEVERITY,
                message=(
                    f"instance attribute `self.{attr}` is written at "
                    f"run time ({write_scope.name}:{write_line}) and read in "
                    f"`{scope.name}`; Computation instances are per-worker, "
                    "so this state is shared across vertices, invisible to "
                    "capture, and breaks exact replay"
                ),
                class_name=context.class_name,
                method=scope.name,
                filename=scope.filename,
                line=min(lines),
                hint=(
                    "keep per-vertex state in the vertex value "
                    "(ctx.set_value) and cross-vertex state in aggregators; "
                    "set configuration only in __init__"
                ),
            )
            break  # one finding per attribute-reading method is enough
