"""GL014: a CFG-proven absence of any halt path.

GL005 pattern-matches "no visible termination mechanism" and stays a
warning because it cannot see control flow. This rule can: with the CFG
and the superstep intervals it proves either that

- every ``vote_to_halt()`` call site in the class sits on a statically
  dead path (an unreachable block, or a branch the interval analysis
  proved never taken — ``if ctx.superstep < 0: ctx.vote_to_halt()``), or
- no halt site exists at all (and no aggregator can drive a master halt,
  and no superstep bound shapes the program).

Either way no execution ever reaches a halt: every vertex stays active
forever and the run terminates only by exhausting ``max_supersteps`` —
the finding predicts ``nontermination`` evidence and supersedes GL005.

With the interprocedural call graph a third dead-halt shape becomes
provable: a ``vote_to_halt`` that lives in a method no lifecycle entry
point ever calls (a leftover ``_finish`` helper). ``getattr(self, ...)``
dynamic dispatch and bare method references (callbacks) both count as
calls, so anything the analysis cannot resolve still counts as
reachable and a ``proven`` finding here stays sound: it never fires on
a program that can halt.
"""

from repro.analysis.findings import ERROR, PROVEN, Finding
from repro.analysis.rules.gl005_no_halt_path import _compares_superstep

RULE_ID = "GL014"
SEVERITY = ERROR
TITLE = "no execution can reach vote_to_halt (proven)"


def check(context):
    compute = context.scope("compute")
    if compute is None:
        return

    interproc = context.interproc
    called_methods = (
        interproc.reachable_scope_names() if interproc is not None else None
    )

    halt_sites = []  # (scope, call, note)
    superstep_bounded = False
    for scope in context.iter_scopes():
        if scope.calls_to("aggregate", "aggregated_value"):
            return  # a master computation can drive the halt
        if _compares_superstep(scope):
            superstep_bounded = True
        halts = scope.calls_to("vote_to_halt")
        if not halts:
            continue
        if (
            called_methods is not None
            and scope.name not in called_methods
        ):
            # The whole method is dead: no entry point ever calls it.
            halt_sites.extend(
                (scope, call, "never-called method") for call in halts
            )
            continue
        dataflow = context.dataflow(scope)
        if dataflow is None:
            return  # cannot prove anything about this method
        for call in halts:
            status, _state = dataflow.site_state(call.node)
            if status != "dead":
                return  # reachable (or unresolvable) halt: no proof
            halt_sites.append((scope, call, "dead branch"))

    if halt_sites:
        lines = ", ".join(
            f"line {call.line} ({scope.name}, {note})"
            for scope, call, note in halt_sites
        )
        message = (
            f"every vote_to_halt() in `{context.class_name}` sits on a "
            f"statically dead path ({lines}); no execution can ever halt "
            "a vertex, so the run only ends by exhausting max_supersteps"
        )
        hint = (
            "the guard around vote_to_halt() contradicts itself (check "
            "the superstep comparison), or the halting helper is never "
            "called from any lifecycle method"
        )
        anchor_scope, anchor_call, _note = halt_sites[0]
        line = anchor_call.line
        method = anchor_scope.name
        filename = anchor_scope.filename
    else:
        if superstep_bounded:
            return  # phase-shaped code without halts: GL005 territory
        message = (
            f"`{context.class_name}` never calls vote_to_halt() and "
            "exchanges no aggregator values: proven — every vertex stays "
            "active on every superstep and the run cannot converge"
        )
        hint = (
            "halt converged vertices with ctx.vote_to_halt(), or have a "
            "master computation halt the job through an aggregator"
        )
        line = compute.line
        method = "compute"
        filename = compute.filename

    yield Finding(
        rule_id=RULE_ID,
        severity=SEVERITY,
        message=message,
        class_name=context.class_name,
        method=method,
        filename=filename,
        line=line,
        hint=hint,
        confidence=PROVEN,
        predicts="nontermination",
    )
