"""GL010: a send whose payload can never be observed.

Messages sent in superstep ``s`` are delivered in ``s + 1``. The interval
analysis stamps every send and every read of the ``messages`` parameter
with the supersteps at which it can execute; a send whose shifted
delivery interval misses *every* read interval produces messages nobody
ever looks at. The finding is ``proven`` — the intervals over-approximate
both sides, so an empty intersection holds on every real execution.

Programs that never read ``messages`` at all are exempt: sending purely
to re-activate halted neighbors is a legitimate Pregel idiom, and the
never-reads case carries no phase contradiction to prove.
"""

from repro.analysis.dataflow.phases import delivery_interval, join_intervals
from repro.analysis.findings import PROVEN, WARNING, Finding

RULE_ID = "GL010"
SEVERITY = WARNING
TITLE = "message sent in a phase whose delivery is never read"


def check(context):
    scope = context.scope("compute")
    if scope is None:
        return
    dataflow = context.dataflow(scope)
    if dataflow is None:
        return
    phases = dataflow.phases
    if not phases.message_reads:
        return  # activation-only sends are legitimate
    read_hull = join_intervals(phases.read_intervals())

    for fact in phases.sends:
        if not fact.reachable:
            continue  # dead code; GL014/unreachable reporting covers it
        delivered = delivery_interval(fact.interval)
        if read_hull is not None and delivered.meet(read_hull) is not None:
            continue
        reads_at = (
            f"messages are only read at supersteps {read_hull!r}"
            if read_hull is not None
            else "every read of `messages` sits on a dead path"
        )
        yield Finding(
            rule_id=RULE_ID,
            severity=SEVERITY,
            message=(
                f"the send at line {fact.line} fires at supersteps "
                f"{fact.interval!r}, so its messages arrive at "
                f"{delivered!r} — but {reads_at}; the payload can never "
                "be observed"
            ),
            class_name=context.class_name,
            method=scope.name,
            filename=scope.filename,
            line=fact.line,
            hint=(
                "align the sending phase with the reading phase (off-by-"
                "one superstep guards are the usual culprit), or drop the "
                "send"
            ),
            confidence=PROVEN,
        )
