"""GL016: a non-commutative in-loop fold over the message bag.

``compute()`` receives its inbox as an unordered bag — the Pregel model
promises the *set* of messages, never their order. A loop that folds
them with a non-commutative operator (``-``, ``/``, string ``+``) or
that keeps whichever message happened to iterate *last* produces a
different vertex value under a different delivery order: the bug class
the runtime sanitizer (``repro san``) exists to confirm.

Decided cases:

- ``acc -= m`` / ``acc = acc / m`` (any proven non-commutative operator
  folding a message alias into an accumulator that escapes the loop) —
  ``proven``, error severity, predicts ``order_divergence``;
- ``acc += m`` with string evidence (a string-literal init or ``str()``
  in the fold) — concatenation is order-dependent — ``likely``;
- last-wins assignment ``acc = m`` that escapes the loop: unconditional
  — ``proven``; guarded by a non-strict comparison (``>=``/``<=`` — the
  classic tie-break bug, Scenario 4.1's unordered cousin) or any other
  guard — ``likely``. A *strict* comparison guard is the min/max idiom
  and stays silent.

The dataflow pack's interval analysis stamps each fold with its
superstep phase and suppresses folds on statically-dead paths.
"""

from repro.analysis.determinism import message_fold_sites
from repro.analysis.findings import ERROR, LIKELY, PROVEN, WARNING, Finding

RULE_ID = "GL016"
SEVERITY = ERROR
TITLE = "non-commutative fold over the unordered message bag"

_ORDER_HINT = (
    "fold messages with a commutative, associative reduction (sum, min, "
    "max) or sort them first (`for m in sorted(messages)`) so the result "
    "is independent of delivery order"
)


def check(context):
    for scope in context.iter_scopes():
        dataflow = context.dataflow(scope)
        for site in message_fold_sites(scope):
            if not site.escapes:
                continue
            if dataflow is not None and not dataflow.node_reachable(
                site.loop.iter
            ):
                continue
            phase = _phase_note(dataflow, site)
            finding = _classify(context, scope, site, phase)
            if finding is not None:
                yield finding


def _classify(context, scope, site, phase):
    if site.kind in ("augassign", "binop") and site.order_class == (
        "noncommutative"
    ):
        return _finding(
            context, scope, site,
            message=(
                f"`{site.acc} {site.op}= {site.alias}` folds the message "
                f"bag with `{site.op}`, which is not commutative — the "
                f"accumulated value depends on delivery order{phase}"
            ),
            confidence=PROVEN,
            severity=ERROR,
        )
    if (
        site.kind in ("augassign", "binop")
        and site.op == "+"
        and site.string_evidence
    ):
        return _finding(
            context, scope, site,
            message=(
                f"`{site.acc} += {site.alias}` looks like string "
                "concatenation over the message bag — concatenation is "
                f"order-dependent, so the result varies with delivery "
                f"order{phase}"
            ),
            confidence=LIKELY,
            severity=WARNING,
        )
    if site.kind == "last_wins":
        if site.guard is None:
            return _finding(
                context, scope, site,
                message=(
                    f"`{site.acc} = {site.alias}` inside the message loop "
                    "keeps only the *last* message — which message that is "
                    f"depends on delivery order{phase}"
                ),
                confidence=PROVEN,
                severity=ERROR,
            )
        if site.guard == "strict":
            return None   # min/max idiom: order-free
        qualifier = (
            "a non-strict comparison admits ties, and which tied message "
            "wins depends on delivery order"
            if site.guard == "nonstrict"
            else "whether the guard fires for the winning message depends "
            "on delivery order"
        )
        return _finding(
            context, scope, site,
            message=(
                f"guarded `{site.acc} = {site.alias}` in the message loop "
                f"is a last-wins update: {qualifier}{phase}"
            ),
            confidence=LIKELY,
            severity=WARNING,
        )
    return None


def _phase_note(dataflow, site):
    if dataflow is None:
        return ""
    interval = dataflow.superstep_at_node(site.loop.iter)
    if interval is None:
        return ""
    return f" (runs with superstep in {interval!r})"


def _finding(context, scope, site, message, confidence, severity):
    return Finding(
        rule_id=RULE_ID,
        severity=severity,
        message=message,
        class_name=context.class_name,
        method=scope.name,
        filename=scope.filename,
        line=site.line,
        hint=_ORDER_HINT,
        confidence=confidence,
        predicts="order_divergence" if confidence == PROVEN else "",
    )
