"""GL006: reading an aggregator the same ``compute`` writes.

Aggregator semantics are barrier-delayed: ``ctx.aggregate(name, x)``
contributes to the value visible *next* superstep, while
``ctx.aggregated_value(name)`` reads the merge from the *previous* one.
Code that does both with the same name in one ``compute`` usually expects
read-your-write semantics it will never get — the value read is one
superstep stale, which surfaces as off-by-one phase bugs that look
nondeterministic under different worker counts.
"""

from repro.analysis.findings import WARNING, Finding

RULE_ID = "GL006"
SEVERITY = WARNING
TITLE = "aggregator read and written in the same compute (stale read)"


def _aggregator_names(context, calls):
    """``{name: first_line}`` for resolvable aggregator-name arguments."""
    names = {}
    for call in calls:
        if not call.node.args:
            continue
        name = context.resolve_constant(call.node.args[0])
        if name is not None and name not in names:
            names[name] = call.line
    return names


def check(context):
    reads = {}
    writes = {}
    for scope in context.iter_scopes():
        for name, line in _aggregator_names(
            context, scope.ctx_calls("aggregated_value")
        ).items():
            reads.setdefault(name, (scope, line))
        for name, line in _aggregator_names(
            context, scope.ctx_calls("aggregate")
        ).items():
            writes.setdefault(name, (scope, line))

    for name in sorted(set(reads) & set(writes), key=repr):
        read_scope, read_line = reads[name]
        write_scope, write_line = writes[name]
        yield Finding(
            rule_id=RULE_ID,
            severity=SEVERITY,
            message=(
                f"aggregator {name!r} is read "
                f"({read_scope.name}:{read_line}) and written "
                f"({write_scope.name}:{write_line}) by the same vertex "
                "program; the read returns the previous superstep's merge, "
                "never this superstep's contributions"
            ),
            class_name=context.class_name,
            method=read_scope.name,
            filename=read_scope.filename,
            line=read_line,
            hint=(
                "split the read and the write across phases (a master "
                "computation switching a phase aggregator is the standard "
                "pattern), or accept the one-superstep delay explicitly"
            ),
        )
