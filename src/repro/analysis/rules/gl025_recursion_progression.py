"""GL025: unbounded helper recursion / missing phase progression.

Two ways a vertex program fails to make progress, both visible only
with the call graph:

- **Recursion.** A helper that (transitively) calls itself. Proven when
  the cycle is direct self-recursion whose call site executes on every
  path through the function — entering it once guarantees a
  ``RecursionError`` (predicts ``exception``). Guarded self-recursion
  and mutual cycles stay ``likely``: the summaries are truncated there,
  so downstream facts are incomplete and a human should look.
- **Halt-window starvation.** Every reachable ``vote_to_halt`` is
  confined to a bounded superstep window (``if ctx.superstep == 3:``),
  but some send keeps delivering messages past that window — re-waking
  vertices forever after the last superstep that could halt them, with
  no aggregator through which a master computation could end the job.
  The run only stops by exhausting ``max_supersteps`` (predicts
  ``nontermination``). Kept ``likely``: halting is per-vertex, and the
  analysis cannot prove every vertex misses the window.
"""

from repro.analysis.dataflow.intervals import POS_INF
from repro.analysis.dataflow.phases import join_intervals
from repro.analysis.findings import ERROR, PROVEN, WARNING, Finding
from repro.analysis.interproc import _ENTRY_METHODS

RULE_ID = "GL025"
SEVERITY = ERROR
TITLE = "unbounded helper recursion or halt-window starvation"


def check(context):
    interproc = context.interproc
    if interproc is None:
        return
    yield from _recursion(context, interproc)
    yield from _halt_starvation(context, interproc)


def _recursion(context, interproc):
    seen = set()
    for caller, callee, call, proven in interproc.recursion_sites():
        key = (caller, callee, call.line)
        if key in seen:
            continue
        seen.add(key)
        caller_name = _describe(caller)
        callee_name = _describe(callee)
        scope = interproc._scope_for(caller)
        if proven:
            message = (
                f"{caller_name} recurses unconditionally at line "
                f"{call.line}: the call executes on every path through the "
                "function, so entering it once raises RecursionError"
            )
        elif caller == callee:
            message = (
                f"{caller_name} recurses at line {call.line}; the analysis "
                "cannot bound the depth, and summary-based rules see a "
                "truncated view of its effects"
            )
        else:
            message = (
                f"{caller_name} and {callee_name} are mutually recursive "
                f"(cycle closed at line {call.line}); the analysis cannot "
                "bound the depth"
            )
        yield Finding(
            rule_id=RULE_ID,
            severity=ERROR if proven else WARNING,
            message=message,
            class_name=context.class_name,
            method=caller[1],
            filename=scope.filename if scope is not None else context.filename,
            line=call.line,
            hint=(
                "rewrite the helper as a loop, or add a base case that "
                "provably executes (graph traversals should ride the "
                "superstep loop, not the Python stack)"
            ),
            confidence=PROVEN if proven else "likely",
            predicts="exception" if proven else "",
        )


def _halt_starvation(context, interproc):
    halts = []
    sends = []
    for name, scope in context.scopes.items():
        if name not in _ENTRY_METHODS:
            continue
        if scope.calls_to("aggregate", "aggregated_value"):
            return  # a master computation can still end the job
        dataflow = context.dataflow(scope)
        if dataflow is None:
            return
        phases = dataflow.phases
        halts.extend(fact for fact in phases.halts if fact.reachable)
        sends.extend(fact for fact in phases.sends if fact.reachable)
    if not halts or not sends:
        return  # no halts at all is GL005/GL014 territory
    halt_hull = join_intervals([fact.interval for fact in halts])
    if halt_hull.hi == POS_INF:
        return  # some halt can fire arbitrarily late
    late_sends = [
        fact
        for fact in sends
        if fact.interval.shift(1).hi > halt_hull.hi
    ]
    if not late_sends:
        return
    compute = context.scope("compute")
    anchor = late_sends[0]
    send_lines = ", ".join(
        sorted({str(fact.line) for fact in late_sends}, key=int)
    )
    yield Finding(
        rule_id=RULE_ID,
        severity=WARNING,
        message=(
            f"every reachable vote_to_halt() is confined to supersteps in "
            f"{halt_hull!r}, but sends at line(s) {send_lines} deliver "
            "messages past that window — re-woken vertices can never halt "
            "again and no aggregator lets a master end the job; the run "
            "only stops by exhausting max_supersteps"
        ),
        class_name=context.class_name,
        method="compute",
        filename=(
            compute.filename if compute is not None else context.filename
        ),
        line=anchor.line,
        hint=(
            "halt in a phase the late deliveries can reach (e.g. an "
            "unconditional vote_to_halt() after the last working phase), "
            "or stop sending once the final phase begins"
        ),
        confidence="likely",
        predicts="nontermination",
    )


def _describe(key):
    kind, name = key
    return f"`self.{name}`" if kind == "method" else f"helper `{name}`"
