"""GL003: unseeded randomness or wall-clock reads inside a vertex program.

Graft replays a captured ``compute()`` bit-for-bit only because every
source of randomness is derived from ``(run_seed, vertex_id, superstep)``
— the context's seeded ``ctx.rng``. A call into the global ``random``
module (or ``uuid``, ``secrets``, ``os.urandom``, or the wall clock) is
outside that derivation: the original run and the replay draw different
numbers, replay fidelity is gone, and two "identical" runs diverge.
"""

from repro.analysis.findings import ERROR, Finding

RULE_ID = "GL003"
SEVERITY = ERROR
TITLE = "nondeterminism outside the seeded ctx.rng breaks exact replay"

#: module -> banned attributes (None = every attribute is a hazard).
_BANNED = {
    "random": None,
    "uuid": None,
    "secrets": None,
    "time": {
        "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
        "perf_counter_ns", "process_time", "process_time_ns", "clock",
    },
    "os": {"urandom", "getrandom"},
}

#: bare names that resolve to the banned modules' functions when imported
#: with ``from random import ...`` in user code.
_BANNED_BARE = {
    "random", "randrange", "randint", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "getrandbits", "uuid1", "uuid4",
    "token_bytes", "token_hex", "urandom", "time_ns",
}


def check(context):
    for scope in context.iter_scopes():
        for call in scope.calls:
            hazard = _hazard(call.target, scope)
            if hazard is not None:
                yield Finding(
                    rule_id=RULE_ID,
                    severity=SEVERITY,
                    message=(
                        f"`{scope.name}` calls `{call.target}()`: {hazard} "
                        "is outside the seeded per-(vertex, superstep) RNG, "
                        "so the captured run cannot be replayed exactly"
                    ),
                    class_name=context.class_name,
                    method=scope.name,
                    filename=scope.filename,
                    line=call.line,
                    hint=(
                        "draw randomness from ctx.rng (seeded from the run "
                        "seed, vertex id, and superstep) or "
                        "repro.common.rng.derive_rng; never read the clock "
                        "in compute()"
                    ),
                )


def _hazard(target, scope):
    parts = target.split(".")
    head = parts[0]
    # Calls through the context/self are fine (ctx.rng.choice, ctx.random).
    if head in (scope.ctx_name, scope.self_name):
        return None
    if head in _BANNED and len(parts) > 1:
        banned_attrs = _BANNED[head]
        if banned_attrs is None or parts[1] in banned_attrs:
            return f"the global `{head}` module"
    if len(parts) == 1 and head in _BANNED_BARE:
        return f"`{head}` (an unseeded stdlib function)"
    return None
