"""GL011: message payloads of conflicting types.

All messages for a vertex land in one inbox; a ``compute`` that sums them
cannot digest a stray string. The rule infers a shallow type kind for the
payload of every send site across the class (including helper methods)
and flags the class when two sites provably send different kinds —
numbers from one phase, strings from another is the classic copy-paste
phase bug. Sites whose payload kind cannot be pinned down never conflict.
"""

from repro.analysis.findings import WARNING, Finding
from repro.analysis.rules._typekinds import expr_kind

RULE_ID = "GL011"
SEVERITY = WARNING
TITLE = "message payloads of conflicting types"


def _payload(call):
    tail = call.target.rsplit(".", 1)[-1]
    args = call.node.args
    if tail == "send_message":
        return args[1] if len(args) > 1 else None
    return args[0] if args else None


def check(context):
    sites = []  # (kind, line, method)
    for scope in context.iter_scopes():
        for call in scope.ctx_calls(
            "send_message", "send_message_to_all_neighbors"
        ):
            kind = expr_kind(_payload(call), context)
            if kind is not None:
                sites.append((kind, call.line, scope.name))

    kinds = sorted({kind for kind, _line, _method in sites})
    if len(kinds) < 2:
        return

    by_kind = {
        kind: next(site for site in sites if site[0] == kind)
        for kind in kinds
    }
    detail = ", ".join(
        f"{kind} at line {line} ({method})"
        for kind, (_k, line, method) in sorted(by_kind.items())
    )
    first = min(sites, key=lambda site: site[1])
    yield Finding(
        rule_id=RULE_ID,
        severity=SEVERITY,
        message=(
            f"`{context.class_name}` sends message payloads of "
            f"conflicting types: {detail}; every vertex reads one shared "
            "inbox, so mixed kinds break any uniform fold over `messages`"
        ),
        class_name=context.class_name,
        method=first[2],
        filename=context.scope(first[2]).filename,
        line=first[1],
        hint=(
            "send one payload shape everywhere (wrap per-phase data in a "
            "tagged tuple if phases genuinely differ)"
        ),
        predicts="exception",
    )
