"""GL005: no reachable halt and no superstep bound — likely runs forever.

A Pregel computation ends when every vertex halts (and no messages are in
flight) or when something external stops it. A vertex program with no
``vote_to_halt()`` anywhere, no branch on the superstep number, and no
aggregator traffic (a master computation can halt the job through
aggregators, like the tolerance-driven PageRank master) has no visible
termination mechanism at all — the MWM infinite-loop scenario (Section
4.3) is exactly what running such a program feels like.
"""

import ast

from repro.analysis.findings import WARNING, Finding

RULE_ID = "GL005"
SEVERITY = WARNING
TITLE = "no vote_to_halt, superstep bound, or aggregator-driven halt"


def check(context):
    compute = context.scope("compute")
    if compute is None:
        return

    superstep_bounded = False
    for scope in context.iter_scopes():
        if scope.calls_to("vote_to_halt"):
            return  # some path can halt
        if scope.ctx_calls("aggregate", "aggregated_value"):
            return  # a master computation can drive the halt
        if _compares_superstep(scope):
            superstep_bounded = True
    if superstep_bounded:
        return

    yield Finding(
        rule_id=RULE_ID,
        severity=SEVERITY,
        message=(
            f"`{context.class_name}` never calls vote_to_halt(), never "
            "branches on ctx.superstep, and exchanges no aggregator values; "
            "nothing visible can terminate the computation"
        ),
        class_name=context.class_name,
        method="compute",
        filename=compute.filename,
        line=compute.line,
        hint=(
            "halt converged vertices with ctx.vote_to_halt(), bound the "
            "run on ctx.superstep, or have a master computation halt the "
            "job through an aggregator (and pass max_supersteps= as a "
            "safety net)"
        ),
    )


def _compares_superstep(scope):
    """True when any comparison in the method involves ``.superstep``."""
    for node in ast.walk(scope.node):
        if not isinstance(node, ast.Compare):
            continue
        for operand in [node.left, *node.comparators]:
            if isinstance(operand, ast.Attribute) and operand.attr == "superstep":
                return True
    return False
