"""GL008: a non-strict min/max comparison admits ties (Scenario 4.1).

Symmetric decisions — "I win if my priority beats every neighbor's" — must
break ties deterministically, or two adjacent vertices drawing the same
priority both win. The paper's graph-coloring bug is the canonical case:
``value.priority <= min(neighbor_priorities)`` lets both endpoints of a
tie enter the independent set, and they end up with the same color. The
rule flags ``<=`` / ``>=`` comparisons against a ``min(...)`` / ``max(...)``
aggregate inside a vertex program; a strict comparison on a
``(priority, vertex_id)`` tuple is the standard fix.
"""

import ast

from repro.analysis.findings import WARNING, Finding

RULE_ID = "GL008"
SEVERITY = WARNING
TITLE = "non-strict comparison against min()/max() admits symmetric ties"


def _is_min_max_call(node):
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("min", "max")
    )


def check(context):
    for scope in context.iter_scopes():
        for node in ast.walk(scope.node):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            non_strict = any(
                isinstance(op, (ast.LtE, ast.GtE)) for op in node.ops
            )
            if not non_strict or not any(map(_is_min_max_call, operands)):
                continue
            yield Finding(
                rule_id=RULE_ID,
                severity=SEVERITY,
                message=(
                    f"`{scope.name}` compares with `<=`/`>=` against a "
                    "min()/max() aggregate; two vertices drawing the same "
                    "extreme both pass, so a symmetric decision (MIS entry, "
                    "leader election) admits both endpoints of a tie"
                ),
                class_name=context.class_name,
                method=scope.name,
                filename=scope.filename,
                line=node.lineno,
                hint=(
                    "compare strictly on a tuple that includes the vertex "
                    "id, e.g. `(priority, id(self)) < min((p, id) for ...)` "
                    "— the correct GC breaks ties exactly this way"
                ),
            )
