"""GL020: nondeterminism sources GL003's module scan cannot see.

GL003 bans calls into the global ``random``/``uuid``/``time`` modules.
This rule covers the sources that slip past a module-name scan:

- ``datetime.now()`` / ``utcnow()`` / ``today()`` / ``date.today()`` —
  wall-clock reads through the ``datetime`` module — ``proven``, error
  severity, predicts ``replay_divergence``;
- ``id(...)`` — CPython object identity is an address: it differs
  between processes, so using it in branching or payloads makes the
  processes backend diverge from serial — ``likely``;
- ``hash(x)`` for non-literal ``x`` — ``str``/``bytes`` hashing is
  randomized per interpreter (PYTHONHASHSEED), so hashes differ between
  runs and between the processes backend's workers — ``likely``;
- a bare ``Random()`` constructed with no seed (``from random import
  Random`` escapes GL003's bare-name list) — ``likely``.

Calls through ``ctx``/``self`` stay exempt, mirroring GL003: the
seeded ``ctx.rng`` is the sanctioned randomness source.
"""

import ast

from repro.analysis.findings import ERROR, LIKELY, PROVEN, WARNING, Finding

RULE_ID = "GL020"
SEVERITY = WARNING
TITLE = "nondeterminism source outside the seeded context"

#: ``module.attr`` call tails that read the wall clock via datetime.
_WALL_CLOCK_TAILS = {
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
}


def check(context):
    for scope in context.iter_scopes():
        for call in scope.calls:
            finding = _classify(context, scope, call)
            if finding is not None:
                yield finding


def _classify(context, scope, call):
    head = call.target.split(".", 1)[0]
    if head in (scope.ctx_name, scope.self_name):
        return None

    tail2 = ".".join(call.target.split(".")[-2:])
    if tail2 in _WALL_CLOCK_TAILS:
        return _finding(
            context, scope, call.line,
            message=(
                f"`{scope.name}` calls `{call.target}()` — a wall-clock "
                "read; the captured run and its replay see different "
                "times, so exact replay is impossible"
            ),
            hint=(
                "compute() must be a pure function of (value, messages, "
                "superstep); derive timestamps outside the job or from "
                "the superstep counter"
            ),
            confidence=PROVEN,
            severity=ERROR,
        )

    if call.target == "id":
        return _finding(
            context, scope, call.line,
            message=(
                f"`{scope.name}` uses `id(...)` — object identity is a "
                "memory address, different in every process; branching "
                "or payloads built on it diverge under the processes "
                "backend"
            ),
            hint="key on vertex ids or message values, never on id()",
            confidence=LIKELY,
            severity=WARNING,
        )

    if call.target == "hash" and call.node.args and not _is_literal(
        call.node.args[0]
    ):
        return _finding(
            context, scope, call.line,
            message=(
                f"`{scope.name}` hashes a runtime value — str/bytes "
                "hashing is randomized per interpreter "
                "(PYTHONHASHSEED), so the result differs between runs "
                "and between process workers"
            ),
            hint=(
                "use a content hash (hashlib) or sort keys explicitly "
                "instead of relying on hash()"
            ),
            confidence=LIKELY,
            severity=WARNING,
        )

    if (
        call.target.rsplit(".", 1)[-1] == "Random"
        and head != "random"      # random.Random() is GL003's catch
        and not call.node.args
    ):
        return _finding(
            context, scope, call.line,
            message=(
                f"`{scope.name}` constructs `Random()` with no seed — it "
                "seeds from the OS, outside the per-(vertex, superstep) "
                "derivation, so replays draw different numbers"
            ),
            hint=(
                "use ctx.rng, or seed explicitly via "
                "repro.common.rng.derive_rng"
            ),
            confidence=LIKELY,
            severity=WARNING,
        )
    return None


def _is_literal(node):
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.Tuple):
        return all(_is_literal(e) for e in node.elts)
    return False


def _finding(context, scope, line, message, hint, confidence, severity):
    return Finding(
        rule_id=RULE_ID,
        severity=severity,
        message=message,
        class_name=context.class_name,
        method=scope.name,
        filename=scope.filename,
        line=line,
        hint=hint,
        confidence=confidence,
        predicts="replay_divergence" if confidence == PROVEN else "",
    )
