"""GL024: an aggregator read strictly before its first visible write.

Aggregator writes are barrier-delayed: a contribution made at superstep
``s`` is visible to reads from ``s + 1``. When the interval stamps prove
that every read of an aggregator executes at or before the superstep of
its *earliest possible* write, no read can ever observe a contribution —
the reads all return the aggregator's initial value and the writes are
dead as far as this class is concerned.

GL006 warns whenever one class reads and writes the same name at all
(the generic stale-read hazard); this rule is its interval-proven
upgrade for the degenerate lifecycle and supersedes it at the same
line. Both phases and helpers count: the facts come through
:class:`~repro.analysis.dataflow.phases.PhaseFacts`, summaries included.
"""

from repro.analysis.findings import PROVEN, WARNING, Finding

RULE_ID = "GL024"
SEVERITY = WARNING
TITLE = "aggregator proven read-only-before-first-write (initial value)"


def check(context):
    protocol = context.protocol
    if protocol is None:
        return
    for hazard in protocol.aggregator_hazards():
        first = hazard.first_read
        scope = context.scopes.get(first.method)
        write_lines = ", ".join(str(n) for n in hazard.write_lines)
        yield Finding(
            rule_id=RULE_ID,
            severity=SEVERITY,
            message=(
                f"aggregator {hazard.name!r} is only read at supersteps in "
                f"{hazard.reads_hull!r} (first read line {first.line}) but "
                f"first written at supersteps in {hazard.writes_hull!r} "
                f"(lines {write_lines}); writes are visible one superstep "
                "later, so every read returns the initial value and no "
                "contribution is ever observed"
            ),
            class_name=context.class_name,
            method=first.method,
            filename=scope.filename if scope is not None else context.filename,
            line=first.line,
            hint=(
                "read the aggregator in a superstep after the first write "
                "(remember the one-superstep visibility delay), or drop "
                "the dead writes"
            ),
            confidence=PROVEN,
            predicts="",
        )
