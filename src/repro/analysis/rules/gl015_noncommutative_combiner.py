"""GL015: a message combiner that is not commutative.

Combiners fold message streams in whatever order the engine merges them;
``combine(first, second)`` must therefore be commutative (and ideally
associative) or different merge orders produce different inboxes — runs
stop being reproducible and replay diverges from the recorded outcome.

Statically decidable cases:

- ``return first - second`` (or ``/``, ``//``, ``%``, ``**``, ``<<``,
  ``>>`` on the two parameters) — ``proven`` non-commutative;
- ``return first`` / ``return second`` — an order-dependent projection,
  and any body that never reads one of the two parameters — ``likely``.

This rule applies to combiner classes (``APPLIES_TO = "combiner"``); the
engine routes ``MessageCombiner`` subclasses here via
:func:`repro.analysis.engine.analyze_combiner`.
"""

import ast

from repro.analysis.dataflow.reachdef import iter_immediate_nodes
from repro.analysis.findings import ERROR, LIKELY, PROVEN, WARNING, Finding

RULE_ID = "GL015"
SEVERITY = ERROR
TITLE = "message combiner is not commutative"
APPLIES_TO = "combiner"

_NONCOMMUTATIVE_OPS = {
    ast.Sub: "-",
    ast.Div: "/",
    ast.FloorDiv: "//",
    ast.Mod: "%",
    ast.Pow: "**",
    ast.LShift: "<<",
    ast.RShift: ">>",
}


def check(context):
    scope = context.scope("combine")
    if scope is None:
        return
    func = scope.node
    params = [a.arg for a in func.args.args][1:]  # drop self
    if len(params) != 2:
        return
    first, second = params

    returns = [
        node
        for node in iter_immediate_nodes(func)
        if isinstance(node, ast.Return) and node.value is not None
    ]
    if not returns:
        return

    finding = None
    if len(returns) == 1:
        finding = _classify_single(returns[0], first, second, context, scope)
    if finding is None:
        finding = _classify_any(returns, first, second, context, scope)
    if finding is not None:
        yield finding


def _classify_single(ret, first, second, context, scope):
    expr = ret.value
    op_symbol = _noncommutative_binop(expr, first, second)
    if op_symbol is not None:
        return _finding(
            context, scope, ret.lineno,
            message=(
                f"combine() returns `{_unparse(expr)}` — `{op_symbol}` is "
                "not commutative, so the folded value depends on merge "
                "order and identical runs can produce different inboxes"
            ),
            hint=(
                "use a commutative, associative fold (sum, min, max) or "
                "drop the combiner and handle messages in compute()"
            ),
            confidence=PROVEN,
            severity=ERROR,
        )
    if isinstance(expr, ast.Name) and expr.id in (first, second):
        return _finding(
            context, scope, ret.lineno,
            message=(
                f"combine() returns `{expr.id}` unconditionally — an "
                "order-dependent projection that keeps whichever message "
                "happened to arrive in that slot"
            ),
            hint=(
                "pick the survivor by value (min/max) instead of by "
                "argument position"
            ),
            confidence=LIKELY,
            severity=WARNING,
        )
    used = _names_used(expr)
    if (first in used) != (second in used):
        ignored = second if first in used else first
        return _finding(
            context, scope, ret.lineno,
            message=(
                f"combine() never reads `{ignored}` on its return path — "
                "half the message stream is silently dropped, and which "
                "half depends on merge order"
            ),
            hint="fold both arguments into the result",
            confidence=LIKELY,
            severity=WARNING,
        )
    return None


def _classify_any(returns, first, second, context, scope):
    for ret in returns:
        op_symbol = _noncommutative_binop(ret.value, first, second)
        if op_symbol is not None:
            return _finding(
                context, scope, ret.lineno,
                message=(
                    f"a return path of combine() computes "
                    f"`{_unparse(ret.value)}` — `{op_symbol}` is not "
                    "commutative, so merge order can change the result on "
                    "that path"
                ),
                hint=(
                    "make every return path a commutative fold of both "
                    "arguments"
                ),
                confidence=LIKELY,
                severity=WARNING,
            )
    return None


def _noncommutative_binop(expr, first, second):
    if not isinstance(expr, ast.BinOp):
        return None
    symbol = _NONCOMMUTATIVE_OPS.get(type(expr.op))
    if symbol is None:
        return None
    names = set()
    for side in (expr.left, expr.right):
        if isinstance(side, ast.Name):
            names.add(side.id)
    if names == {first, second}:
        return symbol
    return None


def _names_used(expr):
    return {
        node.id
        for node in ast.walk(expr)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
    }


def _unparse(expr):
    try:
        return ast.unparse(expr)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expr>"


def _finding(context, scope, line, message, hint, confidence, severity):
    return Finding(
        rule_id=RULE_ID,
        severity=severity,
        message=message,
        class_name=context.class_name,
        method="combine",
        filename=scope.filename,
        line=line,
        hint=hint,
        confidence=confidence,
        predicts="replay_divergence" if confidence == PROVEN else "",
    )
