"""graft-lint: static analysis for vertex-centric programs.

The paper's Section 7 pitfalls — worker-local state smuggled through
instance attributes, in-place mutation of captured values, unseeded
nondeterminism — silently break Graft's capture fidelity and exact replay,
and an instrumented run only discovers them *after* the fact. This package
closes that gap the way Palgol's compiler catches vertex-program errors
ahead of execution: an AST-based analyzer inspects the user's
``Computation`` class before submission and reports structured findings
with rule ids, locations, and fix hints.

Usage::

    from repro.analysis import analyze_computation

    report = analyze_computation(MyComputation)
    if report.has_errors:
        print(report.render_text())

or from a shell::

    python -m repro lint mypackage.walks:MyComputation --format json

``debug_run`` runs the analyzer automatically as a pre-flight check (warn
by default; ``strict=True`` refuses error-severity programs before any
superstep executes), and runtime violations / fidelity divergences report
the rule id that predicted them (:mod:`repro.analysis.crosslink`).
"""

from repro.analysis.determinism import (
    COMMUTATIVE_FOLD_OPS,
    NONCOMMUTATIVE_FOLD_OPS,
    classify_fold_op,
    message_fold_sites,
    messages_order_uses,
    shared_state_writes,
)
from repro.analysis.crosslink import (
    PREDICTABLE_KINDS,
    RUNTIME_LINKS,
    PredictionScore,
    predicted_findings,
    prediction_note,
    score_predictions,
)
from repro.analysis.engine import (
    analyze_combiner,
    analyze_computation,
    analyze_module_source,
    analyze_path,
    computation_context,
    contexts_from_module_source,
)
from repro.analysis.findings import (
    ERROR,
    INFO,
    LIKELY,
    PROVEN,
    WARNING,
    AnalysisReport,
    Finding,
    GraftLintWarning,
)
from repro.analysis.interproc import CalleeSummary, Interprocedural
from repro.analysis.protocol import ProtocolTable
from repro.analysis.rules import all_rules, dataflow_rules, rule_catalog
from repro.analysis.sarif import sarif_log

__all__ = [
    "analyze_computation",
    "analyze_combiner",
    "analyze_module_source",
    "analyze_path",
    "computation_context",
    "contexts_from_module_source",
    "AnalysisReport",
    "Finding",
    "GraftLintWarning",
    "ERROR",
    "WARNING",
    "INFO",
    "PROVEN",
    "LIKELY",
    "all_rules",
    "dataflow_rules",
    "rule_catalog",
    "CalleeSummary",
    "Interprocedural",
    "ProtocolTable",
    "sarif_log",
    "RUNTIME_LINKS",
    "PREDICTABLE_KINDS",
    "PredictionScore",
    "predicted_findings",
    "prediction_note",
    "score_predictions",
    "COMMUTATIVE_FOLD_OPS",
    "NONCOMMUTATIVE_FOLD_OPS",
    "classify_fold_op",
    "message_fold_sites",
    "messages_order_uses",
    "shared_state_writes",
]
