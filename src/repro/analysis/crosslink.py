"""Cross-linking static findings to runtime evidence.

graft-lint predicts failure classes; the debugger observes their
instances. This module is the join: given a lint report and a kind of
runtime evidence — a constraint violation kind, a replay-fidelity
divergence — it returns the static findings that predicted it, so the
violations view and the fidelity report can say "GL007 warned about this
before the run started".

The dataflow rules (GL009–GL015) go one step further: a ``proven``
finding names the exact evidence kind it forecasts in its ``predicts``
field, and :func:`score_predictions` grades those forecasts against what
the run actually produced — precision ("did the proven predictions come
true?") and recall ("was the observed evidence predicted?").
"""

from dataclasses import dataclass

#: runtime evidence kind -> rule ids whose hazard class produces it.
RUNTIME_LINKS = {
    # Replay diverging from the recorded outcome: hidden worker state,
    # corrupted pre-state, randomness outside the seeded RNG, an
    # order-dependent message combiner, cross-vertex shared state, or a
    # nondeterminism source outside the seeded context.
    "replay_divergence": (
        "GL001", "GL002", "GL003", "GL015", "GL019", "GL020",
    ),
    # The permutation sanitizer (repro san) observing different canonical
    # digests under permuted-but-seeded delivery schedules: an
    # order-sensitive fold, positional message access, or a float
    # accumulation whose low bits move with the order.
    "order_divergence": ("GL015", "GL016", "GL017", "GL018"),
    # A message-value constraint violation (e.g. negative walker counts
    # from a wrapped short, or a send fired after the halt decision).
    "message": ("GL007", "GL004", "GL013"),
    "message_target": ("GL007", "GL004", "GL013"),
    # A vertex-value constraint violation: wrapped counters parked on the
    # vertex, or in-place mutation making the checked value stale — or a
    # phase gap silently dropping the payload a value was computed from.
    "vertex_value": ("GL007", "GL002", "GL013", "GL023"),
    # A neighborhood constraint violation ("no two adjacent vertices share
    # a color"): symmetric ties admitted by a non-strict comparison.
    "neighborhood": ("GL008",),
    # The engine hitting max_supersteps without convergence.
    "nontermination": ("GL005", "GL014", "GL025"),
    # An exception escaping compute (e.g. a use-before-def UnboundLocalError
    # or a payload-type TypeError — possibly through a helper call).
    "exception": ("GL009", "GL011", "GL012", "GL021", "GL022"),
}

#: Evidence kinds any rule can forecast — the recall denominator only
#: counts observed kinds the analyzer had a chance to predict.
PREDICTABLE_KINDS = frozenset(RUNTIME_LINKS)


def predicted_findings(report, evidence_kind):
    """Findings in ``report`` whose rule predicts ``evidence_kind``.

    A finding matches through the static link table *or* through its own
    ``predicts`` field (dataflow findings carry the exact kind they
    forecast). ``report`` may be None (no pre-flight analysis ran) —
    returns ().
    """
    if report is None:
        return ()
    rule_ids = RUNTIME_LINKS.get(evidence_kind, ())
    return tuple(
        f
        for f in report.findings
        if f.rule_id in rule_ids or getattr(f, "predicts", "") == evidence_kind
    )


def prediction_note(report, evidence_kind):
    """One human-readable line linking evidence back to the lint pass.

    Empty string when nothing predicted it.
    """
    findings = predicted_findings(report, evidence_kind)
    if not findings:
        return ""
    ids = sorted({f.rule_id for f in findings})
    locations = ", ".join(
        f"{f.rule_id}@{f.location()}" for f in findings[:3]
    )
    return (
        f"predicted by static analysis ({', '.join(ids)}): {locations}"
    )


@dataclass(frozen=True)
class PredictionScore:
    """How the proven static predictions fared against one run."""

    predicted: tuple   # evidence kinds forecast by proven findings, sorted
    observed: tuple    # evidence kinds the run actually produced, sorted
    matched: tuple     # kinds both predicted and observed, sorted

    @property
    def precision(self):
        """Fraction of proven predictions the run confirmed (1.0 if none)."""
        if not self.predicted:
            return 1.0
        return len(self.matched) / len(self.predicted)

    @property
    def recall(self):
        """Fraction of predictable observed evidence that was predicted."""
        relevant = [k for k in self.observed if k in PREDICTABLE_KINDS]
        if not relevant:
            return 1.0
        return len(self.matched) / len(relevant)

    def summary(self):
        if not self.predicted and not self.observed:
            return "predictions: none made, none needed"
        return (
            f"predictions: {len(self.matched)}/{len(self.predicted)} proven "
            f"forecasts confirmed (precision {self.precision:.2f}, "
            f"recall {self.recall:.2f}); observed evidence: "
            f"{', '.join(self.observed) if self.observed else 'none'}"
        )


def score_predictions(report, observed_kinds):
    """Grade a lint report's *proven* forecasts against observed evidence.

    ``observed_kinds`` is an iterable of runtime evidence kinds (constraint
    violation kinds, "exception", "nontermination", "replay_divergence").
    Only proven findings with a ``predicts`` field participate — ``likely``
    findings are hints, not forecasts, and do not cost precision.
    """
    predicted = set()
    if report is not None:
        for finding in report.findings:
            if getattr(finding, "proven", False) and finding.predicts:
                predicted.add(finding.predicts)
    observed = set(observed_kinds)
    matched = predicted & observed
    return PredictionScore(
        predicted=tuple(sorted(predicted)),
        observed=tuple(sorted(observed)),
        matched=tuple(sorted(matched)),
    )
