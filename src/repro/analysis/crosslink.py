"""Cross-linking static findings to runtime evidence.

graft-lint predicts failure classes; the debugger observes their
instances. This module is the join: given a lint report and a kind of
runtime evidence — a constraint violation kind, a replay-fidelity
divergence — it returns the static findings that predicted it, so the
violations view and the fidelity report can say "GL007 warned about this
before the run started".
"""

#: runtime evidence kind -> rule ids whose hazard class produces it.
RUNTIME_LINKS = {
    # Replay diverging from the recorded outcome: hidden worker state,
    # corrupted pre-state, or randomness outside the seeded RNG.
    "replay_divergence": ("GL001", "GL002", "GL003"),
    # A message-value constraint violation (e.g. negative walker counts
    # from a wrapped short, or a send fired after the halt decision).
    "message": ("GL007", "GL004"),
    "message_target": ("GL007", "GL004"),
    # A vertex-value constraint violation: wrapped counters parked on the
    # vertex, or in-place mutation making the checked value stale.
    "vertex_value": ("GL007", "GL002"),
    # A neighborhood constraint violation ("no two adjacent vertices share
    # a color"): symmetric ties admitted by a non-strict comparison.
    "neighborhood": ("GL008",),
    # The engine hitting max_supersteps without convergence.
    "nontermination": ("GL005",),
}


def predicted_findings(report, evidence_kind):
    """Findings in ``report`` whose rule predicts ``evidence_kind``.

    ``report`` may be None (no pre-flight analysis ran) — returns ().
    """
    if report is None:
        return ()
    rule_ids = RUNTIME_LINKS.get(evidence_kind, ())
    return tuple(f for f in report.findings if f.rule_id in rule_ids)


def prediction_note(report, evidence_kind):
    """One human-readable line linking evidence back to the lint pass.

    Empty string when nothing predicted it.
    """
    findings = predicted_findings(report, evidence_kind)
    if not findings:
        return ""
    ids = sorted({f.rule_id for f in findings})
    locations = ", ".join(
        f"{f.rule_id}@{f.location()}" for f in findings[:3]
    )
    return (
        f"predicted by static analysis ({', '.join(ids)}): {locations}"
    )
