"""Findings: what graft-lint reports.

A :class:`Finding` is one rule hit — rule id, severity, location, message,
and a fix hint — and an :class:`AnalysisReport` is everything the analyzer
concluded about one ``Computation`` class. Reports render as plain text
(one ``file:line: [RULE] message`` line per finding, the familiar linter
shape) or as JSON for CI pipelines.
"""

import json
from dataclasses import asdict, dataclass, field

# Severities, most severe first. ``error`` findings are capture/replay
# correctness hazards (Graft's guarantees silently break); ``warning``
# findings are strong hints of a vertex-program bug; ``info`` is advice.
ERROR = "error"
WARNING = "warning"
INFO = "info"

# Confidence levels. ``proven`` findings are backed by a dataflow proof
# (the property holds on *every* execution the CFG admits); ``likely``
# findings are pattern matches that can misfire on unusual code.
PROVEN = "proven"
LIKELY = "likely"

_SEVERITY_ORDER = {ERROR: 0, WARNING: 1, INFO: 2}


class GraftLintWarning(UserWarning):
    """Emitted by :func:`repro.graft.debug_run` when the pre-flight static
    analysis finds error-severity hazards but ``strict`` is off."""


@dataclass(frozen=True)
class Finding:
    """One static-analysis rule hit."""

    rule_id: str          # "GL001" ... "GL015"
    severity: str         # ERROR / WARNING / INFO
    message: str          # what is wrong, concretely
    class_name: str       # the Computation subclass analyzed
    method: str           # method the finding anchors to
    filename: str         # source file (or "<string>")
    line: int             # 1-based line in `filename`
    hint: str = ""        # how to fix it
    confidence: str = LIKELY   # PROVEN when backed by a dataflow proof
    predicts: str = ""    # runtime evidence kind this finding forecasts

    def location(self):
        return f"{self.filename}:{self.line}"

    @property
    def proven(self):
        return self.confidence == PROVEN

    def render(self):
        tag = f"{self.severity} ({self.confidence})" if self.proven else (
            self.severity
        )
        text = (
            f"{self.location()}: [{self.rule_id}] {tag}: "
            f"{self.class_name}.{self.method}: {self.message}"
        )
        if self.predicts:
            text += f"\n    predicts: {self.predicts} evidence at runtime"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class AnalysisReport:
    """Every finding the analyzer produced for one class."""

    class_name: str
    filename: str = "<unknown>"
    findings: list = field(default_factory=list)
    #: False when the class source could not be located (dynamically built
    #: classes, exec'd code); such classes are skipped, never failed.
    analyzed: bool = True

    def add(self, finding):
        self.findings.append(finding)

    def sort(self):
        """Order findings by severity, then location — stable output."""
        self.findings.sort(
            key=lambda f: (_SEVERITY_ORDER.get(f.severity, 9), f.line, f.rule_id)
        )
        return self

    # -- queries ------------------------------------------------------------

    @property
    def ok(self):
        """True when nothing at all was flagged."""
        return not self.findings

    @property
    def errors(self):
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self):
        return [f for f in self.findings if f.severity == WARNING]

    @property
    def has_errors(self):
        return bool(self.errors)

    @property
    def proven_findings(self):
        return [f for f in self.findings if f.confidence == PROVEN]

    def rule_ids(self):
        """The distinct rule ids hit, sorted."""
        return sorted({f.rule_id for f in self.findings})

    def by_rule(self, rule_id):
        return [f for f in self.findings if f.rule_id == rule_id]

    # -- rendering ----------------------------------------------------------

    def summary(self):
        if not self.analyzed:
            return f"{self.class_name}: source unavailable, not analyzed"
        if self.ok:
            return f"{self.class_name}: clean (no findings)"
        return (
            f"{self.class_name}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s) "
            f"[{', '.join(self.rule_ids())}]"
        )

    def render_text(self):
        lines = [self.summary()]
        lines.extend(finding.render() for finding in self.findings)
        return "\n".join(lines)

    def to_dict(self):
        return {
            "class_name": self.class_name,
            "filename": self.filename,
            "analyzed": self.analyzed,
            "ok": self.ok,
            "findings": [asdict(f) for f in self.findings],
        }

    def render_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent, default=repr)
