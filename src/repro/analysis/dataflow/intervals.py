"""Interval / constant abstract interpretation over a method CFG.

Each local name (and the special key ``$superstep``, standing for
``ctx.superstep``) maps to an :class:`Interval` over-approximating its
numeric value. Branch conditions refine intervals along their TRUE/FALSE
edges — ``if ctx.superstep == 0:`` narrows ``$superstep`` to ``[0, 0]``
inside the branch, which is how the phase analysis learns *when* a send
or a message read can execute. Loops are handled with widening, so the
solver terminates on any CFG.

The domain is deliberately sound-over-precise: anything it cannot model
evaluates to TOP ``(-inf, +inf)``, and a ``proven`` claim built on these
intervals (GL013 overflow, GL014 unreachable halt) holds on every real
execution.
"""

import ast

from repro.analysis.dataflow.cfg import FALSE, TRUE, _MatchSubject
from repro.analysis.dataflow.reachdef import _flatten_target
from repro.analysis.dataflow.solver import solve

NEG_INF = float("-inf")
POS_INF = float("inf")

#: Fixed-width value types and their (min, max) ranges, mirroring
#: repro.pregel.value_types (Java two's-complement semantics).
FIXED_WIDTH_RANGES = {
    "Byte8": (-(2 ** 7), 2 ** 7 - 1),
    "Short16": (-(2 ** 15), 2 ** 15 - 1),
    "Int32": (-(2 ** 31), 2 ** 31 - 1),
    "Long64": (-(2 ** 63), 2 ** 63 - 1),
}

SUPERSTEP_KEY = "$superstep"


class Interval:
    """A closed numeric interval ``[lo, hi]`` with infinite endpoints."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo, hi):
        self.lo = lo
        self.hi = hi

    def __eq__(self, other):
        return (
            isinstance(other, Interval)
            and self.lo == other.lo
            and self.hi == other.hi
        )

    def __hash__(self):
        return hash((self.lo, self.hi))

    def __repr__(self):
        lo = "-inf" if self.lo == NEG_INF else repr(self.lo)
        hi = "+inf" if self.hi == POS_INF else repr(self.hi)
        return f"[{lo}, {hi}]"

    # -- predicates ---------------------------------------------------------

    @property
    def is_top(self):
        return self.lo == NEG_INF and self.hi == POS_INF

    @property
    def is_point(self):
        return self.lo == self.hi

    @property
    def is_bounded(self):
        return self.lo != NEG_INF and self.hi != POS_INF

    def contains(self, value):
        return self.lo <= value <= self.hi

    def intersects(self, other):
        return self.lo <= other.hi and other.lo <= self.hi

    # -- lattice ------------------------------------------------------------

    def join(self, other):
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other):
        """Intersection, or None when the intervals do not overlap."""
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def widen(self, newer):
        return Interval(
            self.lo if newer.lo >= self.lo else NEG_INF,
            self.hi if newer.hi <= self.hi else POS_INF,
        )

    # -- arithmetic ---------------------------------------------------------

    def shift(self, delta):
        return Interval(self.lo + delta, self.hi + delta)

    def add(self, other):
        return Interval(_safe_add(self.lo, other.lo), _safe_add(self.hi, other.hi))

    def sub(self, other):
        return Interval(_safe_add(self.lo, -other.hi), _safe_add(self.hi, -other.lo))

    def neg(self):
        return Interval(-self.hi, -self.lo)

    def mul(self, other):
        corners = [
            _safe_mul(a, b)
            for a in (self.lo, self.hi)
            for b in (other.lo, other.hi)
        ]
        return Interval(min(corners), max(corners))

    def abs(self):
        if self.lo >= 0:
            return self
        if self.hi <= 0:
            return self.neg()
        return Interval(0, max(-self.lo, self.hi))


def _safe_add(a, b):
    if a in (NEG_INF, POS_INF):
        return a
    if b in (NEG_INF, POS_INF):
        return b
    return a + b


def _safe_mul(a, b):
    if a == 0 or b == 0:
        return 0
    try:
        return a * b
    except OverflowError:  # pragma: no cover - inf * inf stays inf
        return POS_INF if (a > 0) == (b > 0) else NEG_INF


TOP = Interval(NEG_INF, POS_INF)
NON_NEGATIVE = Interval(0, POS_INF)


def const(value):
    return Interval(value, value)


class _State:
    """values: key -> non-TOP Interval; aliases: local name -> key."""

    __slots__ = ("values", "aliases")

    def __init__(self, values=None, aliases=None):
        self.values = values if values is not None else {}
        self.aliases = aliases if aliases is not None else {}

    def copy(self):
        return _State(dict(self.values), dict(self.aliases))

    def __eq__(self, other):
        return (
            isinstance(other, _State)
            and self.values == other.values
            and self.aliases == other.aliases
        )

    def get(self, key):
        return self.values.get(key, TOP)

    def set(self, key, interval):
        if interval.is_top:
            self.values.pop(key, None)
        else:
            self.values[key] = interval

    def resolve(self, name):
        """The storage key behind a local name (alias-aware)."""
        return self.aliases.get(name, name)


class IntervalAnalysis:
    """Forward abstract interpretation of one method scope."""

    def __init__(self, cfg, scope, call_intervals=None):
        self.cfg = cfg
        self.scope = scope
        self.ctx_name = scope.ctx_name
        #: Optional hook ``(call_node, dotted_target) -> Interval|None``
        #: resolving calls the builtin table cannot — interprocedural
        #: callee-summary return intervals. Must be set before the solve:
        #: the fixpoint below already evaluates calls.
        self._call_intervals = call_intervals
        boundary = _State()
        boundary.set(SUPERSTEP_KEY, NON_NEGATIVE)
        self.solution = solve(
            cfg,
            transfer=self._transfer,
            join=self._join,
            boundary=boundary,
            edge_transfer=self._edge_transfer,
            widen=self._widen,
        )
        self._stmt_states = None

    # -- lattice ------------------------------------------------------------

    def _join(self, states):
        merged = states[0].copy()
        for state in states[1:]:
            keys = set(merged.values) & set(state.values)
            merged.values = {
                key: merged.values[key].join(state.values[key]) for key in keys
            }
            merged.aliases = {
                name: key
                for name, key in merged.aliases.items()
                if state.aliases.get(name) == key
            }
        return merged

    def _widen(self, old, new):
        widened = _State(aliases={
            name: key
            for name, key in new.aliases.items()
            if old.aliases.get(name) == key
        })
        for key, interval in new.values.items():
            if key in old.values:
                widened.set(key, old.values[key].widen(interval))
        return widened

    # -- transfer -----------------------------------------------------------

    def _transfer(self, block, state):
        state = state.copy()
        for stmt in block.statements:
            self._apply(stmt, state)
        return state

    def _apply(self, stmt, state):
        if isinstance(stmt, ast.Assign):
            interval = self.eval(stmt.value, state)
            for target in stmt.targets:
                self._bind_target(target, stmt.value, interval, state)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            interval = self.eval(stmt.value, state)
            self._bind_target(stmt.target, stmt.value, interval, state)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                combined = self._binop_interval(
                    stmt.op,
                    self.eval(stmt.target, state),
                    self.eval(stmt.value, state),
                )
                self._havoc_name(stmt.target.id, state)
                state.set(stmt.target.id, combined)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind_loop_target(stmt, state)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    for name in _flatten_target(item.optional_vars):
                        self._havoc_name(name, state)
        elif isinstance(stmt, ast.ExceptHandler):
            if stmt.name:
                self._havoc_name(stmt.name, state)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                for name in _flatten_target(target):
                    self._havoc_name(name, state)

    def _bind_target(self, target, value_expr, interval, state):
        if isinstance(target, ast.Name):
            self._havoc_name(target.id, state)
            alias = self._superstep_key_for(value_expr, state)
            if alias is not None:
                state.aliases[target.id] = SUPERSTEP_KEY
            else:
                state.set(target.id, interval)
        else:
            for name in _flatten_target(target):
                self._havoc_name(name, state)

    def _bind_loop_target(self, for_node, state):
        names = _flatten_target(for_node.target)
        for name in names:
            self._havoc_name(name, state)
        if len(names) == 1 and isinstance(for_node.iter, ast.Call):
            func = for_node.iter.func
            if isinstance(func, ast.Name) and func.id == "range":
                state.set(names[0], self._range_interval(for_node.iter, state))

    def _range_interval(self, call, state):
        args = [self.eval(a, state) for a in call.args]
        if len(args) == 1:
            return Interval(0, _safe_add(args[0].hi, -1))
        if len(args) >= 2:
            return Interval(args[0].lo, _safe_add(args[1].hi, -1))
        return TOP

    def _havoc_name(self, name, state):
        state.values.pop(name, None)
        state.aliases.pop(name, None)

    def _superstep_key_for(self, expr, state):
        """SUPERSTEP_KEY when ``expr`` is ``ctx.superstep`` or an alias."""
        if (
            self.ctx_name is not None
            and isinstance(expr, ast.Attribute)
            and expr.attr == "superstep"
            and isinstance(expr.value, ast.Name)
            and expr.value.id == self.ctx_name
        ):
            return SUPERSTEP_KEY
        if isinstance(expr, ast.Name) and state.resolve(expr.id) == SUPERSTEP_KEY:
            return SUPERSTEP_KEY
        return None

    # -- expression evaluation ----------------------------------------------

    def eval(self, expr, state):
        """Over-approximate ``expr`` as an :class:`Interval`."""
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, bool):
                return const(int(expr.value))
            if isinstance(expr.value, (int, float)):
                return const(expr.value)
            return TOP
        if isinstance(expr, ast.Name):
            return state.get(state.resolve(expr.id))
        if isinstance(expr, ast.Attribute):
            if self._superstep_key_for(expr, state) is not None:
                return state.get(SUPERSTEP_KEY).meet(NON_NEGATIVE) or NON_NEGATIVE
            return TOP
        if isinstance(expr, ast.BinOp):
            return self._binop_interval(
                expr.op, self.eval(expr.left, state), self.eval(expr.right, state)
            )
        if isinstance(expr, ast.UnaryOp):
            if isinstance(expr.op, ast.USub):
                return self.eval(expr.operand, state).neg()
            if isinstance(expr.op, ast.UAdd):
                return self.eval(expr.operand, state)
            if isinstance(expr.op, ast.Not):
                return Interval(0, 1)
            return TOP
        if isinstance(expr, ast.IfExp):
            return self.eval(expr.body, state).join(self.eval(expr.orelse, state))
        if isinstance(expr, ast.BoolOp):
            merged = self.eval(expr.values[0], state)
            for value in expr.values[1:]:
                merged = merged.join(self.eval(value, state))
            return merged
        if isinstance(expr, ast.Call):
            return self._call_interval(expr, state)
        if isinstance(expr, ast.NamedExpr):
            return self.eval(expr.value, state)
        if isinstance(expr, ast.Compare):
            return Interval(0, 1)
        return TOP

    def _call_interval(self, call, state):
        func = call.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        args = call.args
        if name in FIXED_WIDTH_RANGES:
            lo, hi = FIXED_WIDTH_RANGES[name]
            width = Interval(lo, hi)
            if args:
                ideal = self.eval(args[0], state)
                # No wrap possible when the argument provably fits.
                inside = ideal.meet(width)
                if inside is not None and inside == ideal:
                    return ideal
            return width
        if name in ("int", "round"):
            return self.eval(args[0], state) if args else const(0)
        if name == "abs" and args:
            return self.eval(args[0], state).abs()
        if name == "len":
            return NON_NEGATIVE
        if name in ("out_degree", "num_vertices", "num_edges", "superstep"):
            return NON_NEGATIVE
        if name in ("min", "max") and args:
            intervals = [self.eval(a, state) for a in args]
            if name == "min":
                return Interval(
                    min(i.lo for i in intervals), min(i.hi for i in intervals)
                )
            return Interval(
                max(i.lo for i in intervals), max(i.hi for i in intervals)
            )
        if self._call_intervals is not None:
            from repro.analysis.scopes import dotted_name

            target = dotted_name(func)
            if target is not None:
                resolved = self._call_intervals(call, target)
                if resolved is not None:
                    return resolved
        return TOP

    def _binop_interval(self, op, left, right):
        if isinstance(op, ast.Add):
            return left.add(right)
        if isinstance(op, ast.Sub):
            return left.sub(right)
        if isinstance(op, ast.Mult):
            return left.mul(right)
        if isinstance(op, ast.Mod) and right.is_point and right.lo not in (
            0, NEG_INF, POS_INF
        ):
            modulus = abs(right.lo)
            return Interval(0, modulus - 1)
        if isinstance(op, (ast.FloorDiv, ast.Div)) and right.is_point:
            divisor = right.lo
            if divisor not in (0, NEG_INF, POS_INF) and divisor > 0:
                return Interval(
                    _safe_div(left.lo, divisor), _safe_div(left.hi, divisor)
                )
        return TOP

    # -- branch refinement --------------------------------------------------

    def _edge_transfer(self, edge, state):
        test = edge.src.test
        if test is None or edge.label not in (TRUE, FALSE):
            return state
        return self._refine(test, edge.label == TRUE, state.copy())

    def _refine(self, test, sense, state):
        """Narrow ``state`` assuming ``test`` evaluated to ``sense``.

        Returns None when the assumption is infeasible — the edge carries
        no executions (interval-proven dead branch).
        """
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self._refine(test.operand, not sense, state)
        if isinstance(test, ast.BoolOp):
            conjunctive = isinstance(test.op, ast.And) is sense
            if conjunctive:
                # `and` true / `or` false: every clause has that sense.
                for value in test.values:
                    state = self._refine(value, sense, state)
                    if state is None:
                        return None
            return state
        if isinstance(test, ast.Compare):
            return self._refine_compare(test, sense, state)
        if isinstance(test, ast.Name):
            key = state.resolve(test.id)
            interval = state.get(key)
            if sense is False:
                if not interval.contains(0):
                    return None if not interval.is_top else state
                if not interval.is_top:
                    state.set(key, const(0))
            elif interval == const(0):
                return None
            return state
        return state

    def _refine_compare(self, test, sense, state):
        operands = [test.left] + list(test.comparators)
        for (left, op, right) in zip(operands, test.ops, operands[1:]):
            state = self._refine_pair(left, op, right, sense, state)
            if state is None:
                return None
            if len(test.ops) > 1 and sense is False:
                # A false chained comparison only negates the conjunction;
                # per-pair refinement would be unsound. Refine nothing.
                return state
        return state

    def _refine_pair(self, left, op, right, sense, state):
        if sense is False:
            op = _NEGATED.get(type(op))
            if op is None:
                return state
            op = op()
        for key_side, other_side, mirrored in (
            (left, right, False),
            (right, left, True),
        ):
            key = self._key_for(key_side, state)
            if key is None:
                continue
            bound = self.eval(other_side, state)
            if isinstance(op, ast.NotEq):
                state = self._exclude_point(key, bound, state)
                if state is None:
                    return None
                continue
            implied = _implied_interval(op, bound, mirrored)
            if implied is None:
                continue
            current = state.get(key)
            met = current.meet(implied)
            if met is None:
                return None
            state.set(key, met)
        return state

    def _exclude_point(self, key, bound, state):
        """Refine ``key != c``: trim an endpoint equal to the point ``c``."""
        if not (bound.is_point and isinstance(bound.lo, int)):
            return state
        excluded = bound.lo
        current = state.get(key)
        lo, hi = current.lo, current.hi
        if lo == excluded:
            lo = excluded + 1
        if hi == excluded:
            hi = excluded - 1
        if lo > hi:
            return None  # interval was exactly [c, c]: branch infeasible
        state.set(key, Interval(lo, hi))
        return state

    def _key_for(self, expr, state):
        if isinstance(expr, ast.Name):
            return state.resolve(expr.id)
        if self._superstep_key_for(expr, state) is not None:
            return SUPERSTEP_KEY
        return None

    # -- queries ------------------------------------------------------------

    def state_into(self, block):
        return self.solution[block.index][0]

    def state_before(self, stmt):
        """The abstract state just before ``stmt``; None if unreachable."""
        if self._stmt_states is None:
            self._stmt_states = {}
            for block in self.cfg.blocks:
                if not self.cfg.is_reachable(block):
                    continue
                state = self.state_into(block)
                for s in block.statements:
                    self._stmt_states[id(s)] = (
                        None if state is None else state.copy()
                    )
                    if state is not None:
                        state = state.copy()
                        self._apply(s, state)
        return self._stmt_states.get(id(stmt))

    def superstep_at(self, stmt):
        """Interval of ``ctx.superstep`` when ``stmt`` runs; None if dead."""
        state = self.state_before(stmt)
        if state is None:
            return None
        return state.get(SUPERSTEP_KEY).meet(NON_NEGATIVE) or NON_NEGATIVE

    def reachable_stmt(self, stmt):
        return self.state_before(stmt) is not None


_NEGATED = {
    ast.Lt: ast.GtE,
    ast.LtE: ast.Gt,
    ast.Gt: ast.LtE,
    ast.GtE: ast.Lt,
    ast.Eq: ast.NotEq,
    ast.NotEq: ast.Eq,
}


def _implied_interval(op, bound, mirrored):
    """The interval a key must lie in for ``key op bound`` to hold.

    ``mirrored`` means the key was on the right (``bound op key``).
    """
    if mirrored:
        mirror = {
            ast.Lt: ast.Gt, ast.Gt: ast.Lt,
            ast.LtE: ast.GtE, ast.GtE: ast.LtE,
        }.get(type(op))
        if mirror is not None:
            op = mirror()
    if isinstance(op, ast.Eq):
        return bound
    if isinstance(op, ast.Lt):
        hi = bound.hi
        if isinstance(hi, int) and not isinstance(hi, bool):
            hi = hi - 1
        return Interval(NEG_INF, hi)
    if isinstance(op, ast.LtE):
        return Interval(NEG_INF, bound.hi)
    if isinstance(op, ast.Gt):
        lo = bound.lo
        if isinstance(lo, int) and not isinstance(lo, bool):
            lo = lo + 1
        return Interval(lo, POS_INF)
    if isinstance(op, ast.GtE):
        return Interval(bound.lo, POS_INF)
    return None  # NotEq / is / in: no useful interval


def _safe_div(value, divisor):
    if value in (NEG_INF, POS_INF):
        return value
    return value // divisor if isinstance(value, int) else value / divisor


# Re-exported for rules that classify match-subject placeholders.
MATCH_SUBJECT = _MatchSubject
