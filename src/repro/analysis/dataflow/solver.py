"""A generic worklist solver for CFG dataflow problems.

The solver iterates block states to a fixpoint. A problem supplies:

- ``boundary`` — the state entering the analysis (at the CFG entry for a
  forward problem, at the exit for a backward one);
- ``init`` — the state every other block starts from (the lattice bottom);
- ``transfer(block, state)`` — push a state through a block's statements;
- ``join(states)`` — merge the states arriving over several edges;
- ``edge_transfer(edge, state)`` — optional: specialize the state flowing
  along one specific edge (interval analysis refines branch conditions
  here);
- ``widen(old, new)`` — optional: applied at blocks revisited more than
  ``widen_after`` times, for infinite-height domains.

States must implement ``==`` (the convergence check). ``None`` is a legal
state meaning "no execution reaches here"; the solver joins around it and
never calls ``transfer`` on it.
"""


def solve(
    cfg,
    *,
    transfer,
    join,
    boundary,
    init=None,
    direction="forward",
    edge_transfer=None,
    widen=None,
    widen_after=3,
    max_iterations=10_000,
):
    """Run the worklist to fixpoint; returns ``{block_index: (in, out)}``.

    For a backward problem the "(in, out)" pair is still oriented by
    execution order: ``in`` is the state *after* the block runs (what its
    successors demand), ``out`` the state before it.
    """
    forward = direction == "forward"
    start = cfg.entry if forward else cfg.exit

    def incoming_edges(block):
        return block.preds if forward else block.succs

    def source_of(edge):
        return edge.src if forward else edge.dst

    in_states = {block.index: init for block in cfg.blocks}
    out_states = {block.index: init for block in cfg.blocks}
    in_states[start.index] = boundary

    visits = {}
    worklist = [block for block in cfg.blocks if cfg.is_reachable(block)]
    pending = {block.index for block in worklist}
    iterations = 0
    while worklist:
        iterations += 1
        if iterations > max_iterations:  # pragma: no cover - safety net
            raise RuntimeError("dataflow solver failed to converge")
        block = worklist.pop(0)
        pending.discard(block.index)

        if block is start:
            new_in = boundary
        else:
            arriving = []
            for edge in incoming_edges(block):
                state = out_states[source_of(edge).index]
                if state is None:
                    continue
                if edge_transfer is not None:
                    state = edge_transfer(edge, state)
                    if state is None:
                        continue
                arriving.append(state)
            new_in = join(arriving) if arriving else None

        count = visits.get(block.index, 0) + 1
        visits[block.index] = count
        if (
            widen is not None
            and count > widen_after
            and new_in is not None
            and in_states[block.index] is not None
        ):
            new_in = widen(in_states[block.index], new_in)

        new_out = None if new_in is None else transfer(block, new_in)
        if new_in == in_states[block.index] and new_out == out_states[block.index]:
            if count > 1:
                continue
        in_states[block.index] = new_in
        out_states[block.index] = new_out

        next_edges = block.succs if forward else block.preds
        for edge in next_edges:
            follower = edge.dst if forward else edge.src
            if cfg.is_reachable(follower) and follower.index not in pending:
                worklist.append(follower)
                pending.add(follower.index)

    return {
        block.index: (in_states[block.index], out_states[block.index])
        for block in cfg.blocks
    }
