"""Control-flow graphs over method ASTs.

A :class:`CFG` decomposes one ``ast.FunctionDef`` body into basic blocks
connected by labeled edges. Branches (``if``/``while``), loops (``for``
with zero-iteration exits, ``break``/``continue``), ``try``/``except``
(every block inside the ``try`` body gets an exceptional edge to each
handler), ``with``, and early exits (``return``/``raise``) are modeled;
statements that follow an unconditional jump land in blocks unreachable
from the entry — :meth:`CFG.reachable_blocks` exposes exactly that.

Two node kinds appear inside ``BasicBlock.statements`` besides plain
simple statements: an ``ast.For`` marks the loop-variable binding at the
top of each iteration (its body lives in its own blocks), and an
``ast.ExceptHandler`` marks the ``except E as name`` binding at a handler
entry. Transfer functions treat both as definitions, not full statements.
"""

import ast

#: Edge labels. TRUE/FALSE leave a block whose ``test`` is set; LOOP
#: enters a ``for`` body (the iterator produced an item); EXCEPT models an
#: exception escaping a ``try`` body into a handler; ALWAYS is plain fall
#: through.
TRUE = "true"
FALSE = "false"
LOOP = "loop"
EXCEPT = "except"
ALWAYS = ""


class Edge:
    """One directed edge between basic blocks."""

    __slots__ = ("src", "dst", "label")

    def __init__(self, src, dst, label):
        self.src = src
        self.dst = dst
        self.label = label

    def __repr__(self):
        tag = f" [{self.label}]" if self.label else ""
        return f"B{self.src.index}->B{self.dst.index}{tag}"


class BasicBlock:
    """A maximal straight-line run of statements."""

    __slots__ = ("index", "statements", "test", "succs", "preds")

    def __init__(self, index):
        self.index = index
        self.statements = []
        #: Branch condition evaluated after ``statements`` (an ast expr);
        #: set iff the block has TRUE/FALSE successors.
        self.test = None
        self.succs = []
        self.preds = []

    @property
    def lines(self):
        """(first, last) source lines covered, or None for empty blocks."""
        nodes = list(self.statements)
        if self.test is not None:
            nodes.append(self.test)
        linenos = [n.lineno for n in nodes if hasattr(n, "lineno")]
        if not linenos:
            return None
        return (min(linenos), max(linenos))

    def __repr__(self):
        return f"<B{self.index} stmts={len(self.statements)}>"


class CFG:
    """The control-flow graph of one method body."""

    def __init__(self, func_node, blocks, entry, exit_block):
        self.func = func_node
        self.blocks = blocks
        self.entry = entry
        self.exit = exit_block
        self._reachable = None

    def reachable_blocks(self):
        """Blocks reachable from the entry, as a frozenset."""
        if self._reachable is None:
            seen = set()
            stack = [self.entry]
            while stack:
                block = stack.pop()
                if block.index in seen:
                    continue
                seen.add(block.index)
                stack.extend(edge.dst for edge in block.succs)
            self._reachable = frozenset(seen)
        return self._reachable

    def is_reachable(self, block):
        return block.index in self.reachable_blocks()

    def unreachable_statements(self):
        """Statements sitting in blocks no path from the entry reaches."""
        reachable = self.reachable_blocks()
        dead = []
        for block in self.blocks:
            if block.index in reachable:
                continue
            dead.extend(
                s for s in block.statements
                if not isinstance(s, (ast.For, ast.ExceptHandler))
            )
        return dead

    def edges(self):
        for block in self.blocks:
            yield from block.succs

    def render(self):
        """Human-readable block/edge listing (``repro lint --explain-cfg``)."""
        lines = [
            f"cfg: {len(self.blocks)} blocks, entry=B{self.entry.index}, "
            f"exit=B{self.exit.index}"
        ]
        reachable = self.reachable_blocks()
        for block in self.blocks:
            span = block.lines
            where = f"lines {span[0]}-{span[1]}" if span else "empty"
            dead = "" if block.index in reachable else "  (unreachable)"
            lines.append(f"  B{block.index}: {where}{dead}")
            if block.test is not None:
                try:
                    text = ast.unparse(block.test)
                except Exception:  # pragma: no cover - unparse is total on 3.9+
                    text = "<test>"
                lines.append(f"    test: {text}")
            for edge in block.succs:
                tag = f" [{edge.label}]" if edge.label else ""
                lines.append(f"    -> B{edge.dst.index}{tag}")
        return "\n".join(lines)


_CONST_TRUE = object()
_CONST_FALSE = object()


def _constant_truth(test):
    """_CONST_TRUE/_CONST_FALSE for literal tests, else None."""
    if isinstance(test, ast.Constant):
        return _CONST_TRUE if test.value else _CONST_FALSE
    return None


class _Builder:
    def __init__(self, func_node):
        self.func = func_node
        self.blocks = []
        self.entry = self._new_block()
        self.exit = self._new_block()
        #: (continue_target, break_target) per enclosing loop.
        self.loop_stack = []
        #: handler entry-block lists per enclosing ``try`` (for ``raise``).
        self.handler_stack = []

    def _new_block(self):
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block

    def _link(self, src, dst, label=ALWAYS):
        edge = Edge(src, dst, label)
        src.succs.append(edge)
        dst.preds.append(edge)

    def build(self):
        end = self._visit_body(self.func.body, self.entry)
        if end is not None:
            self._link(end, self.exit)
        return CFG(self.func, self.blocks, self.entry, self.exit)

    # -- statement dispatch -------------------------------------------------

    def _visit_body(self, body, current):
        """Thread ``body`` through the graph; returns the open end block.

        A ``None`` return means every path out of the body jumped away
        (returned, raised, broke...); statements after such a jump are
        placed in a fresh block with no incoming edges so they still show
        up — as unreachable code.
        """
        for stmt in body:
            if current is None:
                current = self._new_block()  # unreachable continuation
            if isinstance(stmt, ast.If):
                current = self._visit_if(stmt, current)
            elif isinstance(stmt, ast.While):
                current = self._visit_while(stmt, current)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                current = self._visit_for(stmt, current)
            elif isinstance(stmt, ast.Try):
                current = self._visit_try(stmt, current)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                current.statements.append(stmt)
                current = self._visit_body(stmt.body, current)
            elif _is_match(stmt):
                current = self._visit_match(stmt, current)
            elif isinstance(stmt, ast.Return):
                current.statements.append(stmt)
                self._link(current, self.exit)
                current = None
            elif isinstance(stmt, ast.Raise):
                current.statements.append(stmt)
                self._link_raise(current)
                current = None
            elif isinstance(stmt, ast.Break):
                current.statements.append(stmt)
                if self.loop_stack:
                    self._link(current, self.loop_stack[-1][1])
                else:  # pragma: no cover - syntactically invalid source
                    self._link(current, self.exit)
                current = None
            elif isinstance(stmt, ast.Continue):
                current.statements.append(stmt)
                if self.loop_stack:
                    self._link(current, self.loop_stack[-1][0])
                else:  # pragma: no cover - syntactically invalid source
                    self._link(current, self.exit)
                current = None
            else:
                current.statements.append(stmt)
        return current

    def _link_raise(self, block):
        """A raise flows to the innermost handlers, else out of the method."""
        if self.handler_stack:
            for handler_entry in self.handler_stack[-1]:
                self._link(block, handler_entry, EXCEPT)
        else:
            self._link(block, self.exit, EXCEPT)

    def _visit_if(self, stmt, current):
        current.test = stmt.test
        join = None
        truth = _constant_truth(stmt.test)
        if truth is not _CONST_FALSE:
            then_entry = self._new_block()
            self._link(current, then_entry, TRUE)
            then_end = self._visit_body(stmt.body, then_entry)
            if then_end is not None:
                join = join or self._new_block()
                self._link(then_end, join)
        if truth is not _CONST_TRUE:
            if stmt.orelse:
                else_entry = self._new_block()
                self._link(current, else_entry, FALSE)
                else_end = self._visit_body(stmt.orelse, else_entry)
                if else_end is not None:
                    join = join or self._new_block()
                    self._link(else_end, join)
            else:
                join = join or self._new_block()
                self._link(current, join, FALSE)
        return join

    def _visit_while(self, stmt, current):
        header = self._new_block()
        self._link(current, header)
        header.test = stmt.test
        after = self._new_block()
        truth = _constant_truth(stmt.test)
        if truth is not _CONST_FALSE:
            body_entry = self._new_block()
            self._link(header, body_entry, TRUE)
            self.loop_stack.append((header, after))
            body_end = self._visit_body(stmt.body, body_entry)
            self.loop_stack.pop()
            if body_end is not None:
                self._link(body_end, header)
        if truth is not _CONST_TRUE:
            if stmt.orelse:
                else_entry = self._new_block()
                self._link(header, else_entry, FALSE)
                else_end = self._visit_body(stmt.orelse, else_entry)
                if else_end is not None:
                    self._link(else_end, after)
            else:
                self._link(header, after, FALSE)
        return after

    def _visit_for(self, stmt, current):
        header = self._new_block()
        self._link(current, header)
        after = self._new_block()
        body_entry = self._new_block()
        # The For node itself opens the body block: it stands for "bind the
        # loop target to the next item" on each iteration.
        body_entry.statements.append(stmt)
        self._link(header, body_entry, LOOP)
        self.loop_stack.append((header, after))
        body_end = self._visit_body(stmt.body, body_entry)
        self.loop_stack.pop()
        if body_end is not None:
            self._link(body_end, header)
        if stmt.orelse:
            else_entry = self._new_block()
            self._link(header, else_entry, FALSE)
            else_end = self._visit_body(stmt.orelse, else_entry)
            if else_end is not None:
                self._link(else_end, after)
        else:
            self._link(header, after, FALSE)
        return after

    def _visit_try(self, stmt, current):
        body_entry = self._new_block()
        self._link(current, body_entry)
        handler_entries = [self._new_block() for _ in stmt.handlers]
        for handler, entry in zip(stmt.handlers, handler_entries):
            # The handler node marks the `except E as name` binding.
            entry.statements.append(handler)

        first_body_block = len(self.blocks)
        self.handler_stack.append(handler_entries)
        body_end = self._visit_body(stmt.body, body_entry)
        self.handler_stack.pop()
        # Any statement inside the try may raise: give the entry block and
        # every block materialized while building the body an edge to each
        # handler (an over-approximation — more paths, never fewer).
        body_blocks = [body_entry] + self.blocks[first_body_block:]
        for block in body_blocks:
            for entry in handler_entries:
                if block is not entry:
                    self._link(block, entry, EXCEPT)

        after = self._new_block()
        if stmt.orelse:
            if body_end is not None:
                else_entry = self._new_block()
                self._link(body_end, else_entry)
                else_end = self._visit_body(stmt.orelse, else_entry)
                if else_end is not None:
                    self._link(else_end, after)
        elif body_end is not None:
            self._link(body_end, after)
        for handler, entry in zip(stmt.handlers, handler_entries):
            handler_end = self._visit_body(handler.body, entry)
            if handler_end is not None:
                self._link(handler_end, after)
        if stmt.finalbody:
            final_entry = self._new_block()
            self._link(after, final_entry)
            return self._visit_body(stmt.finalbody, final_entry)
        return after

    def _visit_match(self, stmt, current):
        current.statements.append(_MatchSubject(stmt))
        join = self._new_block()
        for case in stmt.cases:
            case_entry = self._new_block()
            self._link(current, case_entry, TRUE)
            case_end = self._visit_body(case.body, case_entry)
            if case_end is not None:
                self._link(case_end, join)
        self._link(current, join, FALSE)  # no case matched
        return join


class _MatchSubject:
    """Placeholder statement for a ``match`` subject expression (3.10+)."""

    def __init__(self, node):
        self.node = node
        self.lineno = node.lineno


def _is_match(stmt):
    match_type = getattr(ast, "Match", None)
    return match_type is not None and isinstance(stmt, match_type)


def build_cfg(func_node):
    """Build the :class:`CFG` for one ``ast.FunctionDef``."""
    return _Builder(func_node).build()
