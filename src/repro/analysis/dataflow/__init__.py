"""repro.analysis.dataflow: CFG + dataflow analyses for graft-lint.

:class:`MethodDataflow` bundles everything the dataflow-powered rules
(GL009–GL015) consume for one method scope:

- a :class:`~repro.analysis.dataflow.cfg.CFG` of the method body,
- reaching definitions (GL009 use-before-def),
- liveness (dead stores),
- an interval abstract interpretation tracking ``ctx.superstep`` (phase
  inference, GL010/GL013/GL014),
- :class:`~repro.analysis.dataflow.phases.PhaseFacts` — interval-stamped
  send/halt/read/aggregator sites.

All passes are lazy: a rule that only needs the CFG never pays for the
interval fixpoint.
"""

import ast

from repro.analysis.dataflow.cfg import CFG, BasicBlock, build_cfg
from repro.analysis.dataflow.intervals import (
    NON_NEGATIVE,
    Interval,
    IntervalAnalysis,
)
from repro.analysis.dataflow.liveness import Liveness
from repro.analysis.dataflow.phases import PhaseFacts
from repro.analysis.dataflow.reachdef import (
    UNDEF,
    ReachingDefinitions,
    evaluated_roots,
    iter_immediate_nodes,
)
from repro.analysis.dataflow.solver import solve

__all__ = [
    "CFG",
    "BasicBlock",
    "build_cfg",
    "solve",
    "Interval",
    "IntervalAnalysis",
    "Liveness",
    "ReachingDefinitions",
    "UNDEF",
    "PhaseFacts",
    "MethodDataflow",
]


class MethodDataflow:
    """Lazily-computed dataflow facts for one method scope."""

    def __init__(self, scope, interproc=None):
        self.scope = scope
        #: The class-level interprocedural bundle (call graph + callee
        #: summaries), or None. When present, the interval pass resolves
        #: helper-call return values and :class:`PhaseFacts` propagates
        #: callee effects to their call sites.
        self.interproc = interproc
        self.cfg = build_cfg(scope.node)
        self._reaching = None
        self._liveness = None
        self._intervals = None
        self._phases = None
        self._owners = None

    # -- passes -------------------------------------------------------------

    @property
    def reaching(self):
        if self._reaching is None:
            self._reaching = ReachingDefinitions(self.cfg)
        return self._reaching

    @property
    def liveness(self):
        if self._liveness is None:
            self._liveness = Liveness(self.cfg)
        return self._liveness

    @property
    def intervals(self):
        if self._intervals is None:
            call_intervals = None
            if self.interproc is not None:
                interproc, scope = self.interproc, self.scope

                def call_intervals(call_node, target):
                    return interproc.return_interval_for(
                        scope, call_node, target
                    )

            self._intervals = IntervalAnalysis(
                self.cfg, self.scope, call_intervals=call_intervals
            )
        return self._intervals

    @property
    def phases(self):
        if self._phases is None:
            self._phases = PhaseFacts(self.scope, self)
        return self._phases

    # -- node -> statement resolution ---------------------------------------

    def _owner_map(self):
        """Map every immediately-evaluated AST node to its CFG position.

        Values are ``("stmt", statement)`` or ``("test", block)``. Nodes
        inside nested function/lambda bodies are deliberately absent —
        their execution time is unknown.
        """
        if self._owners is None:
            owners = {}
            for block in self.cfg.blocks:
                for stmt in block.statements:
                    for root in evaluated_roots(stmt):
                        for node in iter_immediate_nodes(root):
                            owners[id(node)] = ("stmt", stmt)
                if block.test is not None:
                    for node in iter_immediate_nodes(block.test):
                        owners[id(node)] = ("test", block)
            self._owners = owners
        return self._owners

    def site_state(self, node):
        """``(status, state)`` for the program point evaluating ``node``.

        status is "ok" (state is the abstract state there), "dead" (the
        site can never execute), or "unknown" (the node's position could
        not be resolved — nested function bodies).
        """
        where = self._owner_map().get(id(node))
        if where is None:
            return ("unknown", None)
        kind, anchor = where
        state = (
            self.intervals.state_before(anchor)
            if kind == "stmt"
            else self.intervals.solution[anchor.index][1]
        )
        if state is None:
            return ("dead", None)
        return ("ok", state)

    def superstep_at_node(self, node):
        """Superstep interval when ``node`` evaluates.

        None means the node sits on a statically-dead path (unreachable
        block, or a branch the interval analysis proved never taken). A
        node whose position is unknown (nested function bodies) gets the
        trivially-sound ``[0, +inf]``.
        """
        where = self._owner_map().get(id(node))
        if where is None:
            return NON_NEGATIVE
        kind, anchor = where
        if kind == "stmt":
            return self.intervals.superstep_at(anchor)
        state = self.intervals.solution[anchor.index][1]
        if state is None:
            return None
        from repro.analysis.dataflow.intervals import SUPERSTEP_KEY

        return state.get(SUPERSTEP_KEY).meet(NON_NEGATIVE) or NON_NEGATIVE

    def node_reachable(self, node):
        return self.superstep_at_node(node) is not None

    def always_executes(self, node):
        """True when every entry-to-exit path evaluates ``node``.

        CFG-proven: there is no path from the entry to the exit avoiding
        the block(s) that evaluate the node. Used by GL025 to prove a
        recursive call unconditional (the function can never return
        without recursing).
        """
        where = self._owner_map().get(id(node))
        if where is None:
            return False
        kind, anchor = where
        if kind == "stmt":
            avoid = {
                block.index
                for block in self.cfg.blocks
                if any(stmt is anchor for stmt in block.statements)
            }
        else:
            avoid = {anchor.index}
        if not avoid:
            return False
        seen = set()
        stack = [self.cfg.entry]
        while stack:
            block = stack.pop()
            if block.index in seen or block.index in avoid:
                continue
            seen.add(block.index)
            if block is self.cfg.exit:
                return False  # the exit is reachable without the node
            stack.extend(edge.dst for edge in block.succs)
        return True

    def message_read_nodes(self):
        """Every load of the messages parameter (or a message alias)."""
        names = set(self.scope.message_aliases)
        if self.scope.messages_name is not None:
            names.add(self.scope.messages_name)
        if not names:
            return []
        return [
            node
            for node in ast.walk(self.scope.node)
            if isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id in names
        ]

    # -- rendering ----------------------------------------------------------

    def explain(self):
        """Human-readable CFG + phase summary (``--explain-cfg``)."""
        lines = [f"method {self.scope.class_name}.{self.scope.name}:"]
        lines.append(_indent(self.cfg.render()))
        phase_lines = []
        for label, facts in (
            ("send", self.phases.sends),
            ("halt", self.phases.halts),
            ("read messages", self.phases.message_reads),
            ("aggregate", [f for _, f in self.phases.aggregate_writes]),
            ("read aggregator", [f for _, f in self.phases.aggregate_reads]),
        ):
            for fact in facts:
                stamp = (
                    f"superstep in {fact.interval!r}"
                    if fact.reachable
                    else "UNREACHABLE"
                )
                via = f" (via {fact.via})" if fact.via else ""
                phase_lines.append(f"{label} @ line {fact.line}: {stamp}{via}")
        if phase_lines:
            lines.append("  phase facts:")
            lines.extend(f"    {text}" for text in phase_lines)
        # Imported lazily: determinism sits above scopes, next to rules.
        from repro.analysis.determinism import determinism_fact_lines

        det_lines = determinism_fact_lines(self.scope, dataflow=self)
        if det_lines:
            lines.append("  determinism facts:")
            lines.extend(f"    {text}" for text in det_lines)
        dead = self.cfg.unreachable_statements()
        if dead:
            dead_lines = sorted({s.lineno for s in dead if hasattr(s, "lineno")})
            lines.append(
                "  unreachable statements at lines: "
                + ", ".join(str(n) for n in dead_lines)
            )
        return "\n".join(lines)


def _indent(text):
    return "\n".join(f"  {line}" for line in text.splitlines())
