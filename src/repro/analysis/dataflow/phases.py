"""Per-phase behavior inferred from superstep intervals.

Vertex programs are usually phased: ``if ctx.superstep == 0: scatter``,
``else: gather``. The interval analysis knows the possible values of
``ctx.superstep`` at every statement, so each interesting call site — a
send, a halt, a message read, aggregator traffic — can be stamped with
the supersteps at which it can actually execute. Rules compare these
stamps: a message sent in superstep ``s`` is delivered in ``s + 1``, so a
send whose shifted interval misses every read interval is dead (GL010); a
``vote_to_halt`` whose interval is empty sits on a proven-dead path
(GL014).

When the owning :class:`MethodDataflow` carries an interprocedural
bundle, facts *propagate through calls*: ``compute`` calling
``self._relax(ctx, best)`` gains a send fact at the call line, stamped
with the meet of the call site's interval and the callee's own stamp
(``ctx.superstep`` is the same value in both frames, so the meet is
sound). Cycles in the call graph truncate cleanly — the missing effects
only make the facts *less* complete, never wrong.
"""

from repro.analysis.dataflow.intervals import NON_NEGATIVE


class SiteFact:
    """One call/read site annotated with its superstep interval.

    ``interval`` is None when the site is statically unreachable (dead
    code, or an interval-proven dead branch); otherwise an over-
    approximation of ``ctx.superstep`` whenever the site executes.

    For send facts, ``payload`` is the payload expression node and
    ``payload_scope`` the MethodScope whose body owns it (the callee's,
    for propagated facts). ``via`` names the summarized callee a
    propagated fact came through, or None for a direct site.
    """

    __slots__ = ("node", "line", "interval", "payload", "payload_scope", "via")

    def __init__(self, node, line, interval, payload=None,
                 payload_scope=None, via=None):
        self.node = node
        self.line = line
        self.interval = interval
        self.payload = payload
        self.payload_scope = payload_scope
        self.via = via

    @property
    def reachable(self):
        return self.interval is not None

    def __repr__(self):
        tag = f" via {self.via}" if self.via else ""
        return f"<site line={self.line} superstep={self.interval!r}{tag}>"


def send_payload(call_node, target):
    """The payload expression of a send call, or None.

    ``send_message(target, value)`` carries it second;
    ``send_message_to_all_neighbors(value)`` first.
    """
    tail = target.rsplit(".", 1)[-1]
    args = call_node.args
    if tail == "send_message":
        return args[1] if len(args) > 1 else None
    return args[0] if args else None


class PhaseFacts:
    """Interval-stamped call sites of one method scope."""

    def __init__(self, scope, dataflow):
        self.scope = scope
        self.sends = [
            _fact(call.node, call.line, dataflow,
                  payload=send_payload(call.node, call.target),
                  payload_scope=scope)
            for call in scope.ctx_calls(
                "send_message", "send_message_to_all_neighbors"
            )
        ]
        self.halts = [
            _fact(call.node, call.line, dataflow)
            for call in scope.ctx_calls("vote_to_halt")
        ]
        #: (name_argument_node, SiteFact) pairs — rules resolve the name
        #: through ClassContext.resolve_constant.
        self.aggregate_writes = [
            (call.node.args[0] if call.node.args else None,
             _fact(call.node, call.line, dataflow))
            for call in scope.ctx_calls("aggregate")
        ]
        self.aggregate_reads = [
            (call.node.args[0] if call.node.args else None,
             _fact(call.node, call.line, dataflow))
            for call in scope.ctx_calls("aggregated_value")
        ]
        self.message_reads = [
            _fact(node, node.lineno, dataflow)
            for node in dataflow.message_read_nodes()
        ]
        self._propagate(scope, dataflow)

    def _propagate(self, scope, dataflow):
        """Fold summarized callee effects in at their call sites."""
        interproc = getattr(dataflow, "interproc", None)
        if interproc is None:
            return
        for call in scope.calls:
            key = interproc.resolve(scope, call)
            if key is None:
                continue
            summary = interproc.summary(key)
            if summary is None or not summary.effects:
                continue
            site_interval = dataflow.superstep_at_node(call.node)
            via = summary.describe()
            for eff in summary.effects:
                if site_interval is None:
                    interval = None  # the call site itself is dead
                elif eff.interval is None:
                    interval = site_interval  # callee stamp unknown
                else:
                    # May be None: the callee's own phase guard can be
                    # infeasible from this call site — a genuinely dead
                    # propagated fact.
                    interval = site_interval.meet(eff.interval)
                fact = SiteFact(
                    call.node, call.line, interval,
                    payload=eff.payload,
                    payload_scope=eff.scope,
                    via=via,
                )
                if eff.kind == "send":
                    self.sends.append(fact)
                elif eff.kind == "halt":
                    self.halts.append(fact)
                elif eff.kind == "message_read":
                    self.message_reads.append(fact)
                elif eff.kind == "aggregate_write":
                    self.aggregate_writes.append((eff.agg_name_node, fact))
                elif eff.kind == "aggregate_read":
                    self.aggregate_reads.append((eff.agg_name_node, fact))

    def send_intervals(self):
        return [fact.interval for fact in self.sends if fact.reachable]

    def read_intervals(self):
        return [fact.interval for fact in self.message_reads if fact.reachable]

    def reachable_halts(self):
        return [fact for fact in self.halts if fact.reachable]


def _fact(node, line, dataflow, payload=None, payload_scope=None):
    interval = dataflow.superstep_at_node(node)
    return SiteFact(node, line, interval, payload=payload,
                    payload_scope=payload_scope)


def join_intervals(intervals):
    """The union hull of several intervals, or None for an empty list."""
    merged = None
    for interval in intervals:
        merged = interval if merged is None else merged.join(interval)
    return merged


def delivery_interval(send_interval):
    """Messages sent at superstep ``s`` arrive at ``s + 1``."""
    return send_interval.shift(1).meet(NON_NEGATIVE.shift(1)) or send_interval.shift(1)
