"""Per-phase behavior inferred from superstep intervals.

Vertex programs are usually phased: ``if ctx.superstep == 0: scatter``,
``else: gather``. The interval analysis knows the possible values of
``ctx.superstep`` at every statement, so each interesting call site — a
send, a halt, a message read, aggregator traffic — can be stamped with
the supersteps at which it can actually execute. Rules compare these
stamps: a message sent in superstep ``s`` is delivered in ``s + 1``, so a
send whose shifted interval misses every read interval is dead (GL010); a
``vote_to_halt`` whose interval is empty sits on a proven-dead path
(GL014).
"""

from repro.analysis.dataflow.intervals import NON_NEGATIVE


class SiteFact:
    """One call/read site annotated with its superstep interval.

    ``interval`` is None when the site is statically unreachable (dead
    code, or an interval-proven dead branch); otherwise an over-
    approximation of ``ctx.superstep`` whenever the site executes.
    """

    __slots__ = ("node", "line", "interval")

    def __init__(self, node, line, interval):
        self.node = node
        self.line = line
        self.interval = interval

    @property
    def reachable(self):
        return self.interval is not None

    def __repr__(self):
        return f"<site line={self.line} superstep={self.interval!r}>"


class PhaseFacts:
    """Interval-stamped call sites of one method scope."""

    def __init__(self, scope, dataflow):
        self.scope = scope
        self.sends = [
            _fact(call.node, call.line, dataflow)
            for call in scope.ctx_calls(
                "send_message", "send_message_to_all_neighbors"
            )
        ]
        self.halts = [
            _fact(call.node, call.line, dataflow)
            for call in scope.ctx_calls("vote_to_halt")
        ]
        #: (name_argument_node, SiteFact) pairs — rules resolve the name
        #: through ClassContext.resolve_constant.
        self.aggregate_writes = [
            (call.node.args[0] if call.node.args else None,
             _fact(call.node, call.line, dataflow))
            for call in scope.ctx_calls("aggregate")
        ]
        self.aggregate_reads = [
            (call.node.args[0] if call.node.args else None,
             _fact(call.node, call.line, dataflow))
            for call in scope.ctx_calls("aggregated_value")
        ]
        self.message_reads = [
            _fact(node, node.lineno, dataflow)
            for node in dataflow.message_read_nodes()
        ]

    def send_intervals(self):
        return [fact.interval for fact in self.sends if fact.reachable]

    def read_intervals(self):
        return [fact.interval for fact in self.message_reads if fact.reachable]

    def reachable_halts(self):
        return [fact for fact in self.halts if fact.reachable]


def _fact(node, line, dataflow):
    interval = dataflow.superstep_at_node(node)
    return SiteFact(node, line, interval)


def join_intervals(intervals):
    """The union hull of several intervals, or None for an empty list."""
    merged = None
    for interval in intervals:
        merged = interval if merged is None else merged.join(interval)
    return merged


def delivery_interval(send_interval):
    """Messages sent at superstep ``s`` arrive at ``s + 1``."""
    return send_interval.shift(1).meet(NON_NEGATIVE.shift(1)) or send_interval.shift(1)
