"""Reaching definitions over a method CFG.

Tracks, for every local name, which definition sites can reach each use.
A synthetic ``UNDEF`` definition enters at the CFG entry for every local
that is not a parameter; a use reached *only* by ``UNDEF`` is definitely
unbound (``UnboundLocalError``), a use reached by ``UNDEF`` among real
definitions is possibly unbound — the distinction behind GL009's
``proven`` vs ``likely`` confidence.

Comprehension targets and lambda parameters live in their own Python
scopes and are excluded from tracking entirely; loads inside nested
``def``/``lambda`` bodies are deferred to call time and are not treated
as uses at the definition site.
"""

import ast

from repro.analysis.dataflow.cfg import _MatchSubject
from repro.analysis.dataflow.solver import solve

#: The synthetic "never assigned" definition.
UNDEF = ("<undef>", 0)


def _definition_targets(node):
    """Local names bound by one statement-ish node."""
    names = []
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            names.extend(_flatten_target(target))
    elif isinstance(node, (ast.For, ast.AsyncFor)):
        names.extend(_flatten_target(node.target))
    elif isinstance(node, (ast.With, ast.AsyncWith)):
        for item in node.items:
            if item.optional_vars is not None:
                names.extend(_flatten_target(item.optional_vars))
    elif isinstance(node, ast.ExceptHandler):
        if node.name:
            names.append(node.name)
    elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        names.append(node.name)
    elif isinstance(node, (ast.Import, ast.ImportFrom)):
        for alias in node.names:
            names.append((alias.asname or alias.name).split(".")[0])
    return names


def _flatten_target(target):
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names = []
        for element in target.elts:
            names.extend(_flatten_target(element))
        return names
    if isinstance(target, ast.Starred):
        return _flatten_target(target.value)
    return []  # attribute / subscript stores are not local bindings


def evaluated_roots(stmt):
    """The expressions one block-statement evaluates *at its own site*.

    Compound statements carry their bodies in the AST but those bodies
    occupy their own CFG blocks; only the header expressions count here.
    """
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    if isinstance(stmt, _MatchSubject):
        return [stmt.node.subject]
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return list(stmt.decorator_list)
    return [stmt]


def iter_immediate_nodes(root):
    """Walk ``root`` skipping nested function/lambda bodies (deferred).

    The nested def/lambda node itself IS yielded — it executes (and binds
    its name) at the enclosing scope's site — but its body is not.
    """
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        if node is not root and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _comprehension_scoped_names(func_node):
    """Names bound as comprehension/lambda targets — separate scopes."""
    scoped = set()
    for node in ast.walk(func_node):
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            for generator in node.generators:
                scoped.update(_flatten_target(generator.target))
        elif isinstance(node, ast.Lambda):
            scoped.update(a.arg for a in node.args.args)
    return scoped


def _declared_nonlocal(func_node):
    names = set()
    for node in ast.walk(func_node):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            names.update(node.names)
    return names


class ReachingDefinitions:
    """Forward may-analysis: name -> frozenset of reaching def sites.

    A definition site is ``(lineno, col_offset)`` of the binding node, or
    ``("<param>", name)`` for parameters, or :data:`UNDEF`.
    """

    def __init__(self, cfg):
        self.cfg = cfg
        func = cfg.func
        escape = _comprehension_scoped_names(func) | _declared_nonlocal(func)
        params = [
            a.arg
            for a in (
                list(getattr(func.args, "posonlyargs", []))
                + list(func.args.args)
                + list(func.args.kwonlyargs)
            )
        ]
        if func.args.vararg:
            params.append(func.args.vararg.arg)
        if func.args.kwarg:
            params.append(func.args.kwarg.arg)
        self.params = [p for p in params if p not in escape]

        assigned = set()
        for node in iter_immediate_nodes(func):
            if node is func:
                continue  # the method's own def is not one of its locals
            for name in _definition_targets(node):
                assigned.add(name)
            if isinstance(node, ast.NamedExpr) and isinstance(
                node.target, ast.Name
            ):
                assigned.add(node.target.id)
        self.locals = (assigned - escape) - set(self.params)
        self.tracked = self.locals | set(self.params)

        boundary = {name: frozenset([UNDEF]) for name in self.locals}
        for name in self.params:
            boundary[name] = frozenset([("<param>", name)])
        self.solution = solve(
            cfg,
            transfer=self._transfer,
            join=self._join,
            boundary=boundary,
        )

    # -- lattice ------------------------------------------------------------

    def _join(self, states):
        merged = {}
        for state in states:
            for name, defs in state.items():
                merged[name] = merged.get(name, frozenset()) | defs
        return merged

    def _transfer(self, block, state):
        state = dict(state)
        for stmt in block.statements:
            self._apply(stmt, state)
        return state

    def _apply(self, stmt, state):
        for name in self._bindings(stmt):
            state[name] = frozenset([(stmt.lineno, stmt.col_offset)])

    def _bindings(self, stmt):
        names = [n for n in _definition_targets(stmt) if n in self.tracked]
        for root in evaluated_roots(stmt):
            for node in iter_immediate_nodes(root):
                if isinstance(node, ast.NamedExpr) and isinstance(
                    node.target, ast.Name
                ):
                    if node.target.id in self.tracked:
                        names.append(node.target.id)
        return names

    # -- queries ------------------------------------------------------------

    def state_into(self, block):
        """The name->defs map entering ``block`` (None if unreachable)."""
        return self.solution[block.index][0]

    def uses_with_states(self):
        """Yield ``(name_node, reaching_defs)`` for every local-name load.

        Within a block the state is replayed statement by statement, with
        a statement's own loads evaluated before its bindings take effect
        (``x = x + 1`` reads the old ``x``).
        """
        for block in self.cfg.blocks:
            if not self.cfg.is_reachable(block):
                continue
            state = self.state_into(block)
            if state is None:
                continue
            state = dict(state)
            for stmt in block.statements:
                for node in self._loads_in(stmt):
                    yield node, state.get(node.id, frozenset())
                self._apply(stmt, state)
            if block.test is not None:
                for node in self._loads_in_expr(block.test):
                    yield node, state.get(node.id, frozenset())

    def _loads_in(self, stmt):
        # `x += 1` reads the old x, but its target carries a Store ctx.
        if (
            isinstance(stmt, ast.AugAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id in self.tracked
        ):
            yield stmt.target
        for root in evaluated_roots(stmt):
            yield from self._loads_in_expr(root)

    def _loads_in_expr(self, node):
        for child in iter_immediate_nodes(node):
            if (
                isinstance(child, ast.Name)
                and isinstance(child.ctx, ast.Load)
                and child.id in self.tracked
            ):
                yield child
