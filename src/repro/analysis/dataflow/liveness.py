"""Live-variable analysis (backward) over a method CFG.

A local is live at a point when some path from that point reads it before
writing it. Used by ``repro lint --explain-cfg`` to show which values each
branch actually carries forward, and by rules to tell a dead store from a
meaningful one.
"""

import ast

from repro.analysis.dataflow.reachdef import (
    _definition_targets,
    evaluated_roots,
    iter_immediate_nodes,
)
from repro.analysis.dataflow.solver import solve


class Liveness:
    """Backward may-analysis: the set of names live at each block edge."""

    def __init__(self, cfg, tracked=None):
        self.cfg = cfg
        if tracked is None:
            tracked = set()
            for node in iter_immediate_nodes(cfg.func):
                if node is cfg.func:
                    continue
                tracked.update(_definition_targets(node))
        self.tracked = set(tracked)
        self.solution = solve(
            cfg,
            direction="backward",
            transfer=self._transfer,
            join=self._join,
            boundary=frozenset(),
            init=frozenset(),
        )

    def _join(self, states):
        merged = frozenset()
        for state in states:
            merged |= state
        return merged

    def _transfer(self, block, live):
        live = set(live)
        if block.test is not None:
            live |= self._uses(block.test)
        for stmt in reversed(block.statements):
            live -= set(self._defs(stmt))
            live |= self._stmt_uses(stmt)
        return frozenset(live)

    def _defs(self, stmt):
        return [n for n in _definition_targets(stmt) if n in self.tracked]

    def _stmt_uses(self, stmt):
        uses = set()
        if isinstance(stmt, ast.AugAssign):
            # `x += 1` reads x as well as writing it.
            uses.update(
                n for n in _flatten_loadable(stmt.target) if n in self.tracked
            )
        for root in evaluated_roots(stmt):
            uses |= self._uses(root)
        return uses

    def _uses(self, node):
        found = set()
        for child in iter_immediate_nodes(node):
            if (
                isinstance(child, ast.Name)
                and isinstance(child.ctx, ast.Load)
                and child.id in self.tracked
            ):
                found.add(child.id)
        return found

    # -- queries ------------------------------------------------------------

    def live_out(self, block):
        """Names live when control leaves ``block`` (execution order)."""
        state = self.solution[block.index][0]
        return state if state is not None else frozenset()

    def live_in(self, block):
        """Names live when control enters ``block`` (execution order)."""
        state = self.solution[block.index][1]
        return state if state is not None else frozenset()

    def dead_stores(self):
        """``(name, lineno)`` for assignments whose value is never read.

        Per-block linear sweep: a store is dead when the name is not live
        immediately after the storing statement. Augmented assignments are
        exempt (they read the name themselves).
        """
        dead = []
        for block in self.cfg.blocks:
            if not self.cfg.is_reachable(block):
                continue
            live = set(self.live_out(block))
            if block.test is not None:
                live |= self._uses(block.test)
            for stmt in reversed(block.statements):
                if isinstance(stmt, ast.Assign):
                    for name in self._defs(stmt):
                        if name not in live:
                            dead.append((name, stmt.lineno))
                live -= set(self._defs(stmt))
                live |= self._stmt_uses(stmt)
        return sorted(dead, key=lambda pair: (pair[1], pair[0]))


def _flatten_loadable(target):
    if isinstance(target, ast.Name):
        return [target.id]
    return []
