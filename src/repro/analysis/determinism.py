"""Order-sensitivity facts for the determinism rule pack (GL016–GL020).

The Pregel contract gives ``compute()`` its inbox as an unordered bag:
the model promises *which* messages arrive, never in *what order*. Code
whose result depends on that order — a non-commutative fold, first/last
message special-casing, iteration over an unordered container — is the
classic cross-system heisenbug (Ammar & Özsu measure delivery order as
the main source of cross-system variance). This module distills the
order-sensitive sites of one :class:`~repro.analysis.scopes.MethodScope`
into plain fact records; the GL016–GL020 rules and the
``--explain-cfg`` renderer consume them, and the runtime sanitizer
(:mod:`repro.graft.sanitizer`) confirms or refutes the resulting
predictions by permuting real inboxes.

Fact extraction is deliberately syntactic and conservative: only loops
of the exact shape ``for <name> in <messages-param>`` are treated as
message folds, mirroring the alias tracking in
:mod:`repro.analysis.scopes`.
"""

import ast
from dataclasses import dataclass

from repro.analysis.scopes import dotted_name, iter_statements

#: Fold operators whose result is independent of operand order (on exact
#: values — floats are only *commutative*, not associative, which is why
#: GL018 exists as a separate, likely-only rule).
COMMUTATIVE_FOLD_OPS = {
    ast.Add: "+",
    ast.Mult: "*",
    ast.BitOr: "|",
    ast.BitAnd: "&",
    ast.BitXor: "^",
}

#: Fold operators proven order-dependent: folding a bag of messages with
#: any of these yields different results under different delivery orders.
NONCOMMUTATIVE_FOLD_OPS = {
    ast.Sub: "-",
    ast.Div: "/",
    ast.FloorDiv: "//",
    ast.Mod: "%",
    ast.Pow: "**",
    ast.LShift: "<<",
    ast.RShift: ">>",
}


def classify_fold_op(op):
    """``"commutative"``, ``"noncommutative"``, or ``"unknown"``.

    ``op`` is an :mod:`ast` operator node or operator class (e.g.
    ``ast.Add``). Comparison-style reductions (``min``/``max``) never
    appear as binary operators; they classify as order-free at the call
    level in :func:`message_fold_sites` by simply not being folds.
    """
    kind = op if isinstance(op, type) else type(op)
    if kind in COMMUTATIVE_FOLD_OPS:
        return "commutative"
    if kind in NONCOMMUTATIVE_FOLD_OPS:
        return "noncommutative"
    return "unknown"


@dataclass(frozen=True)
class FoldSite:
    """One accumulation over the message loop of a method.

    ``kind`` is ``"augassign"`` (``acc -= m``), ``"binop"``
    (``acc = acc - m``), or ``"last_wins"`` (``acc = m`` — the loop's
    final iteration silently decides the value). ``guard`` describes the
    innermost ``if`` wrapping a last-wins assignment: ``None``
    (unconditional), ``"strict"`` (``<``/``>`` comparison — the min/max
    idiom, order-free on ties-free data), ``"nonstrict"`` (``<=``/``>=``
    — ties resolve to whichever message came *last*), or ``"other"``.
    """

    acc: str           # accumulator variable name
    alias: str         # the loop's message alias
    kind: str          # "augassign" | "binop" | "last_wins"
    op: str            # operator symbol, "" for last_wins
    line: int
    node: object       # the assignment statement
    loop: object       # the enclosing ast.For
    guard: object = None
    float_evidence: bool = False
    string_evidence: bool = False
    escapes: bool = True   # accumulator read after the loop

    @property
    def order_class(self):
        if self.kind == "last_wins":
            return "noncommutative"
        symbol_table = {
            **{v: "commutative" for v in COMMUTATIVE_FOLD_OPS.values()},
            **{v: "noncommutative" for v in NONCOMMUTATIVE_FOLD_OPS.values()},
        }
        return symbol_table.get(self.op, "unknown")

    def describe(self):
        if self.kind == "last_wins":
            shape = f"last-wins `{self.acc} = {self.alias}`"
            if self.guard == "nonstrict":
                shape += " under a non-strict guard"
            elif self.guard == "strict":
                shape += " under a strict min/max guard"
            elif self.guard == "other":
                shape += " under a guard"
        else:
            shape = f"fold `{self.acc} {self.op}= {self.alias}`"
        return shape


@dataclass(frozen=True)
class OrderUse:
    """One place where code depends on message / container ordering."""

    kind: str      # "subscript" | "enumerate" | "next" | "set-iteration"
    line: int
    node: object
    detail: str = ""


@dataclass(frozen=True)
class SharedWrite:
    """One write to state shared across vertices (the GL019 hazard)."""

    kind: str      # "global" | "class-attr" | "closure-mutation"
    name: str
    line: int
    node: object


# ---------------------------------------------------------------------------
# message fold extraction
# ---------------------------------------------------------------------------


def message_loops(scope):
    """Every ``for <name> in <messages-param>`` loop in the method."""
    if scope.messages_name is None:
        return []
    loops = []
    for node in ast.walk(scope.node):
        if (
            isinstance(node, ast.For)
            and isinstance(node.target, ast.Name)
            and isinstance(node.iter, ast.Name)
            and node.iter.id == scope.messages_name
        ):
            loops.append(node)
    return loops


def message_fold_sites(scope):
    """All :class:`FoldSite` records for the method, in source order."""
    sites = []
    for loop in message_loops(scope):
        alias = loop.target.id
        loop_node_ids = {id(n) for n in ast.walk(loop)}
        for stmt in iter_statements(loop.body):
            site = _fold_from_statement(stmt, alias, loop)
            if site is None:
                continue
            site = _with_context(site, scope, loop_node_ids)
            sites.append(site)
    sites.sort(key=lambda s: s.line)
    return sites


def _fold_from_statement(stmt, alias, loop):
    if isinstance(stmt, ast.AugAssign):
        if not isinstance(stmt.target, ast.Name):
            return None
        if alias not in _loaded_names(stmt.value):
            return None
        symbol = _op_symbol(stmt.op)
        if symbol is None:
            return None
        return FoldSite(
            acc=stmt.target.id,
            alias=alias,
            kind="augassign",
            op=symbol,
            line=stmt.lineno,
            node=stmt,
            loop=loop,
        )
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            return None
        acc = target.id
        value = stmt.value
        # acc = acc <op> m  /  acc = m <op> acc — an explicit fold.
        if isinstance(value, ast.BinOp):
            symbol = _op_symbol(value.op)
            names = _loaded_names(value)
            if symbol is not None and alias in names and acc in names:
                return FoldSite(
                    acc=acc,
                    alias=alias,
                    kind="binop",
                    op=symbol,
                    line=stmt.lineno,
                    node=stmt,
                    loop=loop,
                )
            return None
        # acc = m  /  acc = m.attr — last-wins: the final iteration decides.
        root = value
        while isinstance(root, ast.Attribute):
            root = root.value
        if isinstance(root, ast.Name) and root.id == alias:
            return FoldSite(
                acc=acc,
                alias=alias,
                kind="last_wins",
                op="",
                line=stmt.lineno,
                node=stmt,
                loop=loop,
                guard=_guard_kind(stmt, loop),
            )
    return None


def _with_context(site, scope, loop_node_ids):
    """Attach escape / float / string evidence to a raw fold site."""
    escapes = _read_after_loop(scope, site.acc, site.loop, loop_node_ids)
    float_ev, string_ev = _init_evidence(scope, site)
    for node in ast.walk(site.node):
        if isinstance(node, ast.Constant):
            if isinstance(node.value, float):
                float_ev = True
            elif isinstance(node.value, str):
                string_ev = True
        elif isinstance(node, ast.Call):
            if dotted_name(node.func) in ("str", "format", "repr"):
                string_ev = True
            elif dotted_name(node.func) == "float":
                float_ev = True
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            float_ev = True
    return FoldSite(
        acc=site.acc,
        alias=site.alias,
        kind=site.kind,
        op=site.op,
        line=site.line,
        node=site.node,
        loop=site.loop,
        guard=site.guard,
        float_evidence=float_ev,
        string_evidence=string_ev,
        escapes=escapes,
    )


def _init_evidence(scope, site):
    """Float / string evidence from the accumulator's pre-loop init."""
    float_ev = string_ev = False
    for stmt in iter_statements(scope.node.body):
        if stmt is site.loop:
            break
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == site.acc
            and isinstance(stmt.value, ast.Constant)
        ):
            if isinstance(stmt.value.value, float):
                float_ev = True
                string_ev = False
            elif isinstance(stmt.value.value, str):
                string_ev = True
                float_ev = False
            else:
                float_ev = string_ev = False
    return float_ev, string_ev


def _read_after_loop(scope, name, loop, loop_node_ids):
    """Does ``name`` get read outside (textually after) the fold's loop?"""
    for node in ast.walk(scope.node):
        if (
            isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id == name
            and id(node) not in loop_node_ids
            and node.lineno > loop.lineno
        ):
            return True
    return False


def _guard_kind(stmt, loop):
    """Classify the innermost ``if`` between ``loop`` and ``stmt``."""
    guard = _innermost_if(loop, stmt)
    if guard is None:
        return None
    test = guard.test
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        op = test.ops[0]
        if isinstance(op, (ast.Lt, ast.Gt)):
            return "strict"
        if isinstance(op, (ast.LtE, ast.GtE)):
            return "nonstrict"
    return "other"


def _innermost_if(root, stmt):
    """The innermost ``ast.If`` under ``root`` whose body contains ``stmt``."""
    found = None

    def descend(node):
        nonlocal found
        for child in ast.iter_child_nodes(node):
            if child is stmt:
                if isinstance(node, ast.If):
                    found = node
                return True
            if descend(child):
                if isinstance(node, ast.If) and found is None:
                    found = node
                return True
        return False

    descend(root)
    return found


def _op_symbol(op):
    kind = type(op)
    return COMMUTATIVE_FOLD_OPS.get(kind) or NONCOMMUTATIVE_FOLD_OPS.get(kind)


def _loaded_names(expr):
    return {
        node.id
        for node in ast.walk(expr)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
    }


# ---------------------------------------------------------------------------
# messages order / unordered-container iteration
# ---------------------------------------------------------------------------


def messages_order_uses(scope):
    """All :class:`OrderUse` records: positional access + set iteration."""
    uses = []
    messages = scope.messages_name
    for node in ast.walk(scope.node):
        if (
            messages is not None
            and isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == messages
        ):
            uses.append(
                OrderUse(
                    kind="subscript",
                    line=node.lineno,
                    node=node,
                    detail=_subscript_detail(node),
                )
            )
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if (
                messages is not None
                and name == "enumerate"
                and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == messages
            ):
                uses.append(
                    OrderUse(
                        kind="enumerate",
                        line=node.lineno,
                        node=node,
                        detail=f"enumerate({messages})",
                    )
                )
            elif (
                messages is not None
                and name == "next"
                and node.args
                and _is_iter_of_messages(node.args[0], messages)
            ):
                uses.append(
                    OrderUse(
                        kind="next",
                        line=node.lineno,
                        node=node,
                        detail=f"next(iter({messages}))",
                    )
                )
        elif isinstance(node, ast.For) and _is_unordered_iterable(node.iter):
            uses.append(
                OrderUse(
                    kind="set-iteration",
                    line=node.lineno,
                    node=node,
                    detail="loop over an unordered set",
                )
            )
    uses.sort(key=lambda u: u.line)
    return uses


def _subscript_detail(node):
    index = node.slice
    if isinstance(index, ast.Constant):
        return f"messages[{index.value!r}]"
    if (
        isinstance(index, ast.UnaryOp)
        and isinstance(index.op, ast.USub)
        and isinstance(index.operand, ast.Constant)
    ):
        return f"messages[-{index.operand.value!r}]"
    return "messages[...]"


def _is_iter_of_messages(node, messages):
    return (
        isinstance(node, ast.Call)
        and dotted_name(node.func) == "iter"
        and node.args
        and isinstance(node.args[0], ast.Name)
        and node.args[0].id == messages
    )


def _is_unordered_iterable(node):
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and dotted_name(node.func) in ("set", "frozenset")
    )


# ---------------------------------------------------------------------------
# shared mutable state (GL019)
# ---------------------------------------------------------------------------

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append", "add", "extend", "insert", "update", "setdefault",
        "pop", "popitem", "remove", "discard", "clear", "sort", "reverse",
    }
)


def shared_state_writes(scope, class_name=None):
    """All :class:`SharedWrite` records for the method.

    ``class_name`` enables class-attribute detection through the class's
    own name (``Foo.counter = ...``); ``type(self)`` / ``self.__class__``
    are recognized unconditionally.
    """
    writes = []
    declared_global = set()
    for node in ast.walk(scope.node):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            declared_global.update(node.names)
    local_names = _locally_bound_names(scope)

    for node in ast.walk(scope.node):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                write = _classify_write_target(
                    target, scope, class_name, declared_global, local_names
                )
                if write is not None:
                    writes.append(write)
        elif isinstance(node, ast.Call):
            write = _classify_mutating_call(
                node, scope, class_name, local_names
            )
            if write is not None:
                writes.append(write)
    writes.sort(key=lambda w: w.line)
    return writes


def _locally_bound_names(scope):
    bound = {a.arg for a in scope.node.args.args}
    bound.update(a.arg for a in scope.node.args.kwonlyargs)
    for extra in (scope.node.args.vararg, scope.node.args.kwarg):
        if extra is not None:
            bound.add(extra.arg)
    for node in ast.walk(scope.node):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            bound.add(node.id)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
    return bound


def _class_level_root(node, scope, class_name):
    """True when an attribute chain is rooted at the class object."""
    root = node
    while isinstance(root, (ast.Attribute, ast.Subscript)):
        if (
            isinstance(root, ast.Attribute)
            and root.attr == "__class__"
            and isinstance(root.value, ast.Name)
            and root.value.id == scope.self_name
        ):
            return True
        root = root.value
    if isinstance(root, ast.Name):
        return class_name is not None and root.id == class_name
    if isinstance(root, ast.Call):
        return (
            dotted_name(root.func) == "type"
            and len(root.args) == 1
            and isinstance(root.args[0], ast.Name)
            and root.args[0].id == scope.self_name
        )
    return False


def _classify_write_target(target, scope, class_name, declared_global, local):
    if isinstance(target, ast.Name):
        if target.id in declared_global:
            return SharedWrite(
                kind="global",
                name=target.id,
                line=target.lineno,
                node=target,
            )
        return None
    if isinstance(target, (ast.Attribute, ast.Subscript)):
        if _class_level_root(target, scope, class_name):
            return SharedWrite(
                kind="class-attr",
                name=_written_name(target),
                line=target.lineno,
                node=target,
            )
        if isinstance(target, ast.Subscript):
            root = target.value
            while isinstance(root, (ast.Attribute, ast.Subscript)):
                root = root.value
            if (
                isinstance(root, ast.Name)
                and root.id not in local
                and root.id not in (scope.self_name, scope.ctx_name)
            ):
                return SharedWrite(
                    kind="closure-mutation",
                    name=root.id,
                    line=target.lineno,
                    node=target,
                )
    return None


def _classify_mutating_call(node, scope, class_name, local):
    if not isinstance(node.func, ast.Attribute):
        return None
    if node.func.attr not in _MUTATOR_METHODS:
        return None
    receiver = node.func.value
    if _class_level_root(receiver, scope, class_name):
        return SharedWrite(
            kind="class-attr",
            name=_written_name(node.func),
            line=node.lineno,
            node=node,
        )
    root = receiver
    while isinstance(root, (ast.Attribute, ast.Subscript)):
        root = root.value
    if (
        isinstance(root, ast.Name)
        and root.id not in local
        and root.id not in (scope.self_name, scope.ctx_name)
    ):
        return SharedWrite(
            kind="closure-mutation",
            name=root.id,
            line=node.lineno,
            node=node,
        )
    return None


def _written_name(node):
    name = dotted_name(node)
    if name is not None:
        return name
    if isinstance(node, ast.Subscript):
        inner = dotted_name(node.value)
        if inner is not None:
            return f"{inner}[...]"
    if isinstance(node, ast.Attribute):
        return node.attr
    return "<attr>"


# ---------------------------------------------------------------------------
# rendering (``repro lint --explain-cfg``)
# ---------------------------------------------------------------------------


def determinism_fact_lines(scope, dataflow=None):
    """Human-readable determinism facts for the ``--explain-cfg`` view."""
    lines = []
    for site in message_fold_sites(scope):
        stamp = ""
        if dataflow is not None:
            interval = dataflow.superstep_at_node(site.loop.iter)
            stamp = (
                f" (superstep in {interval!r})"
                if interval is not None
                else " (UNREACHABLE)"
            )
        lines.append(
            f"{site.describe()} @ line {site.line}: "
            f"{site.order_class}{stamp}"
        )
    for use in messages_order_uses(scope):
        detail = f" — {use.detail}" if use.detail else ""
        lines.append(f"order use ({use.kind}) @ line {use.line}{detail}")
    return lines
