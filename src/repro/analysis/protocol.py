"""Message-protocol inference: what a class sends vs. how it consumes.

A vertex program's messages form an implicit wire protocol: every send
site commits to a payload shape and a delivery superstep (``s + 1``), and
every consumption site assumes a shape and executes at some superstep.
The intraprocedural passes already stamp the *where/when* —
:class:`~repro.analysis.dataflow.phases.PhaseFacts` carries sends (with
payload expressions, through helpers) and the interval analysis carries
superstep stamps. This module adds the *what*:

- :class:`SendSite` — payload kind (via ``_typekinds`` plus callee
  return-kind summaries) and tuple arity, with the delivery interval;
- :class:`ReceiveSite` — how the inbox is consumed: an arithmetic fold
  (``sum``), a comparison fold (``min``/``max``), iteration with tuple
  unpacking of some arity, per-element arithmetic/subscripts, a length
  or presence test;
- aggregator write/read sites with resolved names.

:meth:`ProtocolTable.conflicts` joins every send against every receive
it can reach (delivery interval intersects the receive's interval) and
reports shape mismatches — ``sum(messages)`` over tuple payloads, tuple
unpacking of the wrong arity, subscripting a float — for GL022.
:meth:`ProtocolTable.phase_gaps` finds sends whose delivery lands
*between* the phases that read (GL023: silently dropped messages), and
:meth:`ProtocolTable.aggregator_hazards` finds aggregators read strictly
before their first barrier-visible write (GL024).

Receives found inside helpers are stamped in the callee frame and then
met with a call-chain context interval (``ctx.superstep`` denotes the
same value in every frame), so a helper only consulted in phase 1 does
not claim to consume phase-0 deliveries.
"""

import ast
from dataclasses import dataclass, field

from repro.analysis.dataflow.intervals import NON_NEGATIVE
from repro.analysis.dataflow.phases import delivery_interval, join_intervals
from repro.analysis.interproc import _ENTRY_METHODS
from repro.analysis.rules._typekinds import expr_kind, value_kind

#: Whole-inbox folds that add elements together — numeric payloads only.
_FOLD_ARITH = {"sum", "fsum"}
#: Whole-inbox folds that only compare elements — any orderable payload.
_FOLD_COMPARE = {"min", "max", "sorted"}
#: Whole-inbox uses that never look inside an element.
_COLLECT = {
    "len", "list", "tuple", "set", "frozenset", "any", "all", "iter",
    "enumerate", "reversed", "count",
}
#: Per-element coercions that require a numeric element.
_ELEMENT_NUMERIC = {"float", "int", "abs", "round"}

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod,
              ast.Pow)

#: Payload kinds a numeric operation chokes on.
_NON_NUMERIC = {"tuple", "list", "str", "set", "dict", "none", "bytes"}


@dataclass
class SendSite:
    """One reachable send, as the receiver will experience it."""

    line: int
    method: str              # scope the *call* sits in (caller for via=)
    interval: object         # send-time superstep interval
    delivery: object         # interval the payload arrives in
    payload: object = None   # payload expression node (callee AST for via=)
    kind: str = None         # _typekinds kind of the payload, or None
    arity: int = None        # tuple arity when statically known
    via: str = None          # summarized callee the send came through

    def describe_payload(self):
        if self.kind is None:
            return "unknown payload"
        if self.kind == "tuple" and self.arity is not None:
            return f"{self.arity}-tuple payload"
        return f"{self.kind} payload"


@dataclass
class ReceiveSite:
    """One way the inbox (or a message element) is consumed."""

    pattern: str             # "fold-arith" | "fold-compare" | "collect" |
                             # "iter-unpack" | "iter-arith" |
                             # "iter-subscript" | "iter-compare" |
                             # "iter-opaque" | "presence" | "positional" |
                             # "opaque"
    line: int
    method: str
    interval: object         # superstep interval, None when unreachable
    arity: int = None        # for iter-unpack
    index: int = None        # for iter-subscript (constant index)
    other_kind: str = None   # for iter-arith: kind of the other operand

    @property
    def reachable(self):
        return self.interval is not None

    def describe(self):
        if self.pattern == "iter-unpack":
            return f"unpacks each message into {self.arity} names"
        if self.pattern == "iter-subscript" and self.index is not None:
            return f"subscripts each message at [{self.index}]"
        if self.pattern == "iter-arith":
            if self.other_kind == "number":
                return "uses each message in numeric arithmetic"
            return "uses each message in arithmetic"
        if self.pattern == "fold-arith":
            return "sums the whole inbox"
        if self.pattern == "fold-compare":
            return "folds the inbox with min/max/sorted"
        if self.pattern == "collect":
            return "collects the inbox without reading elements"
        if self.pattern == "presence":
            return "tests the inbox for emptiness"
        if self.pattern == "positional":
            return "indexes into the inbox"
        if self.pattern == "iter-compare":
            return "compares message elements"
        return "consumes messages opaquely"


@dataclass
class AggSite:
    """One aggregator touch with a resolved name."""

    name: object             # resolved aggregator name, or None (dynamic)
    kind: str                # "write" | "read"
    line: int
    method: str
    interval: object
    via: str = None


@dataclass
class Conflict:
    """A send whose payload the overlapping receive cannot digest."""

    send: SendSite
    receive: ReceiveSite
    proven: bool
    reason: str              # human sentence fragment
    exception: str = "TypeError"


@dataclass
class PhaseGap:
    """A send delivered inside the read window but into a silent phase."""

    send: SendSite
    read_hull: object        # join of every receive interval
    proven: bool = True


@dataclass
class AggregatorHazard:
    """An aggregator whose every read precedes its first visible write."""

    name: object
    first_read: AggSite
    reads_hull: object
    writes_hull: object
    write_lines: list = field(default_factory=list)


class ProtocolTable:
    """Send/receive/aggregator protocol facts for one ClassContext."""

    def __init__(self, context):
        self.context = context
        self.interproc = context.interproc
        self.sends = []
        self.receives = []
        self.agg_sites = []
        if context.dataflow_enabled:
            self._build()

    # -- construction --------------------------------------------------------

    def _entry_scopes(self):
        return [
            scope
            for name, scope in self.context.scopes.items()
            if name in _ENTRY_METHODS
        ]

    def _build(self):
        context = self.context
        for scope in self._entry_scopes():
            dataflow = context.dataflow(scope)
            if dataflow is None:
                continue
            phases = dataflow.phases
            for fact in phases.sends:
                if not fact.reachable:
                    continue
                kind, arity = self._payload_shape(fact)
                self.sends.append(SendSite(
                    line=fact.line,
                    method=scope.name,
                    interval=fact.interval,
                    delivery=delivery_interval(fact.interval),
                    payload=fact.payload,
                    kind=kind,
                    arity=arity,
                    via=fact.via,
                ))
            for agg_kind, pairs in (
                ("write", phases.aggregate_writes),
                ("read", phases.aggregate_reads),
            ):
                for name_node, fact in pairs:
                    if not fact.reachable:
                        continue
                    self.agg_sites.append(AggSite(
                        name=context.resolve_constant(name_node)
                        if name_node is not None else None,
                        kind=agg_kind,
                        line=fact.line,
                        method=scope.name,
                        interval=fact.interval,
                        via=fact.via,
                    ))
        self._build_receives()

    def _payload_shape(self, fact):
        """(kind, tuple_arity) for a send fact's payload expression."""
        payload = fact.payload
        if payload is None:
            return (None, None)
        context = self.context
        kind = expr_kind(payload, context)
        if (
            kind is None
            and isinstance(payload, ast.Call)
            and self.interproc is not None
            and fact.payload_scope is not None
        ):
            kind = self.interproc.return_kind_for(fact.payload_scope, payload)
        arity = None
        if isinstance(payload, ast.Tuple):
            arity = len(payload.elts)
        else:
            value = context.resolve_constant(payload)
            if isinstance(value, tuple):
                kind = kind or value_kind(value)
                arity = len(value)
        return (kind, arity)

    def _build_receives(self):
        context = self.context
        caps = self._context_intervals()
        scopes = []
        for name, scope in context.scopes.items():
            scopes.append((("method", name), scope))
        if self.interproc is not None:
            for name in self.interproc.reachable_helper_names():
                scope = self.interproc.helper_scope(name)
                if scope is not None:
                    scopes.append((("helper", name), scope))
        reachable = (
            self.interproc.reachable() if self.interproc is not None else None
        )
        for key, scope in scopes:
            if scope.messages_name is None and not scope.message_aliases:
                continue
            if (
                reachable is not None
                and key not in reachable
                and key[1] not in _ENTRY_METHODS
            ):
                continue
            if key[0] == "method":
                dataflow = context.dataflow(scope)
            else:
                dataflow = self.interproc.helper_dataflow(key[1])
            cap = None if key[1] in _ENTRY_METHODS else caps.get(key)
            self.receives.extend(
                _classify_receives(scope, dataflow, cap, context)
            )

    def _context_intervals(self):
        """Callee key -> join of caller-frame intervals at its call sites.

        A small fixpoint over the call graph: ``ctx.superstep`` is the
        same value in every frame, so a callee only ever runs at the
        supersteps its (transitive) call sites can execute. Entry
        methods start at ``[0, +inf]``; joins converge because every
        contribution is a meet of finitely many site intervals.
        """
        interproc = self.interproc
        if interproc is None:
            return {}
        edges = interproc.edges()
        if getattr(interproc, "_dynamic", False):
            return {key: NON_NEGATIVE for key in edges}
        ctx = {
            ("method", name): NON_NEGATIVE
            for name in self.context.scopes
            if name in _ENTRY_METHODS
        }
        for _ in range(len(edges) + 2):
            changed = False
            for caller, callees in edges.items():
                base = ctx.get(caller)
                if base is None:
                    continue
                dataflow = None
                try:
                    dataflow = interproc._dataflow_for(caller)
                except Exception:
                    dataflow = None
                for callee, call in callees:
                    if call is None or dataflow is None:
                        site = base
                    else:
                        stamp = dataflow.superstep_at_node(call.node)
                        if stamp is None:
                            continue  # dead call site
                        site = stamp.meet(base)
                        if site is None:
                            continue
                    merged = (
                        site if callee not in ctx else ctx[callee].join(site)
                    )
                    if ctx.get(callee) != merged:
                        ctx[callee] = merged
                        changed = True
            if not changed:
                break
        return ctx

    # -- queries -------------------------------------------------------------

    def conflicts(self):
        """Every (send, receive) pair whose shapes cannot both be right."""
        out = []
        for send in self.sends:
            if send.kind is None:
                continue
            for receive in self.receives:
                if not receive.reachable:
                    continue
                if not send.delivery.intersects(receive.interval):
                    continue
                conflict = _judge(send, receive)
                if conflict is not None:
                    out.append(conflict)
        return out

    def phase_gaps(self):
        """Sends delivered inside the read window but into a silent phase.

        GL010 already covers deliveries that miss the read window
        entirely; a *gap* is subtler — the hull of the receive intervals
        contains the delivery, but no individual receive does, so the
        message lands in a superstep whose code never looks at the
        inbox and is silently discarded.
        """
        intervals = [r.interval for r in self.receives if r.reachable]
        hull = join_intervals(intervals)
        if hull is None:
            return []
        out = []
        seen_lines = set()
        for send in self.sends:
            if send.line in seen_lines:
                continue
            delivery = send.delivery
            if delivery.meet(hull) is None:
                continue  # GL010's territory
            if any(delivery.intersects(iv) for iv in intervals):
                continue
            seen_lines.add(send.line)
            out.append(PhaseGap(send=send, read_hull=hull))
        return out

    def aggregator_hazards(self):
        """Aggregators whose every read precedes the first visible write.

        A write at superstep ``s`` is barrier-delayed: readable from
        ``s + 1``. When the hull of read supersteps ends at or before
        the hull of write supersteps begins, every read sees only the
        initial value — the writes are dead as far as the reads are
        concerned.
        """
        by_name = {}
        for site in self.agg_sites:
            if site.name is None:
                return []  # a dynamic name could alias anything
            by_name.setdefault(site.name, []).append(site)
        out = []
        for name, sites in sorted(by_name.items(), key=lambda kv: str(kv[0])):
            writes = [s for s in sites if s.kind == "write"]
            reads = [s for s in sites if s.kind == "read"]
            if not writes or not reads:
                continue  # GL006's territory
            writes_hull = join_intervals([s.interval for s in writes])
            reads_hull = join_intervals([s.interval for s in reads])
            if reads_hull.hi > writes_hull.lo:
                continue  # some read can land after a visible write
            first_read = min(reads, key=lambda s: s.line)
            out.append(AggregatorHazard(
                name=name,
                first_read=first_read,
                reads_hull=reads_hull,
                writes_hull=writes_hull,
                write_lines=sorted({s.line for s in writes}),
            ))
        return out

    # -- rendering -----------------------------------------------------------

    def render(self):
        """Per-phase protocol table for ``--explain-cfg``."""
        lines = [f"message protocol for {self.context.class_name}:"]
        if self.sends:
            lines.append("  sends:")
            for send in sorted(self.sends, key=lambda s: s.line):
                via = f" via {send.via}" if send.via else ""
                lines.append(
                    f"    line {send.line} ({send.method}{via}): "
                    f"{send.describe_payload()}, delivered at superstep in "
                    f"{send.delivery!r}"
                )
        if self.receives:
            lines.append("  receives:")
            for receive in sorted(self.receives, key=lambda r: r.line):
                stamp = (
                    f"superstep in {receive.interval!r}"
                    if receive.reachable else "UNREACHABLE"
                )
                lines.append(
                    f"    line {receive.line} ({receive.method}): "
                    f"{receive.describe()}, {stamp}"
                )
        if self.agg_sites:
            lines.append("  aggregators:")
            for site in sorted(self.agg_sites, key=lambda s: s.line):
                lines.append(
                    f"    line {site.line} ({site.method}): "
                    f"{site.kind} {site.name!r}, superstep in "
                    f"{site.interval!r}"
                )
        if len(lines) == 1:
            lines.append("  (no sends, receives, or aggregator traffic)")
        return "\n".join(lines)


# -- conflict judgement --------------------------------------------------------


def _judge(send, receive):
    """A :class:`Conflict` when the payload cannot satisfy the receive."""
    kind = send.kind
    pattern = receive.pattern
    if pattern == "fold-arith":
        if kind in _NON_NUMERIC:
            return Conflict(
                send, receive, proven=True,
                reason=f"summing a {kind} payload raises",
            )
        return None
    if pattern == "iter-unpack":
        if kind == "number":
            return Conflict(
                send, receive, proven=True,
                reason="a number payload cannot be unpacked",
            )
        if (
            kind == "tuple"
            and send.arity is not None
            and receive.arity is not None
            and send.arity != receive.arity
        ):
            return Conflict(
                send, receive, proven=True,
                reason=(
                    f"a {send.arity}-tuple payload unpacked into "
                    f"{receive.arity} names"
                ),
                exception="ValueError",
            )
        return None
    if pattern == "iter-arith":
        if kind == "number":
            return None
        if kind in _NON_NUMERIC:
            if receive.other_kind == "number":
                return Conflict(
                    send, receive, proven=True,
                    reason=f"numeric arithmetic on a {kind} payload",
                )
            return Conflict(
                send, receive, proven=False,
                reason=f"arithmetic on a {kind} payload",
            )
        return None
    if pattern == "iter-subscript":
        if kind == "number":
            return Conflict(
                send, receive, proven=True,
                reason="subscripting a number payload",
            )
        if (
            kind == "tuple"
            and send.arity is not None
            and receive.index is not None
            and receive.index >= send.arity
        ):
            return Conflict(
                send, receive, proven=True,
                reason=(
                    f"index [{receive.index}] out of range for a "
                    f"{send.arity}-tuple payload"
                ),
                exception="IndexError",
            )
        return None
    return None


# -- receive classification ----------------------------------------------------


def _classify_receives(scope, dataflow, cap, context):
    """Every :class:`ReceiveSite` in one scope.

    ``cap`` is the call-chain context interval for non-entry scopes (the
    callee-frame stamps are met with it); None leaves stamps as-is.
    """
    collection = scope.messages_name
    elements = set(scope.message_aliases)
    parents = {}
    for parent in ast.walk(scope.node):
        for child in ast.iter_child_nodes(parent):
            parents[id(child)] = parent

    sites = []
    skip_loads = set()

    def stamp(node):
        if dataflow is None:
            interval = NON_NEGATIVE
        else:
            interval = dataflow.superstep_at_node(node)
        if interval is not None and cap is not None:
            interval = interval.meet(cap)
        return interval

    def add(pattern, node, **extra):
        sites.append(ReceiveSite(
            pattern=pattern,
            line=getattr(node, "lineno", scope.line),
            method=scope.name,
            interval=stamp(node),
            **extra,
        ))

    # Iteration over the whole inbox: classify the loop target.
    for node in ast.walk(scope.node):
        iters = []
        if isinstance(node, ast.For):
            iters.append((node.target, node.iter))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                               ast.DictComp)):
            iters.extend((g.target, g.iter) for g in node.generators)
        for target, source in iters:
            if not (
                isinstance(source, ast.Name) and source.id == collection
            ):
                continue
            skip_loads.add(id(source))
            if isinstance(target, ast.Tuple):
                add("iter-unpack", source, arity=len(target.elts))
            elif isinstance(target, ast.Name):
                elements.add(target.id)

    for node in ast.walk(scope.node):
        if not (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)):
            continue
        if node.id == collection and collection is not None:
            if id(node) in skip_loads:
                continue
            sites.append(_classify_collection_load(
                node, parents, scope, stamp
            ))
        elif node.id in elements:
            site = _classify_element_load(node, parents, scope, stamp, context)
            if site is not None:
                sites.append(site)

    return _dedupe(sites)


def _classify_collection_load(node, parents, scope, stamp):
    parent = parents.get(id(node))

    def site(pattern, **extra):
        return ReceiveSite(
            pattern=pattern, line=node.lineno, method=scope.name,
            interval=stamp(node), **extra,
        )

    if isinstance(parent, ast.Call) and node in parent.args:
        target = _call_tail(parent)
        if target in _FOLD_ARITH:
            return site("fold-arith")
        if target in _FOLD_COMPARE:
            return site("fold-compare")
        if target in _COLLECT:
            return site("collect")
        return site("opaque")
    if isinstance(parent, ast.Subscript) and parent.value is node:
        return site("positional")
    if (
        (isinstance(parent, (ast.If, ast.While)) and parent.test is node)
        or (isinstance(parent, ast.IfExp) and parent.test is node)
        or isinstance(parent, ast.BoolOp)
        or (
            isinstance(parent, ast.UnaryOp)
            and isinstance(parent.op, ast.Not)
        )
        or isinstance(parent, ast.Compare)
    ):
        return site("presence")
    return site("opaque")


def _classify_element_load(node, parents, scope, stamp, context):
    parent = parents.get(id(node))

    def site(pattern, **extra):
        return ReceiveSite(
            pattern=pattern, line=node.lineno, method=scope.name,
            interval=stamp(node), **extra,
        )

    if isinstance(parent, ast.BinOp) and isinstance(parent.op, _ARITH_OPS):
        other = parent.right if parent.left is node else parent.left
        return site("iter-arith", other_kind=expr_kind(other, context))
    if isinstance(parent, ast.AugAssign) and parent.value is node:
        if isinstance(parent.op, _ARITH_OPS):
            return site("iter-arith", other_kind=None)
        return site("iter-opaque")
    if isinstance(parent, ast.Subscript) and parent.value is node:
        index = None
        sl = parent.slice
        if isinstance(sl, ast.Constant) and isinstance(sl.value, int):
            index = sl.value
        return site("iter-subscript", index=index)
    if isinstance(parent, ast.Compare):
        return site("iter-compare")
    if isinstance(parent, ast.Assign) and parent.value is node:
        targets = parent.targets
        if len(targets) == 1 and isinstance(targets[0], ast.Tuple):
            return site("iter-unpack", arity=len(targets[0].elts))
        return None  # plain rebinding, not a consumption
    if isinstance(parent, ast.Call) and node in parent.args:
        if _call_tail(parent) in _ELEMENT_NUMERIC:
            return site("iter-arith", other_kind="number")
        return site("iter-opaque")
    return site("iter-opaque")


def _call_tail(call_node):
    func = call_node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _dedupe(sites):
    seen = set()
    out = []
    for site in sites:
        key = (site.line, site.pattern, site.arity, site.index,
               site.other_kind, site.interval is None)
        if key in seen:
            continue
        seen.add(key)
        out.append(site)
    return out
