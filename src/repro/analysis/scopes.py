"""Per-method scopes: the facts rules match against.

The engine walks each method of a ``Computation`` class once and distills a
:class:`MethodScope` — which parameter is the compute context, which is the
message list, which ``self.*`` attributes are read and written, every call
with its dotted target, and which local names alias the vertex value or a
message. Rules then work on these precomputed scopes instead of re-walking
raw AST.
"""

import ast
from dataclasses import dataclass, field

#: Methods whose bodies the engine analyzes. ``__init__`` is configuration
#: space (``self.steps = steps`` is how parameters arrive), so it is scoped
#: but exempt from worker-local-state rules.
LIFECYCLE_METHODS = (
    "compute",
    "pre_superstep",
    "post_superstep",
    "initial_value",
    "default_vertex_value",
)

#: Parameter names treated as vertex-value / message aliases in helper
#: methods (the ``self._select(ctx, value)`` idiom the shipped GC uses).
VALUE_PARAM_NAMES = ("value", "vertex_value", "old_value")
MESSAGE_PARAM_NAMES = ("message", "msg")


def dotted_name(node):
    """``a.b.c`` for a Name/Attribute chain, or None for anything else."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def root_path(node):
    """The Name/Attribute chain under an lvalue, skipping subscripts.

    ``ctx.value.counts[k]`` -> ``"ctx.value.counts"``; used to decide
    whether a mutation ultimately lands inside the vertex value or a
    message.
    """
    while isinstance(node, ast.Subscript):
        node = node.value
    return dotted_name(node)


@dataclass
class CallSite:
    """One call expression inside a method body."""

    target: str        # dotted target, e.g. "ctx.send_message", "min"
    node: ast.Call
    line: int


@dataclass
class MethodScope:
    """Everything the rules need to know about one method."""

    name: str
    class_name: str        # the class that *defines* the method
    node: object           # ast.FunctionDef
    filename: str
    self_name: str = "self"
    ctx_name: str = None
    messages_name: str = None
    attr_writes: dict = field(default_factory=dict)   # attr -> [lineno, ...]
    attr_reads: dict = field(default_factory=dict)    # attr -> [lineno, ...]
    calls: list = field(default_factory=list)         # [CallSite, ...]
    value_aliases: set = field(default_factory=set)   # names bound to ctx.value
    message_aliases: set = field(default_factory=set) # names bound to a message

    @property
    def line(self):
        return self.node.lineno

    def calls_to(self, *suffixes):
        """Call sites whose target is ``ctx.<suffix>`` or ``<suffix>``."""
        hits = []
        for call in self.calls:
            tail = call.target.rsplit(".", 1)[-1]
            if tail in suffixes:
                hits.append(call)
        return hits

    def ctx_calls(self, *names):
        """Call sites of ``<ctx>.<name>(...)`` for this method's ctx param."""
        if self.ctx_name is None:
            return []
        wanted = {f"{self.ctx_name}.{name}" for name in names}
        return [call for call in self.calls if call.target in wanted]


def _is_ctx_value(node, ctx_name):
    return (
        ctx_name is not None
        and isinstance(node, ast.Attribute)
        and node.attr == "value"
        and isinstance(node.value, ast.Name)
        and node.value.id == ctx_name
    )


def build_method_scope(func_node, class_name, filename, method_names):
    """Distill one ``ast.FunctionDef`` into a :class:`MethodScope`.

    ``method_names`` is the set of method names defined anywhere on the
    class (so ``self._helper`` reads are not mistaken for state reads).
    """
    args = [a.arg for a in func_node.args.args]
    scope = MethodScope(
        name=func_node.name,
        class_name=class_name,
        node=func_node,
        filename=filename,
        self_name=args[0] if args else "self",
    )
    # compute(self, ctx, messages) binds positionally; helpers bind by the
    # conventional parameter names.
    if func_node.name == "compute":
        if len(args) > 1:
            scope.ctx_name = args[1]
        if len(args) > 2:
            scope.messages_name = args[2]
    else:
        for arg in args[1:]:
            if arg == "ctx" and scope.ctx_name is None:
                scope.ctx_name = arg
            elif arg == "messages" and scope.messages_name is None:
                scope.messages_name = arg
        for arg in args[1:]:
            if arg in VALUE_PARAM_NAMES:
                scope.value_aliases.add(arg)
            elif arg in MESSAGE_PARAM_NAMES:
                scope.message_aliases.add(arg)

    for node in ast.walk(func_node):
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id == scope.self_name and node.attr not in method_names:
                book = (
                    scope.attr_writes
                    if isinstance(node.ctx, (ast.Store, ast.Del))
                    else scope.attr_reads
                )
                book.setdefault(node.attr, []).append(node.lineno)
        elif isinstance(node, ast.AugAssign):
            # `self.x += 1` stores *and* loads the attribute.
            target = node.target
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == scope.self_name
                and target.attr not in method_names
            ):
                scope.attr_reads.setdefault(target.attr, []).append(target.lineno)
        elif isinstance(node, ast.Call):
            target = dotted_name(node.func)
            if target is not None:
                scope.calls.append(CallSite(target, node, node.lineno))

    # Alias tracking needs source order (a rebinding clears the alias), so
    # it runs over statements in order rather than ast.walk's BFS.
    for stmt in iter_statements(func_node.body):
        if isinstance(stmt, ast.Assign):
            _track_aliases(scope, stmt)
        elif isinstance(stmt, ast.For):
            _track_loop_aliases(scope, stmt)
    return scope


def build_function_scope(func_node, filename):
    """Distill a *module-level* helper function into a :class:`MethodScope`.

    Unlike methods there is no ``self`` receiver, so every parameter is a
    candidate for the conventional roles: a ``ctx`` parameter makes the
    helper able to send/halt/aggregate, a ``messages`` parameter makes it
    a message consumer. ``self_name`` is set to a non-identifier sentinel
    so the attribute bookkeeping can never match.
    """
    args = [a.arg for a in func_node.args.args]
    scope = MethodScope(
        name=func_node.name,
        class_name="<module>",
        node=func_node,
        filename=filename,
        self_name="<module-function>",
    )
    for arg in args:
        if arg == "ctx" and scope.ctx_name is None:
            scope.ctx_name = arg
        elif arg in ("messages", "msgs") and scope.messages_name is None:
            scope.messages_name = arg
        elif arg in VALUE_PARAM_NAMES:
            scope.value_aliases.add(arg)
        elif arg in MESSAGE_PARAM_NAMES:
            scope.message_aliases.add(arg)

    for node in ast.walk(func_node):
        if isinstance(node, ast.Call):
            target = dotted_name(node.func)
            if target is not None:
                scope.calls.append(CallSite(target, node, node.lineno))

    for stmt in iter_statements(func_node.body):
        if isinstance(stmt, ast.Assign):
            _track_aliases(scope, stmt)
        elif isinstance(stmt, ast.For):
            _track_loop_aliases(scope, stmt)
    return scope


def iter_statements(body):
    """Yield every statement under ``body`` in source order."""
    for stmt in body:
        yield stmt
        for attr in ("body", "orelse", "finalbody"):
            yield from iter_statements(getattr(stmt, attr, []) or [])
        for handler in getattr(stmt, "handlers", []) or []:
            yield from iter_statements(handler.body)


def _track_aliases(scope, assign):
    """``v = ctx.value`` makes ``v`` a value alias; rebinding clears it."""
    for target in assign.targets:
        if not isinstance(target, ast.Name):
            continue
        if _is_ctx_value(assign.value, scope.ctx_name):
            scope.value_aliases.add(target.id)
        else:
            scope.value_aliases.discard(target.id)
            scope.message_aliases.discard(target.id)


def _track_loop_aliases(scope, for_node):
    """``for m in messages:`` makes ``m`` a message alias."""
    if (
        isinstance(for_node.target, ast.Name)
        and scope.messages_name is not None
        and isinstance(for_node.iter, ast.Name)
        and for_node.iter.id == scope.messages_name
    ):
        scope.message_aliases.add(for_node.target.id)
