"""Interprocedural analysis: per-class call graphs + dataflow summaries.

graft-lint's dataflow passes are per-method, but real vertex programs
delegate: ``compute`` calls ``self._relax(ctx, best)`` or a module-level
``fold_messages(messages)``, and every intraprocedural rule used to go
dark behind the call. This module recovers that structure:

- a **call graph** over each analyzed class covering ``self.<method>()``
  calls and bare calls to module-level helper functions. The graph is
  cycle-tolerant (recursive and mutually-recursive callees get truncated
  summaries, never infinite loops) and conservatively complete:
  ``getattr(self, ...)`` dynamic dispatch marks every method reachable,
  and a method/helper *referenced* without being called (passed as a
  callback) counts as reachable too.
- a bottom-up :class:`CalleeSummary` per callee — returned-value kind and
  interval, messages sent (payload expression + superstep stamp), halt
  and aggregator effects, message consumption — applied at call sites by
  :class:`~repro.analysis.dataflow.phases.PhaseFacts` and the interval
  pass. ``ctx.superstep`` denotes the same value in caller and callee
  frames, so meeting the callee's stamp with the call site's interval is
  sound.
- reachability facts for GL014 (a halt in a never-called helper is a
  dead halt) and recursion facts for GL025.

Summaries are context-insensitive (parameters are TOP), so anything they
claim holds for every call site; imprecision only ever widens intervals
or drops effects to "unknown stamp", both of which are the sound
direction for the proven rules built on top.
"""

import ast
from dataclasses import dataclass, field

from repro.analysis.scopes import (
    LIFECYCLE_METHODS,
    build_function_scope,
)

#: Methods that can actually run during a job — the call-graph entry set.
_ENTRY_METHODS = LIFECYCLE_METHODS + ("__init__", "combine", "initial")


@dataclass
class SummaryEffect:
    """One side effect a callee performs, stamped with its own interval.

    ``interval`` is the callee-frame ``ctx.superstep`` interval (None for
    "unknown stamp" — the callee's dataflow failed); callers meet it with
    the call site's interval. ``payload`` / ``agg_name_node`` carry the
    AST needed to classify the effect further (payload kinds, aggregator
    names); ``scope`` is the MethodScope whose body owns those nodes.
    """

    kind: str            # "send" | "halt" | "message_read" |
                         # "aggregate_write" | "aggregate_read"
    interval: object     # Interval | None
    line: int
    scope: object = None
    payload: object = None
    agg_name_node: object = None


@dataclass
class CalleeSummary:
    """What one callee does, independent of any particular call site."""

    key: tuple                      # ("method"|"helper", name)
    scope: object                   # MethodScope
    return_kind: str = None         # _typekinds kind of returned values
    return_interval: object = None  # Interval | None (unknown)
    effects: list = field(default_factory=list)
    reads_messages: bool = False
    complete: bool = True           # False when truncated by a cycle

    @property
    def name(self):
        return self.key[1]

    def describe(self):
        tag = "self." if self.key[0] == "method" else ""
        return f"{tag}{self.name}()"


class Interprocedural:
    """Call graph + summaries for one :class:`ClassContext`."""

    def __init__(self, context):
        self.context = context
        #: name -> (ast.FunctionDef, filename) for module-level helpers.
        self.helper_defs = dict(getattr(context, "module_functions", {}) or {})
        self._helper_scopes = {}
        self._helper_flows = {}
        self._edges = None
        self._dynamic = False
        self._reachable = None
        self._summaries = {}
        self._in_progress = set()
        self._reaches_memo = {}

    # -- scopes ----------------------------------------------------------------

    def helper_scope(self, name):
        """The pseudo-MethodScope for one module-level helper, or None."""
        if name not in self.helper_defs:
            return None
        if name not in self._helper_scopes:
            node, filename = self.helper_defs[name]
            try:
                self._helper_scopes[name] = build_function_scope(node, filename)
            except Exception:
                self._helper_scopes[name] = None
        return self._helper_scopes[name]

    def helper_dataflow(self, name):
        """MethodDataflow over a helper body, or None when the pass fails."""
        if name not in self._helper_flows:
            scope = self.helper_scope(name)
            if scope is None or not self.context.dataflow_enabled:
                self._helper_flows[name] = None
            else:
                from repro.analysis.dataflow import MethodDataflow

                try:
                    self._helper_flows[name] = MethodDataflow(
                        scope, interproc=self
                    )
                except Exception as exc:
                    self._helper_flows[name] = None
                    self.context.dataflow_errors.setdefault(
                        f"<helper {name}>", exc
                    )
        return self._helper_flows[name]

    def _scope_for(self, key):
        kind, name = key
        if kind == "method":
            return self.context.scopes.get(name)
        return self.helper_scope(name)

    def _dataflow_for(self, key):
        kind, name = key
        if kind == "method":
            return self.context.dataflow(self._scope_for(key))
        return self.helper_dataflow(name)

    # -- call graph ------------------------------------------------------------

    def resolve(self, scope, call):
        """The callee key behind one CallSite in ``scope``, or None."""
        target = call.target
        if "." in target:
            owner, _, meth = target.rpartition(".")
            if (
                owner == scope.self_name
                and meth in self.context.scopes
            ):
                return ("method", meth)
            return None
        if target in self.helper_defs:
            return ("helper", target)
        return None

    def edges(self):
        """caller key -> [(callee key, CallSite-or-None), ...].

        A None call site marks a bare *reference* (callback use): it makes
        the callee reachable but carries no effects to propagate.
        """
        if self._edges is None:
            edges = {}
            for name, scope in self.context.scopes.items():
                edges[("method", name)] = self._callees(scope, is_method=True)
            for name in self.helper_defs:
                scope = self.helper_scope(name)
                edges[("helper", name)] = (
                    [] if scope is None
                    else self._callees(scope, is_method=False)
                )
            self._edges = edges
        return self._edges

    def _callees(self, scope, is_method):
        out = []
        called_func_ids = set()
        for call in scope.calls:
            key = self.resolve(scope, call)
            if key is not None:
                out.append((key, call))
                called_func_ids.add(id(call.node.func))
        for node in ast.walk(scope.node):
            if (
                is_method
                and isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id == scope.self_name
                and node.attr in self.context.scopes
                and id(node) not in called_func_ids
            ):
                out.append((("method", node.attr), None))
            elif (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in self.helper_defs
                and id(node) not in called_func_ids
            ):
                out.append((("helper", node.id), None))
            elif (
                is_method
                and isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "getattr"
                and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == scope.self_name
            ):
                # Dynamic dispatch off self: every method may be called.
                self._dynamic = True
        return out

    def reachable(self):
        """Keys reachable from the entry methods (lifecycle + __init__)."""
        if self._reachable is None:
            edges = self.edges()  # also decides self._dynamic
            if self._dynamic:
                self._reachable = set(edges)
                return self._reachable
            entries = [
                ("method", name)
                for name in self.context.scopes
                if name in _ENTRY_METHODS
            ]
            seen = set(entries)
            stack = list(entries)
            while stack:
                key = stack.pop()
                for callee, _call in edges.get(key, ()):
                    if callee not in seen:
                        seen.add(callee)
                        stack.append(callee)
            self._reachable = seen
        return self._reachable

    def reachable_scope_names(self):
        return {
            name for kind, name in self.reachable() if kind == "method"
        }

    def reachable_helper_names(self):
        return {
            name for kind, name in self.reachable() if kind == "helper"
        }

    def _reaches(self, start, goal):
        """True when ``goal`` is reachable from ``start`` via >= 0 edges."""
        memo_key = (start, goal)
        if memo_key in self._reaches_memo:
            return self._reaches_memo[memo_key]
        edges = self.edges()
        seen = set()
        stack = [start]
        found = False
        while stack:
            key = stack.pop()
            if key == goal:
                found = True
                break
            if key in seen:
                continue
            seen.add(key)
            stack.extend(c for c, _call in edges.get(key, ()))
        self._reaches_memo[memo_key] = found
        return found

    def recursion_sites(self):
        """Call sites that close a cycle in the call graph.

        Returns ``[(caller_key, callee_key, CallSite, proven), ...]``;
        ``proven`` is True only for *direct* self-recursion whose call
        site executes on every path through the function — entering the
        callee then recurses unconditionally (a guaranteed
        ``RecursionError``). Mutual recursion and guarded self-recursion
        stay ``likely``.
        """
        sites = []
        for caller, callees in self.edges().items():
            if caller not in self.reachable():
                continue
            for callee, call in callees:
                if call is None or not self._reaches(callee, caller):
                    continue
                proven = False
                if callee == caller:
                    dataflow = self._dataflow_for(caller)
                    if dataflow is not None and dataflow.always_executes(
                        call.node
                    ):
                        proven = True
                sites.append((caller, callee, call, proven))
        return sites

    # -- summaries -------------------------------------------------------------

    def summary_for_call(self, scope, call):
        key = self.resolve(scope, call)
        if key is None:
            return None
        return self.summary(key)

    def summary(self, key):
        """The :class:`CalleeSummary` for ``key``, or None mid-cycle."""
        if key in self._summaries:
            return self._summaries[key]
        if key in self._in_progress:
            return None  # cycle: the caller treats the callee as unknown
        scope = self._scope_for(key)
        if scope is None:
            return None
        self._in_progress.add(key)
        try:
            summary = self._compute_summary(key, scope)
        except Exception as exc:
            summary = CalleeSummary(key=key, scope=scope, complete=False)
            self.context.dataflow_errors.setdefault(
                f"<summary {key[1]}>", exc
            )
        finally:
            self._in_progress.discard(key)
        self._summaries[key] = summary
        return summary

    def _compute_summary(self, key, scope):
        from repro.analysis.rules._typekinds import expr_kind

        summary = CalleeSummary(key=key, scope=scope)
        dataflow = self._dataflow_for(key)
        if dataflow is None:
            summary.complete = False
            self._syntactic_effects(summary, scope)
            return summary

        # Returned values: join the kind and interval over every live
        # `return` statement; a possible fall-off-the-end return of None
        # degrades both to unknown.
        kinds = []
        intervals = []
        returns = _own_returns(scope.node)
        for ret in returns:
            state = dataflow.intervals.state_before(ret)
            if state is None:
                continue  # dead return
            if ret.value is None:
                kinds.append("none")
                intervals.append(None)
                continue
            kinds.append(expr_kind(ret.value, self.context))
            intervals.append(dataflow.intervals.eval(ret.value, state))
        if not _always_returns(scope.node.body):
            kinds.append("none")
            intervals.append(None)
        live_kinds = {k for k in kinds if k is not None}
        if len(live_kinds) == 1 and len(live_kinds) == len(kinds):
            summary.return_kind = live_kinds.pop()
        if intervals and all(iv is not None for iv in intervals):
            merged = intervals[0]
            for iv in intervals[1:]:
                merged = merged.join(iv)
            if not merged.is_top:
                summary.return_interval = merged

        # Effects: the callee's own PhaseFacts already fold in *its*
        # callees (cycle-truncated), so these are transitive.
        phases = dataflow.phases
        for fact in phases.sends:
            summary.effects.append(SummaryEffect(
                "send", fact.interval, fact.line,
                scope=fact.payload_scope or scope, payload=fact.payload,
            ))
        for fact in phases.halts:
            summary.effects.append(
                SummaryEffect("halt", fact.interval, fact.line, scope=scope)
            )
        for name_node, fact in phases.aggregate_writes:
            summary.effects.append(SummaryEffect(
                "aggregate_write", fact.interval, fact.line,
                scope=scope, agg_name_node=name_node,
            ))
        for name_node, fact in phases.aggregate_reads:
            summary.effects.append(SummaryEffect(
                "aggregate_read", fact.interval, fact.line,
                scope=scope, agg_name_node=name_node,
            ))
        for fact in phases.message_reads:
            summary.effects.append(SummaryEffect(
                "message_read", fact.interval, fact.line, scope=scope,
            ))
        summary.reads_messages = bool(phases.message_reads)
        return summary

    def _syntactic_effects(self, summary, scope):
        """Effects with unknown stamps when the callee's dataflow failed."""
        for call in scope.ctx_calls(
            "send_message", "send_message_to_all_neighbors"
        ):
            from repro.analysis.dataflow.phases import send_payload

            summary.effects.append(SummaryEffect(
                "send", None, call.line,
                scope=scope, payload=send_payload(call.node, call.target),
            ))
        for call in scope.ctx_calls("vote_to_halt"):
            summary.effects.append(
                SummaryEffect("halt", None, call.line, scope=scope)
            )
        for call in scope.ctx_calls("aggregate"):
            summary.effects.append(SummaryEffect(
                "aggregate_write", None, call.line, scope=scope,
                agg_name_node=call.node.args[0] if call.node.args else None,
            ))
        for call in scope.ctx_calls("aggregated_value"):
            summary.effects.append(SummaryEffect(
                "aggregate_read", None, call.line, scope=scope,
                agg_name_node=call.node.args[0] if call.node.args else None,
            ))
        summary.reads_messages = scope.messages_name is not None

    # -- summary application hooks --------------------------------------------

    def return_interval_for(self, scope, call_node, target):
        """Interval of a resolvable call's return value, or None.

        Hook for :class:`IntervalAnalysis`: called with the raw AST call
        node plus its dotted target.
        """
        key = self._resolve_target(scope, target)
        if key is None:
            return None
        summary = self.summary(key)
        if summary is None:
            return None
        return summary.return_interval

    def return_kind_for(self, scope, call_node, target=None):
        from repro.analysis.scopes import dotted_name

        if target is None:
            target = dotted_name(call_node.func)
        if target is None:
            return None
        key = self._resolve_target(scope, target)
        if key is None:
            return None
        summary = self.summary(key)
        if summary is None:
            return None
        return summary.return_kind

    def _resolve_target(self, scope, target):
        if target is None:
            return None
        if "." in target:
            owner, _, meth = target.rpartition(".")
            if owner == scope.self_name and meth in self.context.scopes:
                return ("method", meth)
            return None
        if target in self.helper_defs:
            return ("helper", target)
        return None

    # -- cache-key support ----------------------------------------------------

    def helper_source_text(self):
        """Concatenated source of every module helper the class can call.

        Folded into the engine's report-cache key: the MRO class sources
        alone miss edits to module-level helpers, which would otherwise
        serve stale cached reports.
        """
        parts = []
        for name in sorted(self.reachable_helper_names()):
            node, _filename = self.helper_defs[name]
            try:
                parts.append(ast.unparse(node))
            except Exception:  # pragma: no cover - unparse is total on 3.9+
                parts.append(ast.dump(node))
        return "\n".join(parts)

    # -- rendering ------------------------------------------------------------

    def explain(self):
        """Call graph + per-callee summaries (``--explain-cfg``)."""
        lines = [f"call graph for {self.context.class_name}:"]
        edges = self.edges()
        reachable = self.reachable()
        callee_keys = set()
        any_edge = False
        for caller in sorted(edges):
            callees = edges[caller]
            if not callees:
                continue
            any_edge = True
            rendered = []
            for callee, call in callees:
                mark = "" if callee in reachable else " (unreachable)"
                how = "ref" if call is None else f"line {call.line}"
                rendered.append(f"{_key_name(callee)} [{how}]{mark}")
                callee_keys.add(callee)
            lines.append(
                f"  {_key_name(caller)} -> " + ", ".join(rendered)
            )
        if not any_edge:
            lines.append("  (no resolvable calls)")
        if self._dynamic:
            lines.append(
                "  dynamic dispatch via getattr(self, ...): every method "
                "treated as reachable"
            )
        for key in sorted(callee_keys):
            summary = self.summary(key)
            if summary is None:
                continue
            lines.append(f"  summary {_key_name(key)}:")
            lines.append(
                f"    returns: kind={summary.return_kind or '?'} "
                f"interval={summary.return_interval!r}"
            )
            for eff in summary.effects:
                stamp = (
                    f"superstep in {eff.interval!r}"
                    if eff.interval is not None else "unknown stamp"
                )
                lines.append(f"    {eff.kind} @ line {eff.line}: {stamp}")
            if not summary.complete:
                lines.append("    (truncated: cycle or failed dataflow)")
        return "\n".join(lines)


def _key_name(key):
    kind, name = key
    return f"self.{name}" if kind == "method" else name


def _own_returns(func_node):
    """Every ``return`` in ``func_node``'s own body (nested defs skipped)."""
    out = []
    stack = list(func_node.body)
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                   ast.ClassDef)
        ):
            continue
        if isinstance(node, ast.Return):
            out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return out


def _always_returns(body):
    """True when control provably cannot fall off the end of ``body``."""
    if not body:
        return False
    last = body[-1]
    if isinstance(last, (ast.Return, ast.Raise)):
        return True
    if isinstance(last, ast.If):
        return (
            bool(last.orelse)
            and _always_returns(last.body)
            and _always_returns(last.orelse)
        )
    if isinstance(last, ast.While):
        test = last.test
        return (
            isinstance(test, ast.Constant)
            and bool(test.value)
            and not last.orelse
            and not any(
                isinstance(n, ast.Break) for n in ast.walk(last)
            )
        )
    return False
