"""repro: a Python reproduction of Graft, the Apache Giraph debugger.

Graft (Salihoglu, Shin, Khanna, Truong, Widom — SIGMOD 2015) supports the
capture / visualize / reproduce debugging cycle for Pregel-style
vertex-centric programs. This library rebuilds the whole stack from
scratch:

- :mod:`repro.pregel` — a Giraph-compatible BSP engine (simulated workers);
- :mod:`repro.graft` — the debugger itself (DebugConfig, instrumenter,
  trace store, the three GUI views, the context reproducer and test
  generation);
- :mod:`repro.graph`, :mod:`repro.datasets`, :mod:`repro.simfs` — graph
  substrate, dataset stand-ins, and the simulated distributed file system;
- :mod:`repro.algorithms` — the paper's scenario algorithms (with their
  deliberate bugs) and the standard Pregel repertoire;
- :mod:`repro.bench` — the harness regenerating the paper's tables and
  figures.

Quickstart::

    from repro import debug_run, DebugConfig
    from repro.algorithms import BuggyGraphColoring, GCMaster
    from repro.datasets import load_dataset

    class TenRandom(DebugConfig):
        def num_random_vertices_to_capture(self):
            return 10
        def capture_neighbors_of_vertices(self):
            return True

    graph = load_dataset("bipartite-1M-3M", num_vertices=300)
    run = debug_run(BuggyGraphColoring, graph, TenRandom(),
                    master=GCMaster(), seed=3)
    print(run.node_link_view().last().render())
    print(run.generate_test_code(*run.reader.vertex_records[0].key))
"""

from repro.analysis import AnalysisReport, analyze_computation
from repro.graft import DebugConfig, DebugRun, debug_run
from repro.graph import Graph, GraphBuilder
from repro.pregel import Computation, MasterComputation, PregelEngine, run_computation

__version__ = "1.0.0"

__all__ = [
    "AnalysisReport",
    "analyze_computation",
    "DebugConfig",
    "DebugRun",
    "debug_run",
    "Graph",
    "GraphBuilder",
    "Computation",
    "MasterComputation",
    "PregelEngine",
    "run_computation",
    "__version__",
]
