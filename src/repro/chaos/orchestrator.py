"""The recovery-verification harness: inject faults, then prove nothing leaked.

:func:`run_chaos` runs the same debugged computation twice:

1. a **baseline** run on a clean simulated DFS — no faults, no
   checkpoints;
2. an **injected** run on a :class:`~repro.chaos.ChaosFileSystem` driven
   by the plan's :class:`~repro.chaos.FaultInjector`, with checkpointing
   enabled so the engine can roll back and re-execute.

Then it asserts the Pregel determinism contract the paper's debugger
relies on: after every crash, torn write, and corrupted checkpoint, the
injected run's final vertex values, aggregator values, halt reason, and
canonical trace digest are **bit-identical** to the undisturbed run. It
also cross-checks the lazy (index-backed) and eager trace readers against
each other on the post-recovery files *and* on the crash-moment
filesystem snapshots — real torn frames and stale sidecars produced by
real injected faults, not handcrafted corruption.

The result is a :class:`ChaosReport`: machine-checkable (``ok``,
``to_dict``) for tests and the bench gate, human-readable (``summary``)
for the CLI.
"""

import os
from dataclasses import dataclass, field

from repro.chaos.faults import load_fault_plan
from repro.chaos.injection import ChaosFileSystem, FaultInjector
from repro.common.errors import TraceError
from repro.common.serialization import default_codec
from repro.graft.capture import record_to_line
from repro.graft.trace import TraceReader, canonical_trace_digest
from repro.pregel.checkpoint import CheckpointConfig
from repro.simfs.filesystem import SimFileSystem

#: Checkpoint cadence the harness defaults to: frequent enough that every
#: preset has a checkpoint to fall back to, sparse enough that rollbacks
#: re-execute real work.
DEFAULT_CHECKPOINT_EVERY = 2


@dataclass
class ChaosReport:
    """Everything one chaos run proved (or failed to prove)."""

    plan_name: str
    executor: str
    num_workers: int
    seed: int
    checks: dict = field(default_factory=dict)
    failures: list = field(default_factory=list)
    baseline_digest: str = ""
    injected_digest: str = ""
    rollbacks: int = 0
    recovered_supersteps: int = 0
    checkpoints_skipped: int = 0
    recovery_events: list = field(default_factory=list)
    fault_events: list = field(default_factory=list)
    snapshots_checked: int = 0
    baseline_seconds: float = 0.0
    injected_seconds: float = 0.0

    @property
    def ok(self):
        return not self.failures

    @property
    def faults_fired(self):
        return len(self.fault_events)

    def summary(self):
        status = "OK" if self.ok else "FAILED"
        lines = [
            f"chaos plan {self.plan_name!r} on executor={self.executor} "
            f"workers={self.num_workers} seed={self.seed}: {status}",
            f"  faults fired: {self.faults_fired}; rollbacks: {self.rollbacks} "
            f"({self.recovered_supersteps} supersteps re-executed, "
            f"{self.checkpoints_skipped} corrupt checkpoint(s) skipped)",
            f"  crash snapshots verified: {self.snapshots_checked}",
            f"  digest: {self.injected_digest[:16]}... "
            + ("== baseline" if self.injected_digest == self.baseline_digest
               else "!= baseline"),
        ]
        for name, passed in self.checks.items():
            lines.append(f"  [{'pass' if passed else 'FAIL'}] {name}")
        for failure in self.failures:
            lines.append(f"  failure: {failure}")
        return "\n".join(lines)

    def to_dict(self):
        return {
            "plan": self.plan_name,
            "executor": self.executor,
            "num_workers": self.num_workers,
            "seed": self.seed,
            "ok": self.ok,
            "checks": dict(self.checks),
            "failures": list(self.failures),
            "baseline_digest": self.baseline_digest,
            "injected_digest": self.injected_digest,
            "rollbacks": self.rollbacks,
            "recovered_supersteps": self.recovered_supersteps,
            "checkpoints_skipped": self.checkpoints_skipped,
            "recovery_events": list(self.recovery_events),
            "fault_events": list(self.fault_events),
            "snapshots_checked": self.snapshots_checked,
            "baseline_seconds": self.baseline_seconds,
            "injected_seconds": self.injected_seconds,
        }


def _reader_lines(reader):
    """Every record a reader can see, as canonical lines (sorted)."""
    lines = []
    for superstep in reader.supersteps():
        for record in reader.at_superstep(superstep):
            lines.append(record_to_line(record, default_codec))
    for record in reader.master_records:
        lines.append(record_to_line(record, default_codec))
    return sorted(lines)


def _shm_segments():
    """Names of multiprocessing shared-memory segments currently alive."""
    try:
        return {
            name for name in os.listdir("/dev/shm") if name.startswith("psm_")
        }
    except OSError:  # no /dev/shm on this platform: check degrades to a no-op
        return set()


def run_chaos(
    computation_factory,
    graph,
    plan,
    config=None,
    seed=0,
    num_workers=4,
    executor="serial",
    checkpoint_every=DEFAULT_CHECKPOINT_EVERY,
    job_id="chaos",
    expect_faults=True,
    **engine_kwargs,
):
    """Run the fault-injection + recovery-verification harness once.

    ``plan`` is a :class:`~repro.chaos.FaultPlan`, a preset name, or a
    JSON file path (see :func:`~repro.chaos.load_fault_plan`). ``config``
    defaults to capture-everything so the trace comparison is as strict as
    possible. Extra ``engine_kwargs`` (``master=``, ``combiner=``,
    ``max_supersteps=`` ...) apply to both runs. ``expect_faults=False``
    drops the "plan actually fired" check for plans aimed past the run's
    natural halt.

    Caveat: the capture-limit safety net counts re-captured records after
    a rollback, so the harness (like any chaos-run caller) should use
    configs whose ``max_captures`` the run does not approach — a run that
    trips the limit at a different record than its baseline legitimately
    diverges. See docs/fault-tolerance.md.
    """
    from repro.graft.config import CaptureAllActiveConfig
    from repro.graft.debug_run import debug_run

    plan = load_fault_plan(plan)
    if config is None:
        config = CaptureAllActiveConfig()
    shm_before = _shm_segments()
    common = dict(
        seed=seed,
        num_workers=num_workers,
        executor=executor,
        **engine_kwargs,
    )

    baseline_fs = SimFileSystem()
    baseline = debug_run(
        computation_factory, graph, config,
        filesystem=baseline_fs, job_id=job_id, lint=False, **common,
    )

    injector = FaultInjector(plan)
    chaos_fs = ChaosFileSystem(injector)
    injected = debug_run(
        computation_factory, graph, config,
        filesystem=chaos_fs, job_id=job_id, lint=False,
        checkpoint_config=CheckpointConfig(
            filesystem=chaos_fs, every_n_supersteps=checkpoint_every
        ),
        fault_injector=injector,
        **common,
    )

    report = ChaosReport(
        plan_name=plan.name,
        executor=executor,
        num_workers=num_workers,
        seed=seed,
        fault_events=injector.event_dicts(),
    )

    def check(name, passed, detail=""):
        report.checks[name] = bool(passed)
        if not passed:
            report.failures.append(detail or name)
        return bool(passed)

    check(
        "baseline run completed", baseline.ok,
        f"baseline run failed: {baseline.failure}",
    )
    check(
        "injected run completed (recovered from every fault)", injected.ok,
        f"injected run failed: {injected.failure}",
    )
    if expect_faults and plan.faults:
        check(
            "plan injected at least one fault", injector.events,
            "plan injected no faults (coordinates never matched the run)",
        )
    if not (baseline.ok and injected.ok):
        return report

    b_result, i_result = baseline.result, injected.result
    report.rollbacks = i_result.metrics.rollback_count
    report.recovered_supersteps = i_result.metrics.recovered_supersteps
    report.checkpoints_skipped = i_result.metrics.checkpoints_skipped
    report.recovery_events = list(i_result.metrics.recovery_events)
    report.baseline_seconds = b_result.metrics.total_seconds
    report.injected_seconds = i_result.metrics.total_seconds

    check(
        "final vertex values bit-identical",
        i_result.vertex_values == b_result.vertex_values,
        "final vertex values diverged from the fault-free run",
    )
    check(
        "aggregator values bit-identical",
        i_result.aggregator_values == b_result.aggregator_values,
        "aggregator values diverged from the fault-free run",
    )
    check(
        "halt reason and superstep count match",
        (i_result.halt_reason, i_result.num_supersteps)
        == (b_result.halt_reason, b_result.num_supersteps),
        f"halt diverged: baseline ({b_result.halt_reason}, "
        f"{b_result.num_supersteps}) vs injected ({i_result.halt_reason}, "
        f"{i_result.num_supersteps})",
    )

    report.baseline_digest = canonical_trace_digest(baseline_fs, job_id)
    report.injected_digest = canonical_trace_digest(chaos_fs, job_id)
    check(
        "canonical trace digest bit-identical",
        report.injected_digest == report.baseline_digest,
        "canonical trace digest diverged from the fault-free run",
    )

    lazy = _reader_lines(TraceReader(chaos_fs, job_id, mode="lazy"))
    eager = _reader_lines(TraceReader(chaos_fs, job_id, mode="eager"))
    check(
        "lazy and eager readers agree on recovered traces",
        lazy == eager,
        "lazy/eager readers disagree on the post-recovery trace files",
    )

    # Crash-moment forensics: every snapshot taken at the instant of a
    # torn write must still open — torn final frames are dropped, stale
    # sidecar tails are rescanned — and both readers must agree on what
    # survived.
    snapshot_failures = []
    for path, snapshot_fs in chaos_fs.crash_snapshots:
        try:
            snap_lazy = _reader_lines(TraceReader(snapshot_fs, job_id, mode="lazy"))
            snap_eager = _reader_lines(TraceReader(snapshot_fs, job_id, mode="eager"))
        except TraceError as exc:
            snapshot_failures.append(f"snapshot after torn {path}: {exc}")
            continue
        if snap_lazy != snap_eager:
            snapshot_failures.append(
                f"snapshot after torn {path}: lazy/eager disagree"
            )
        report.snapshots_checked += 1
    if chaos_fs.crash_snapshots:
        check(
            "crash-moment snapshots readable and reader-consistent",
            not snapshot_failures,
            "; ".join(snapshot_failures),
        )

    # The columnar transport ships messages through shared-memory blocks
    # under the processes backend; every crash/rollback path must unlink
    # its segments, or repeated chaos runs slowly fill /dev/shm.
    leaked = _shm_segments() - shm_before
    check(
        "no shared-memory segments leaked",
        not leaked,
        f"leaked /dev/shm segments: {sorted(leaked)}",
    )

    return report


def run_chaos_matrix(
    computation_factory,
    graph,
    plans,
    executors=("serial",),
    **kwargs,
):
    """Run several plans across several executors; returns all reports.

    The acceptance sweep: every shipped preset against every backend must
    come back ``ok``.
    """
    reports = []
    for executor in executors:
        for plan in plans:
            reports.append(
                run_chaos(
                    computation_factory, graph, plan,
                    executor=executor, **kwargs,
                )
            )
    return reports
