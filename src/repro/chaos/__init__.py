"""repro.chaos — deterministic fault injection and recovery verification.

The debugger's claims only matter if they survive failure: the paper's
Giraph jobs run on clusters where workers die, HDFS writes tear, and
checkpoints rot. This package manufactures exactly those failures —
deterministically, from a declarative :class:`FaultPlan` seeded purely by
``(run_seed, superstep, target)`` — and then *proves* recovery worked:
after rollback and re-execution, final vertex values, aggregator state,
and the canonical trace digest must be bit-identical to an undisturbed
run, on every execution backend.

Entry points:

- :func:`run_chaos` / :func:`run_chaos_matrix` — the verification harness
  (also behind ``repro chaos run`` on the CLI);
- :data:`PRESET_PLANS` / :func:`load_fault_plan` — shipped failure
  scenarios and JSON plan loading;
- :class:`FaultInjector` + :class:`ChaosFileSystem` — the machinery, for
  wiring faults into a custom engine setup (``fault_injector=`` /
  ``filesystem=``).

See docs/fault-tolerance.md for the checkpoint format, plan schema, and
recovery semantics.
"""

from repro.chaos.faults import (
    FAULT_KINDS,
    PRESET_PLANS,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    load_fault_plan,
    preset_names,
)
from repro.chaos.injection import ChaosFileSystem, FaultEvent, FaultInjector
from repro.chaos.orchestrator import (
    DEFAULT_CHECKPOINT_EVERY,
    ChaosReport,
    run_chaos,
    run_chaos_matrix,
)

__all__ = [
    "FAULT_KINDS",
    "PRESET_PLANS",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "load_fault_plan",
    "preset_names",
    "ChaosFileSystem",
    "FaultEvent",
    "FaultInjector",
    "DEFAULT_CHECKPOINT_EVERY",
    "ChaosReport",
    "run_chaos",
    "run_chaos_matrix",
]
