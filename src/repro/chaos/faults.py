"""Declarative fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is a named, serializable list of :class:`FaultSpec`
entries. Each spec describes one kind of failure at a coordinate in the
run — a superstep, a worker, a file-path suffix — plus how often it fires.
Nothing in a plan references wall-clock time or a global RNG: every
probabilistic decision is derived from ``(run_seed, spec index, superstep,
target)`` through :func:`~repro.common.rng.derive_rng`, so the same plan
against the same seed injects byte-identical failures on every machine,
every backend, and every re-run. That determinism is what lets the
recovery harness assert bit-identical results instead of "usually works".

Fault kinds
-----------

``worker_crash``
    A worker machine dies at the barrier entering a superstep (Pregel's
    classic failure model). The engine rolls back to the latest checkpoint.
``step_crash``
    A worker dies *mid-superstep*, after ``after_calls`` ``compute()``
    calls — the partially-executed superstep is torn down and rolled back.
``slow_worker``
    One worker sleeps ``delay_ms`` before computing (straggler skew). No
    failure; exists to shake out barrier races between fast and slow
    workers under the concurrent backends.
``transient_io``
    An append to a matching file fails once with
    :class:`~repro.common.errors.SimFsTransientError`, leaving the file
    unchanged; writers retry bounded.
``torn_write``
    An append to a matching file crashes halfway: a prefix of the data
    lands, then :class:`~repro.common.errors.InjectedWriteCrash` is
    raised. This is how torn trace frames and stale index sidecars are
    manufactured from real writes rather than handcrafted corruption.
``checkpoint_corrupt``
    A just-written checkpoint file is truncated to half its length, so
    recovery must detect the damage via the checksum header and fall back
    to an older checkpoint.

Plans are loaded by preset name (``load_fault_plan("worker-crash")``) or
from a JSON file with the same shape ``to_dict`` emits.
"""

import json
import os
from dataclasses import dataclass, field

from repro.common.errors import GraftError

#: Every fault kind a spec may carry, in documentation order.
FAULT_KINDS = (
    "worker_crash",
    "step_crash",
    "slow_worker",
    "transient_io",
    "torn_write",
    "checkpoint_corrupt",
)

_WORKER_KINDS = ("worker_crash", "step_crash", "slow_worker")
_WRITE_KINDS = ("transient_io", "torn_write")


class FaultPlanError(GraftError):
    """A fault plan or spec is malformed or cannot be loaded."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned failure.

    ``superstep=None`` matches every superstep (bounded by ``times``).
    ``worker_id`` addresses worker-scoped kinds; write-scoped kinds match
    files by ``path_suffix`` instead. ``probability`` below 1.0 makes the
    firing a deterministic pseudo-random choice (seeded, not global).
    ``times`` caps how often the spec fires across the whole run; ``None``
    means unbounded.
    """

    kind: str
    superstep: int = None
    worker_id: int = None
    path_suffix: str = ".trace"
    after_calls: int = None
    delay_ms: float = None
    probability: float = 1.0
    times: int = 1

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.kind in _WORKER_KINDS and self.worker_id is None:
            raise FaultPlanError(f"{self.kind} spec needs a worker_id")
        if self.kind == "step_crash" and self.after_calls is None:
            raise FaultPlanError("step_crash spec needs after_calls")
        if self.kind == "slow_worker" and self.delay_ms is None:
            raise FaultPlanError("slow_worker spec needs delay_ms")
        if self.kind in _WRITE_KINDS and not self.path_suffix:
            raise FaultPlanError(f"{self.kind} spec needs a path_suffix")
        if not (0.0 < self.probability <= 1.0):
            raise FaultPlanError(
                f"probability must be in (0, 1], got {self.probability}"
            )
        if self.times is not None and self.times < 1:
            raise FaultPlanError(f"times must be >= 1 or None, got {self.times}")
        if self.superstep is not None and self.superstep < 0:
            raise FaultPlanError(f"superstep must be >= 0, got {self.superstep}")

    def matches_superstep(self, superstep):
        return self.superstep is None or self.superstep == superstep

    def to_dict(self):
        out = {"kind": self.kind}
        for name in (
            "superstep", "worker_id", "after_calls", "delay_ms", "times",
        ):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        if self.times is None:
            out["times"] = None
        if self.kind in _WRITE_KINDS:
            out["path_suffix"] = self.path_suffix
        if self.probability != 1.0:
            out["probability"] = self.probability
        return out

    @classmethod
    def from_dict(cls, data):
        if not isinstance(data, dict) or "kind" not in data:
            raise FaultPlanError(f"fault spec must be a dict with a kind: {data!r}")
        allowed = {
            "kind", "superstep", "worker_id", "path_suffix",
            "after_calls", "delay_ms", "probability", "times",
        }
        unknown = set(data) - allowed
        if unknown:
            raise FaultPlanError(f"unknown fault spec fields: {sorted(unknown)}")
        kwargs = dict(data)
        kwargs.setdefault("times", 1)
        return cls(**kwargs)


@dataclass(frozen=True)
class FaultPlan:
    """A named bundle of fault specs, serializable to/from JSON."""

    name: str
    faults: tuple
    description: str = ""

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))
        if not self.name:
            raise FaultPlanError("fault plan needs a name")
        for spec in self.faults:
            if not isinstance(spec, FaultSpec):
                raise FaultPlanError(f"plan faults must be FaultSpec, got {spec!r}")

    def to_dict(self):
        return {
            "name": self.name,
            "description": self.description,
            "faults": [spec.to_dict() for spec in self.faults],
        }

    def to_json(self):
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data):
        if not isinstance(data, dict):
            raise FaultPlanError(f"fault plan must be a dict, got {data!r}")
        try:
            faults = tuple(
                FaultSpec.from_dict(spec) for spec in data.get("faults", ())
            )
            return cls(
                name=data["name"],
                faults=faults,
                description=data.get("description", ""),
            )
        except KeyError as exc:
            raise FaultPlanError(f"fault plan is missing {exc}") from exc

    @classmethod
    def from_json(cls, text):
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(data)


def _build_presets():
    """The shipped plans: one per failure mode the harness certifies."""
    plans = [
        FaultPlan(
            name="worker-crash",
            description=(
                "Worker 1 dies at the barrier entering superstep 3; worker 0 "
                "dies mid-superstep 5 after two compute() calls."
            ),
            faults=(
                FaultSpec(kind="worker_crash", superstep=3, worker_id=1),
                FaultSpec(
                    kind="step_crash", superstep=5, worker_id=0, after_calls=2
                ),
            ),
        ),
        FaultPlan(
            name="torn-trace-tail",
            description=(
                "A trace-file append at the superstep-4 barrier crashes "
                "halfway, leaving a torn frame for recovery to truncate."
            ),
            faults=(
                FaultSpec(
                    kind="torn_write", superstep=4, path_suffix=".trace"
                ),
            ),
        ),
        FaultPlan(
            name="stale-sidecar",
            description=(
                "An index-sidecar append at the superstep-4 barrier crashes "
                "halfway: the data block landed but its index line is torn."
            ),
            faults=(
                FaultSpec(
                    kind="torn_write", superstep=4, path_suffix=".trace.idx"
                ),
            ),
        ),
        FaultPlan(
            name="transient-io",
            description=(
                "Appends at the superstep-2 barrier fail once each with a "
                "transient error (writers retry); worker 0 then dies at "
                "superstep 4."
            ),
            faults=(
                FaultSpec(
                    kind="transient_io", superstep=2, path_suffix=".trace",
                    times=None,
                ),
                FaultSpec(kind="worker_crash", superstep=4, worker_id=0),
            ),
        ),
        FaultPlan(
            name="checkpoint-corruption",
            description=(
                "The checkpoint written at superstep 4 is truncated after "
                "the write; worker 2 dies at superstep 5, forcing recovery "
                "to reject the corrupt checkpoint and fall back to an "
                "older one."
            ),
            faults=(
                FaultSpec(kind="checkpoint_corrupt", superstep=4, times=1),
                FaultSpec(kind="worker_crash", superstep=5, worker_id=2),
            ),
        ),
        FaultPlan(
            name="slow-worker",
            description=(
                "Worker 0 straggles (2 ms skew) for three supersteps while "
                "worker 1 dies at superstep 3 — recovery under skewed "
                "barriers."
            ),
            faults=(
                FaultSpec(
                    kind="slow_worker", worker_id=0, delay_ms=2.0, times=3
                ),
                FaultSpec(kind="worker_crash", superstep=3, worker_id=1),
            ),
        ),
    ]
    return {plan.name: plan for plan in plans}


#: name -> FaultPlan for every shipped preset.
PRESET_PLANS = _build_presets()


def preset_names():
    return sorted(PRESET_PLANS)


def load_fault_plan(token):
    """Resolve a plan from a preset name or a local JSON file path.

    Preset names win; anything else is treated as a path. A token that is
    neither raises :class:`FaultPlanError` listing the presets.
    """
    if isinstance(token, FaultPlan):
        return token
    plan = PRESET_PLANS.get(token)
    if plan is not None:
        return plan
    if os.path.isfile(token):
        with open(token, "r", encoding="utf-8") as handle:
            return FaultPlan.from_json(handle.read())
    raise FaultPlanError(
        f"{token!r} is neither a preset plan nor a readable JSON file; "
        f"presets: {', '.join(preset_names())}"
    )
