"""Fault injection machinery: the engine-side injector and the chaos DFS.

Two cooperating pieces turn a :class:`~repro.chaos.FaultPlan` into actual
failures:

- :class:`FaultInjector` is handed to the engine (``fault_injector=``) and
  consulted at deterministic points of the BSP loop: the barrier entering
  each superstep (machine crashes), step packaging (mid-step crashes and
  straggler delays — decided in the parent *before* the step is scheduled,
  so the decision is identical under every execution backend), and right
  after each checkpoint write (corruption).
- :class:`ChaosFileSystem` is a :class:`~repro.simfs.SimFileSystem` whose
  append path asks the injector whether this write should fail. All write
  entry points (``write_text``, ``append_text``, ``append_bytes``) funnel
  through ``append_bytes``, so one override intercepts every byte that
  would reach the simulated DFS.

Determinism: each probabilistic firing is decided by
``derive_rng(run_seed, "chaos", spec_index, superstep, target)`` — never a
global RNG, never wall clock. All file writes (trace drains, checkpoint
writes) happen in the engine's parent process at barriers, so write faults
keyed on the current superstep are backend-independent too.

Every firing is recorded as a :class:`FaultEvent`, giving tests and the
chaos report an auditable log of what was actually injected.
"""

from dataclasses import dataclass

from repro.common.errors import (
    InjectedWriteCrash,
    SimFsTransientError,
)
from repro.common.rng import derive_rng
from repro.simfs.filesystem import SimFileSystem


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired during a run."""

    kind: str
    superstep: int
    target: str
    detail: str = ""

    def to_dict(self):
        return {
            "kind": self.kind,
            "superstep": self.superstep,
            "target": self.target,
            "detail": self.detail,
        }


class FaultInjector:
    """Consults a fault plan at the engine's deterministic decision points.

    Single-run object: ``bind()`` is called by the engine before the first
    superstep with the run's seed and worker count, which is also what
    seeds every probabilistic decision. Reuse across runs requires a new
    instance (mirroring the engine's own single-use contract).
    """

    def __init__(self, plan):
        self.plan = plan
        self.events = []
        self._run_seed = None
        self._num_workers = None
        self._current_superstep = None
        # spec index -> remaining firings (None = unbounded).
        self._remaining = {
            index: spec.times for index, spec in enumerate(plan.faults)
        }
        # (spec index, superstep, path) sites that already failed once.
        # A transient fault is a blip: the retry of the same append must
        # succeed, so each site fires at most once however many attempts
        # the writer makes (and however large the spec's budget is).
        self._transient_fired = set()

    # -- engine-facing hooks ------------------------------------------------

    def bind(self, run_seed, num_workers):
        """Called once by the engine before superstep 0."""
        self._run_seed = run_seed
        self._num_workers = num_workers

    def begin_superstep(self, superstep):
        """Marks the superstep all subsequent decisions belong to."""
        self._current_superstep = superstep

    def barrier_crash(self, superstep):
        """Worker id to kill at the barrier entering ``superstep``, or None."""
        for index, spec in self._iter_armed("worker_crash", superstep):
            if self._fires(index, spec, superstep, spec.worker_id):
                self._record(
                    spec.kind, superstep, f"worker-{spec.worker_id}",
                    "crash at superstep barrier",
                )
                return spec.worker_id
        return None

    def step_fault(self, superstep, worker_id):
        """Fault decision for one worker's step, made in the parent.

        Returns ``{"delay": seconds}`` and/or ``{"crash_after": calls}``
        merged into one dict, or None when this step runs clean.
        """
        fault = {}
        for index, spec in self._iter_armed("slow_worker", superstep):
            if spec.worker_id == worker_id and self._fires(
                index, spec, superstep, worker_id
            ):
                fault["delay"] = spec.delay_ms / 1000.0
                self._record(
                    spec.kind, superstep, f"worker-{worker_id}",
                    f"delayed {spec.delay_ms}ms",
                )
        for index, spec in self._iter_armed("step_crash", superstep):
            if spec.worker_id == worker_id and self._fires(
                index, spec, superstep, worker_id
            ):
                fault["crash_after"] = spec.after_calls
                self._record(
                    spec.kind, superstep, f"worker-{worker_id}",
                    f"crash after {spec.after_calls} compute() calls",
                )
        return fault or None

    def after_checkpoint(self, filesystem, path, superstep):
        """Corrupt a just-written checkpoint when the plan says so.

        ``superstep`` is the checkpoint's resume superstep. Corruption is
        a hard truncation to half the file — exactly the shape a machine
        loss mid-replication leaves behind — which the checksum header
        catches at recovery time.
        """
        for index, spec in self._iter_armed("checkpoint_corrupt", superstep):
            if self._fires(index, spec, superstep, path):
                size = filesystem.stat(path).size
                filesystem.truncate(path, size // 2)
                self._record(
                    spec.kind, superstep, path,
                    f"truncated {size} -> {size // 2} bytes",
                )

    # -- filesystem-facing hook --------------------------------------------

    def write_fault(self, path):
        """Fault verdict for one append: "transient", "torn", or None.

        Only consulted between ``begin_superstep`` calls (all engine and
        trace writes happen at barriers); writes before superstep 0 — the
        initial checkpoint, trace preludes — are never faulted, so every
        run starts from a structurally sound DFS.
        """
        superstep = self._current_superstep
        if superstep is None:
            return None
        for index, spec in self._iter_armed("transient_io", superstep):
            site = (index, superstep, path)
            if site in self._transient_fired:
                continue
            if path.endswith(spec.path_suffix) and self._fires(
                index, spec, superstep, path
            ):
                self._transient_fired.add(site)
                self._record(spec.kind, superstep, path, "transient append")
                return "transient"
        for index, spec in self._iter_armed("torn_write", superstep):
            if path.endswith(spec.path_suffix) and self._fires(
                index, spec, superstep, path
            ):
                self._record(spec.kind, superstep, path, "torn append")
                return "torn"
        return None

    # -- internals ----------------------------------------------------------

    def _iter_armed(self, kind, superstep):
        """Specs of ``kind`` that match ``superstep`` and have firings left."""
        for index, spec in enumerate(self.plan.faults):
            if spec.kind != kind or not spec.matches_superstep(superstep):
                continue
            remaining = self._remaining[index]
            if remaining is not None and remaining <= 0:
                continue
            yield index, spec

    def _fires(self, index, spec, superstep, target):
        """Decide one firing; decrement the spec's budget when it fires."""
        if spec.probability < 1.0:
            rng = derive_rng(
                self._run_seed, "chaos", index, spec.kind, superstep, str(target)
            )
            if rng.random() >= spec.probability:
                return False
        if self._remaining[index] is not None:
            self._remaining[index] -= 1
        return True

    def _record(self, kind, superstep, target, detail):
        self.events.append(FaultEvent(kind, superstep, target, detail))

    def event_dicts(self):
        return [event.to_dict() for event in self.events]


class ChaosFileSystem(SimFileSystem):
    """A simulated DFS whose appends can fail on the injector's command.

    - ``transient``: the append raises
      :class:`~repro.common.errors.SimFsTransientError` and the file is
      untouched; writers retry bounded and succeed.
    - ``torn``: half the data (at least one byte) lands, then
      :class:`~repro.common.errors.InjectedWriteCrash` is raised — a real
      torn tail produced by a real write. A full filesystem snapshot is
      taken at the moment of the crash (``crash_snapshots``), so tests can
      open readers against the exact bytes a machine loss would have left
      behind, before any recovery repaired them.
    """

    def __init__(self, injector=None, block_size=None):
        if block_size is None:
            super().__init__()
        else:
            super().__init__(block_size=block_size)
        self.injector = injector
        #: ``(path, SimFileSystem)`` pairs: the torn file and a snapshot of
        #: the whole filesystem right after the torn append.
        self.crash_snapshots = []

    def append_bytes(self, path, data):
        fault = (
            self.injector.write_fault(path)
            if self.injector is not None
            else None
        )
        if fault == "transient":
            raise SimFsTransientError(path)
        if fault == "torn":
            written = max(1, len(data) // 2)
            super().append_bytes(path, data[:written])
            self.crash_snapshots.append((path, self.snapshot()))
            raise InjectedWriteCrash(path, written, len(data))
        super().append_bytes(path, data)
