"""Seeded permutation of message delivery order (graft-san's lever).

The Pregel model hands ``compute()`` its inbox as an unordered bag; this
engine *canonicalizes* inbox order (stable sort by source id) so that
runs are byte-identical across backends. That determinism is also a
blind spot: order-sensitive user code produces the same (wrong-by-luck)
answer on every run, so nothing ever notices. A
:class:`PermutationSchedule` re-opens the model's freedom on purpose —
it shuffles each inbox into a *different but deterministic* order, seeded
via :func:`~repro.common.rng.derive_rng` from
``(seed, "san", schedule, superstep, target)``, without adding, dropping,
or altering any message. Two runs under the same schedule agree exactly;
runs under different schedules agree only if the computation is
order-insensitive. The sanitizer (:mod:`repro.graft.sanitizer`) turns
that contrast into verdicts.

Schedule 0 is the identity (canonical order); schedules 1, 2, ... are
distinct deterministic shuffles. The engine applies the schedule at the
barrier, *after* canonicalization and *before* combining — so combiner
folds experience the permuted order too, exercising GL015's hazard class
along with GL016–GL018's.
"""

from repro.common.rng import derive_rng


class PermutationSchedule:
    """Deterministically permute per-vertex inbox order at each barrier.

    ``schedule`` selects the permutation family member: 0 is the identity
    (useful as an explicit baseline), any other value yields a shuffle
    derived from ``(seed, "san", schedule, superstep, repr(target))`` —
    stable across backends, worker counts, and platforms. ``seed``
    defaults to the engine's run seed via :meth:`bind` (the same
    late-binding discipline the chaos injector uses).
    """

    def __init__(self, schedule=1, seed=None):
        self.schedule = schedule
        self.seed = seed

    def bind(self, run_seed):
        """Adopt the engine's run seed unless one was given explicitly."""
        if self.seed is None:
            self.seed = run_seed
        return self

    def is_identity(self):
        return self.schedule == 0

    def permute_inbox(self, target, superstep, envelopes):
        """Shuffle one inbox in place; returns True if order changed."""
        if self.schedule == 0 or len(envelopes) < 2:
            return False
        rng = derive_rng(
            self.seed, "san", self.schedule, superstep, repr(target)
        )
        rng.shuffle(envelopes)
        return True

    def permute_store(self, store, superstep):
        """Permute every inbox of a message store for one delivery superstep.

        Called at the barrier on the canonicalized store, in the parent
        process — so the permutation is identical whichever backend ran
        the workers. Returns the number of inboxes whose order changed.
        """
        if self.schedule == 0:
            return 0
        permuted = 0
        for target, envelopes in store._by_target.items():
            if self.permute_inbox(target, superstep, envelopes):
                permuted += 1
        return permuted

    def __repr__(self):
        return (
            f"PermutationSchedule(schedule={self.schedule!r}, "
            f"seed={self.seed!r})"
        )
