"""Out-of-core partitioned vertex/message store.

The engine's spill plane (``store="spill"``): vertex state lives in
per-partition *pages* and in-flight messages in sorted per-partition
*runs*, both written through :class:`~repro.simfs.BlockWriter` framing
onto a spill filesystem (a disk-backed
:class:`~repro.simfs.SpoolFileSystem` by default). The BSP loop then
schedules partition-at-a-time: load a page, merge-join its inbox runs,
compute, spill, advance — under a byte-budgeted LRU of hot pages.

See ``docs/scale.md`` for the formats and the memory-ceiling policy.
"""

from repro.pregel.store.pages import (
    PAGE_SEGMENT_ENTRIES,
    decode_segment,
    encode_segment,
    iter_frames,
)
from repro.pregel.store.runs import RunRouter, SpilledMessageStore
from repro.pregel.store.spill import PartitionPage, SpillStore

__all__ = [
    "PAGE_SEGMENT_ENTRIES",
    "PartitionPage",
    "RunRouter",
    "SpillStore",
    "SpilledMessageStore",
    "decode_segment",
    "encode_segment",
    "iter_frames",
]
