"""The spillable partitioned vertex store and its page cache.

:class:`SpillStore` owns the spill filesystem layout::

    <base>/pages/p<pid>.page       vertex page (BlockWriter segments)
    <base>/pages/p<pid>.page.idx   segment sidecar (offset length flags count)
    <base>/runs/s<ss>/p<pid>-w<wid>.run   sorted message runs

and a byte-budgeted LRU of decoded :class:`PartitionPage` objects.
Workers ``acquire`` a partition's page (pinning it for the duration of
the partition's compute slice) and ``release`` it dirty; unpinned pages
stay hot in the LRU until the budget forces a spill — so small graphs
effectively keep today's all-in-memory behaviour while big ones cycle
pages through disk.

Under the process backend the store is *frozen* inside worker children:
dirty pages are never written back (the children's spill directory is a
fork-shared view of the parent's); instead :meth:`collect_dirty` ships
the mutated partitions to the parent, which installs them at the
barrier via :meth:`replace_partition`.
"""

import threading
from collections import OrderedDict

from repro.common.errors import PregelError
from repro.pregel.store.pages import (
    PAGE_SEGMENT_ENTRIES,
    decode_segment,
    encode_segment,
    iter_frames,
)
from repro.pregel.store.runs import (
    RunRouter,
    SpilledMessageStore,
    run_directory,
)
from repro.simfs.writers import BlockWriter

#: Default page-cache budget: roomy for tier-1 graphs, a small slice of
#: any realistic memory ceiling for the scale bench.
DEFAULT_CACHE_BYTES = 64 * 1024 * 1024


def _estimate_page_bytes(values, edges):
    """Rough resident-size estimate used only for LRU budget accounting."""
    edge_slots = sum(len(edge_map) for edge_map in edges.values())
    return 160 * len(values) + 80 * edge_slots


class PartitionPage:
    """One partition's decoded vertex state, resident in memory."""

    __slots__ = ("partition_id", "values", "edges", "halted", "dirty",
                 "nbytes")

    def __init__(self, partition_id, values=None, edges=None, halted=None,
                 dirty=False):
        self.partition_id = partition_id
        self.values = values if values is not None else {}
        self.edges = edges if edges is not None else {}
        self.halted = halted if halted is not None else {}
        self.dirty = dirty
        self.nbytes = _estimate_page_bytes(self.values, self.edges)


class _Summary:
    """Per-partition aggregate facts that outlive the page's residency."""

    __slots__ = ("vertices", "edges", "halted")

    def __init__(self, vertices=0, edges=0, halted=0):
        self.vertices = vertices
        self.edges = edges
        self.halted = halted

    @property
    def all_halted(self):
        return self.halted >= self.vertices


class SpillStore:
    """Spillable partitioned vertex store over a simfs-like filesystem."""

    def __init__(self, filesystem=None, num_partitions=1,
                 cache_bytes=DEFAULT_CACHE_BYTES, base="/spill"):
        if filesystem is None:
            from repro.simfs.spool import SpoolFileSystem

            filesystem = SpoolFileSystem()
        self.filesystem = filesystem
        self.num_partitions = num_partitions
        self.cache_bytes = cache_bytes
        self.base = base.rstrip("/")
        self.lock = threading.RLock()
        self.frozen = False
        self._cache = OrderedDict()
        self._pins = {}
        self._summaries = {}
        self.pages_spilled = 0
        self.pages_loaded = 0
        self.bytes_spilled = 0
        self.bytes_loaded = 0
        self.page_hits = 0
        self.page_misses = 0
        self.value_fallbacks = 0

    # -- paths -------------------------------------------------------------

    def page_path(self, partition_id):
        return f"{self.base}/pages/p{partition_id:05d}.page"

    def index_path(self, partition_id):
        return self.page_path(partition_id) + ".idx"

    # -- telemetry ---------------------------------------------------------

    def counters(self):
        return {
            "pages_spilled": self.pages_spilled,
            "pages_loaded": self.pages_loaded,
            "bytes_spilled": self.bytes_spilled,
            "bytes_loaded": self.bytes_loaded,
            "page_hits": self.page_hits,
            "page_misses": self.page_misses,
            "value_fallbacks": self.value_fallbacks,
        }

    def resident_partitions(self):
        with self.lock:
            return len(self._cache) + len(self._pins)

    def resident_bytes(self):
        with self.lock:
            return sum(page.nbytes for page in self._cache.values()) + sum(
                page.nbytes for page, _count in self._pins.values()
            )

    # -- page lifecycle ----------------------------------------------------

    def acquire(self, partition_id):
        """Pin a partition's page in memory and return it."""
        with self.lock:
            pinned = self._pins.get(partition_id)
            if pinned is not None:
                pinned[1] += 1
                return pinned[0]
            page = self._cache.pop(partition_id, None)
            if page is not None:
                self.page_hits += 1
            else:
                self.page_misses += 1
                page = self._load_page(partition_id)
            self._pins[partition_id] = [page, 1]
            return page

    def release(self, partition_id, dirty=False):
        """Unpin; dirty pages refresh their summary and may spill later."""
        with self.lock:
            pinned = self._pins.get(partition_id)
            if pinned is None:
                raise PregelError(
                    f"release of unpinned partition {partition_id}"
                )
            page, _count = pinned
            if dirty:
                page.dirty = True
            pinned[1] -= 1
            if pinned[1] > 0:
                return
            del self._pins[partition_id]
            if page.dirty:
                self._refresh_summary(page)
            self._cache[partition_id] = page
            self._evict()

    def _refresh_summary(self, page):
        summary = self._summaries.setdefault(
            page.partition_id, _Summary()
        )
        summary.vertices = len(page.values)
        summary.edges = sum(len(edge_map) for edge_map in page.edges.values())
        summary.halted = sum(1 for flag in page.halted.values() if flag)
        page.nbytes = _estimate_page_bytes(page.values, page.edges)

    def _evict(self):
        if self.cache_bytes is None:
            return
        resident = sum(page.nbytes for page in self._cache.values())
        if resident <= self.cache_bytes:
            return
        for partition_id in list(self._cache):
            if resident <= self.cache_bytes:
                break
            page = self._cache[partition_id]
            if page.dirty and self.frozen:
                # Children must not write the fork-shared spill area;
                # dirty pages stay resident until collect_dirty().
                continue
            del self._cache[partition_id]
            if page.dirty:
                self._write_page(page)
            resident -= page.nbytes

    def _load_page(self, partition_id):
        path = self.page_path(partition_id)
        if not self.filesystem.exists(path):
            return PartitionPage(partition_id)
        data = self.filesystem.read_bytes(path)
        values = {}
        edges = {}
        halted = {}
        for payload in iter_frames(data):
            ids, vals, edge_maps, flags, fallback = decode_segment(payload)
            if fallback:
                self.value_fallbacks += 1
            for vid, value, edge_map, flag in zip(ids, vals, edge_maps, flags):
                values[vid] = value
                edges[vid] = edge_map
                halted[vid] = flag
        self.pages_loaded += 1
        self.bytes_loaded += len(data)
        return PartitionPage(partition_id, values, edges, halted)

    def _write_page(self, page):
        writer = BlockWriter(self.filesystem, self.page_path(page.partition_id))
        index_lines = []
        entries = []
        values = page.values
        edges = page.edges
        halted = page.halted
        for vertex_id in values:
            entries.append(
                (vertex_id, values[vertex_id], edges[vertex_id],
                 halted[vertex_id])
            )
            if len(entries) >= PAGE_SEGMENT_ENTRIES:
                offset, length, flags = writer.write_block(
                    encode_segment(entries)
                )
                index_lines.append(f"{offset} {length} {flags} {len(entries)}")
                entries = []
        if entries or not index_lines:
            offset, length, flags = writer.write_block(encode_segment(entries))
            index_lines.append(f"{offset} {length} {flags} {len(entries)}")
        writer.close()
        self.filesystem.create(self.index_path(page.partition_id),
                               overwrite=True)
        self.filesystem.append_text(
            self.index_path(page.partition_id),
            "".join(line + "\n" for line in index_lines),
        )
        self.pages_spilled += 1
        self.bytes_spilled += writer.offset
        page.dirty = False

    def flush(self):
        """Spill every dirty unpinned page (tests and shutdown hygiene)."""
        with self.lock:
            for page in self._cache.values():
                if page.dirty:
                    self._write_page(page)

    # -- frozen-mode state transfer (process backend) ----------------------

    def collect_dirty(self, partition_ids):
        """Detach dirty pages for shipping to the parent at the barrier."""
        with self.lock:
            shipped = {}
            for partition_id in partition_ids:
                page = self._cache.get(partition_id)
                if page is not None and page.dirty:
                    shipped[partition_id] = (
                        page.values, page.edges, page.halted
                    )
                    del self._cache[partition_id]
            return shipped

    def replace_partition(self, partition_id, values, edges, halted):
        """Install a partition's full state (barrier absorb / restore)."""
        page = PartitionPage(
            partition_id, dict(values),
            {vid: dict(edge_map) for vid, edge_map in edges.items()},
            dict(halted), dirty=True,
        )
        with self.lock:
            if partition_id in self._pins:
                raise PregelError(
                    f"replace_partition({partition_id}) while pinned"
                )
            self._cache.pop(partition_id, None)
            self._refresh_summary(page)
            self._cache[partition_id] = page
            self._evict()

    def install_run_file(self, path, data):
        """Install a child-shipped run file verbatim (parent, barrier)."""
        self.filesystem.create(path, overwrite=True)
        self.filesystem.append_bytes(path, data)

    # -- point access (barrier mutations, debugger reads) ------------------

    def add_vertex(self, partition_id, vertex_id, value, edge_map):
        page = self.acquire(partition_id)
        try:
            page.values[vertex_id] = value
            page.edges[vertex_id] = dict(edge_map)
            page.halted[vertex_id] = False
        finally:
            self.release(partition_id, dirty=True)

    def remove_vertex(self, partition_id, vertex_id):
        page = self.acquire(partition_id)
        try:
            page.values.pop(vertex_id, None)
            page.edges.pop(vertex_id, None)
            page.halted.pop(vertex_id, None)
        finally:
            self.release(partition_id, dirty=True)

    def has_vertex(self, partition_id, vertex_id):
        page = self.acquire(partition_id)
        try:
            return vertex_id in page.values
        finally:
            self.release(partition_id)

    def get_vertex_value(self, partition_id, vertex_id):
        page = self.acquire(partition_id)
        try:
            return page.values[vertex_id]
        finally:
            self.release(partition_id)

    def get_vertex_edges(self, partition_id, vertex_id):
        page = self.acquire(partition_id)
        try:
            return dict(page.edges[vertex_id])
        finally:
            self.release(partition_id)

    def iter_partition(self, partition_id):
        """``(vertex_id, value, edge_map, halted)`` for one partition.

        Materializes the partition's entry list while pinned, then
        releases — callers may consume lazily without holding a pin.
        """
        page = self.acquire(partition_id)
        try:
            entries = [
                (vid, page.values[vid], page.edges[vid], page.halted[vid])
                for vid in page.values
            ]
        finally:
            self.release(partition_id)
        return iter(entries)

    # -- summaries ---------------------------------------------------------

    def summary(self, partition_id):
        return self._summaries.get(partition_id) or _Summary()

    def num_vertices(self, partition_ids):
        return sum(self.summary(pid).vertices for pid in partition_ids)

    def num_edges(self, partition_ids):
        return sum(self.summary(pid).edges for pid in partition_ids)

    def all_halted(self, partition_ids):
        return all(self.summary(pid).all_halted for pid in partition_ids)

    # -- runs --------------------------------------------------------------

    def run_router(self, worker_id, superstep, partitioner, locations,
                   deferred=False):
        return RunRouter(
            self.filesystem, self.base, worker_id, superstep, partitioner,
            locations, lock=self.lock, deferred=deferred,
        )

    def message_store(self, superstep, total_messages=0, combiner=None):
        return SpilledMessageStore(
            self.filesystem, self.base, superstep, self.num_partitions,
            total_messages=total_messages, combiner=combiner,
        )

    def clear_runs(self, superstep):
        """Delete the run files for one delivery superstep.

        Called before every superstep execution (so a crashed attempt's
        torn runs can never leak into a re-execution) and after a
        superstep's inbox has been fully consumed.
        """
        directory = run_directory(self.base, superstep)
        for path in self.filesystem.glob_files(directory, suffix=".run"):
            self.filesystem.delete(path)

    # -- bulk build --------------------------------------------------------

    def builder(self):
        return PageBuilder(self)


class PageBuilder:
    """Chunked bulk loader: streams vertices into page segments.

    Vertices arrive in graph order and are buffered per partition; when
    the global buffer reaches the segment budget every non-empty
    partition buffer is appended to its page file as one segment. Peak
    build memory is one segment budget regardless of graph size — this
    is what lets a ≥1M-vertex registry dataset materialize directly into
    the store.
    """

    def __init__(self, store, segment_entries=PAGE_SEGMENT_ENTRIES):
        self._store = store
        self._segment_entries = segment_entries
        self._buffers = {}
        self._buffered = 0
        self._writers = {}
        self._index_lines = {}
        self._counts = {}

    def add(self, partition_id, vertex_id, value, edge_map, halted=False):
        edge_map = dict(edge_map)
        entry = (vertex_id, value, edge_map, halted)
        batch = self._buffers.get(partition_id)
        if batch is None:
            self._buffers[partition_id] = [entry]
        else:
            batch.append(entry)
        counts = self._counts.get(partition_id)
        if counts is None:
            counts = self._counts[partition_id] = [0, 0, 0]
        counts[0] += 1
        counts[1] += len(edge_map)
        if halted:
            counts[2] += 1
        self._buffered += 1
        if self._buffered >= self._segment_entries:
            self._flush()

    def _flush(self):
        store = self._store
        for partition_id in sorted(self._buffers):
            batch = self._buffers[partition_id]
            if not batch:
                continue
            writer = self._writers.get(partition_id)
            if writer is None:
                writer = BlockWriter(
                    store.filesystem, store.page_path(partition_id)
                )
                self._writers[partition_id] = writer
                self._index_lines[partition_id] = []
            offset, length, flags = writer.write_block(encode_segment(batch))
            self._index_lines[partition_id].append(
                f"{offset} {length} {flags} {len(batch)}"
            )
            self._buffers[partition_id] = []
        self._buffered = 0

    def finish(self):
        """Seal page files, write sidecars, and install summaries."""
        self._flush()
        store = self._store
        for partition_id, writer in sorted(self._writers.items()):
            writer.close()
            store.filesystem.create(
                store.index_path(partition_id), overwrite=True
            )
            store.filesystem.append_text(
                store.index_path(partition_id),
                "".join(
                    line + "\n"
                    for line in self._index_lines[partition_id]
                ),
            )
            store.pages_spilled += 1
            store.bytes_spilled += writer.offset
        for partition_id in range(store.num_partitions):
            vertices, edges, halted = self._counts.get(
                partition_id, (0, 0, 0)
            )
            store._summaries[partition_id] = _Summary(vertices, edges, halted)
