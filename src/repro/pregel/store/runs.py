"""Sorted message spill runs and their merge-join reader.

Messages emitted under ``store="spill"`` are routed straight into
per-partition *run files* instead of in-memory grouped outboxes. Worker
``w``'s messages for partition ``p``, to be delivered at superstep
``s``, land in ``<base>/runs/s<s>/p<p>-w<w>.run``: a sequence of
BlockWriter frames, each framing one *run* — a chunk of ``(source,
target, value)`` triples sorted by ``(repr(target), repr(source))``.
Chunks are cut whenever the router's in-memory buffer reaches its entry
budget, so emission memory stays bounded no matter how many messages a
superstep produces.

Delivery is a k-way **merge-join**: all of a partition's runs are merged
(``heapq.merge``) into one stream ordered by target, then source — and
joined against the partition's vertex page. The merge reproduces the
in-memory plane's canonical inbox order *exactly*: the in-memory store
concatenates worker outboxes in worker-id order and stably sorts each
inbox by ``repr(source)``; here the sort key is the same and
``heapq.merge`` breaks ties by input order, where inputs are enumerated
(worker id, chunk sequence) — i.e. worker-id order, then emission
order. Byte-identical trace digests across the two planes follow.
"""

import heapq
import pickle
import threading

from repro.common.errors import PregelError
from repro.pregel.messages import Envelope
from repro.pregel.store.pages import iter_frames
from repro.simfs.writers import BlockWriter

RUN_MAGIC = b"MRN1"

#: Buffered ``(source, target, value)`` triples per router before a
#: chunk is sorted and spilled.
RUN_CHUNK_ENTRIES = 16384


def run_directory(base, superstep):
    return f"{base}/runs/s{superstep:05d}"


def run_path(base, superstep, partition_id, worker_id):
    return (
        f"{run_directory(base, superstep)}/"
        f"p{partition_id:05d}-w{worker_id:03d}.run"
    )


def _run_sort_key(triple):
    return (repr(triple[1]), repr(triple[0]))


def encode_run(triples):
    """One sorted chunk of ``(source, target, value)`` triples to bytes."""
    return RUN_MAGIC + pickle.dumps(triples, protocol=4)


def decode_run(payload):
    if payload[:4] != RUN_MAGIC:
        raise PregelError(
            f"bad message run magic {payload[:4]!r} (expected MRN1)"
        )
    return pickle.loads(payload[4:])


class RunRouter:
    """Routes one worker's emitted messages into sorted spill runs.

    ``deferred=True`` (the process backend) buffers the run files in a
    private in-memory filesystem; :meth:`shipped_files` hands the bytes
    to the parent, which installs them verbatim — offsets and framing
    are file-relative, so the bytes are position-independent.

    The router also fills the resolver's work list as it goes: a target
    absent from ``locations`` *at emit time* is recorded as a suspect
    with its message count. The barrier re-checks suspects after graph
    mutations, so a vertex created at the same barrier still receives
    its messages, exactly as the in-memory plane's
    ``missing_targets`` scan behaves.
    """

    def __init__(self, filesystem, base, worker_id, superstep, partitioner,
                 locations, chunk_entries=RUN_CHUNK_ENTRIES, lock=None,
                 deferred=False):
        if deferred:
            from repro.simfs.filesystem import SimFileSystem

            filesystem = SimFileSystem()
            lock = None
        self._fs = filesystem
        self._base = base
        self._worker_id = worker_id
        self._superstep = superstep
        self._partitioner = partitioner
        self._locations = locations
        self._chunk_entries = chunk_entries
        self._lock = lock or threading.RLock()
        self._deferred = deferred
        self._buffers = {}
        self._buffered = 0
        self._writers = {}
        self.count = 0
        self.suspects = set()
        self.suspect_counts = {}
        self._sealed = False

    def add(self, source, target, value):
        partition_id = self._partitioner.partition_for(target)
        batch = self._buffers.get(partition_id)
        if batch is None:
            self._buffers[partition_id] = [(source, target, value)]
        else:
            batch.append((source, target, value))
        if target not in self._locations:
            self.suspects.add(target)
            self.suspect_counts[target] = (
                self.suspect_counts.get(target, 0) + 1
            )
        self.count += 1
        self._buffered += 1
        if self._buffered >= self._chunk_entries:
            self._flush()

    def add_broadcast(self, source, targets, value):
        for target in targets:
            self.add(source, target, value)

    def _flush(self):
        for partition_id in sorted(self._buffers):
            batch = self._buffers[partition_id]
            if not batch:
                continue
            # Stable sort: one source's messages to one target keep their
            # emission order, matching MessageStore.canonicalize().
            batch.sort(key=_run_sort_key)
            writer = self._writers.get(partition_id)
            if writer is None:
                writer = BlockWriter(
                    self._fs,
                    run_path(
                        self._base, self._superstep, partition_id,
                        self._worker_id,
                    ),
                )
                self._writers[partition_id] = writer
            with self._lock:
                writer.write_block(encode_run(batch))
            self._buffers[partition_id] = []
        self._buffered = 0

    def seal(self):
        """Flush remaining buffers and close the chunk writers."""
        if self._sealed:
            return
        self._flush()
        for writer in self._writers.values():
            writer.close()
        self._sealed = True

    def shipped_files(self):
        """Deferred mode: the sealed run files as ``[(path, bytes)]``."""
        if not self._deferred:
            return []
        return [
            (writer.path, self._fs.read_bytes(writer.path))
            for _, writer in sorted(self._writers.items())
        ]


def partition_run_paths(filesystem, base, superstep, partition_id):
    """The run files feeding one partition, in (worker, file) name order."""
    prefix = f"p{partition_id:05d}-"
    return sorted(
        path
        for path in filesystem.glob_files(
            run_directory(base, superstep), suffix=".run"
        )
        if path.rsplit("/", 1)[-1].startswith(prefix)
    )


def iter_partition_triples(filesystem, base, superstep, partition_id):
    """Merged ``(source, target, value)`` stream for one partition.

    Each BlockWriter frame is one independently sorted run; the streams
    are k-way merged with the same key the runs were sorted by.
    ``heapq.merge`` is stable across its inputs, and the inputs are
    enumerated in (worker id, chunk sequence) order — reproducing the
    in-memory canonical inbox order tie for tie.
    """
    runs = []
    for path in partition_run_paths(filesystem, base, superstep, partition_id):
        data = filesystem.read_bytes(path)
        for payload in iter_frames(data):
            runs.append(decode_run(payload))
    if not runs:
        return iter(())
    if len(runs) == 1:
        return iter(runs[0])
    return heapq.merge(*runs, key=_run_sort_key)


def count_run_targets(filesystem, base, superstep, partitioner, vertex_ids):
    """How many spilled messages address each of ``vertex_ids``.

    The resolver's removed-vertex path: after a barrier removes a
    vertex, any in-flight message to it must recreate it (policy
    ``create``) or be dropped — either way the barrier needs the count.
    Scans only the partitions the ids map to.
    """
    by_partition = {}
    for vertex_id in vertex_ids:
        by_partition.setdefault(
            partitioner.partition_for(vertex_id), set()
        ).add(vertex_id)
    counts = {}
    for partition_id, wanted in sorted(by_partition.items()):
        for source, target, value in iter_partition_triples(
            filesystem, base, superstep, partition_id
        ):
            if target in wanted:
                counts[target] = counts.get(target, 0) + 1
    return counts


class _PartitionInbox:
    """One partition's merged, canonically ordered inboxes.

    Implements the message-store read protocol
    (``inbox_values`` / ``incoming_view`` / ``has_inbox`` / ``inbox``)
    over a partition-local dict, so the worker's inner compute loop is
    identical under both planes. Each worker gets its own view — there
    is no shared mutable cursor, which keeps the threads backend safe.
    """

    __slots__ = ("partition_id", "_by_target", "eliminated")

    def __init__(self, partition_id, by_target, eliminated):
        self.partition_id = partition_id
        self._by_target = by_target
        self.eliminated = eliminated

    def inbox(self, vertex_id):
        return self._by_target.get(vertex_id, [])

    def inbox_values(self, vertex_id):
        batch = self._by_target.get(vertex_id)
        if batch is None:
            return []
        return [envelope.value for envelope in batch]

    def incoming_view(self, vertex_id):
        return self._by_target.get(vertex_id, [])

    def has_inbox(self, vertex_id):
        return vertex_id in self._by_target

    def targets(self):
        return self._by_target.keys()


class SpilledMessageStore:
    """The spill plane's superstep message store.

    Holds no message bytes itself — only the identity of the run
    directory, the routed-message total, and the resolver's dropped set.
    :meth:`load_partition` performs the merge for one partition and
    returns a :class:`_PartitionInbox`; the combiner (when configured)
    folds each multi-message inbox at load time, in canonical order,
    with the combined envelope losing its source — the exact semantics
    of :meth:`MessageStore.combine`.
    """

    def __init__(self, filesystem, base, superstep, num_partitions,
                 total_messages=0, combiner=None):
        self.filesystem = filesystem
        self.base = base
        self.superstep = superstep
        self.num_partitions = num_partitions
        self.total_messages = total_messages
        self._combiner = combiner
        self._dropped = set()

    def load_partition(self, partition_id):
        by_target = {}
        dropped = self._dropped
        for source, target, value in iter_partition_triples(
            self.filesystem, self.base, self.superstep, partition_id
        ):
            if target in dropped:
                continue
            envelope = Envelope(source=source, target=target, value=value)
            batch = by_target.get(target)
            if batch is None:
                by_target[target] = [envelope]
            else:
                batch.append(envelope)
        eliminated = 0
        combiner = self._combiner
        if combiner is not None:
            for target, envelopes in by_target.items():
                if len(envelopes) <= 1:
                    continue
                folded = envelopes[0].value
                for envelope in envelopes[1:]:
                    folded = combiner.combine(folded, envelope.value)
                eliminated += len(envelopes) - 1
                by_target[target] = [
                    Envelope(source=None, target=target, value=folded)
                ]
        return _PartitionInbox(partition_id, by_target, eliminated)

    def has_messages(self):
        return self.total_messages > 0

    def drop_target(self, target, count):
        """Resolver policy ``drop``: discard a missing target's messages."""
        self._dropped.add(target)
        self.total_messages -= count

    def count_targets(self, partitioner, vertex_ids):
        return count_run_targets(
            self.filesystem, self.base, self.superstep, partitioner,
            vertex_ids,
        )

    def iter_checkpoint_messages(self):
        """``(source, target, value)`` for every undropped in-flight message.

        Per-target order is the canonical merged order, which is what a
        checkpoint must preserve: restore re-delivers in file order and
        the re-executed superstep consumes inboxes as delivered.
        """
        for partition_id in range(self.num_partitions):
            view = self.load_partition(partition_id)
            for target in view.targets():
                for envelope in view.inbox(target):
                    yield envelope.source, target, envelope.value
