"""Vertex page segments: the on-disk layout of partitioned vertex state.

A partition's *page file* is a sequence of
:class:`~repro.simfs.BlockWriter` frames (``u32be stored_length | u8
flags | bytes``, zlib-compressed when that shrinks). Each frame's
payload is one **segment** — a batch of vertices in arrival order:

    ``b"VPG1" | u32 count | u32 ids_len | u32 values_len | u32 edges_len
    | ids | values | edges | halted bitmap``

- ``ids``: the vertex ids, one flat pickled list (ids are arbitrary
  hashable objects);
- ``values``: a :class:`~repro.pregel.columnar.ColumnBuilder` column —
  float/int/registered-fixed-width values pack as typed arrays exactly
  like message value columns; anything else degrades to the pickled
  fallback (``COL_OBJ``) with no loss;
- ``edges``: one pickled list of ``{target: edge_value}`` maps;
- ``halted``: one bit per vertex.

Pages keep vertices in *arrival order* (the order the graph loader or
the last spill wrote them), because compute order within a worker must
match the in-memory plane for per-worker aggregator folds to be
bit-identical. The canonical trace digest is insensitive to this order
either way.

A ``.idx`` sidecar accompanies every page file: one ``offset length
flags count`` line per segment frame, so a reader can fetch any segment
with a single ranged read — the same sidecar convention as the v2 trace
format (see ``docs/trace-format.md``).
"""

import pickle
import struct
import zlib

from repro.common.errors import PregelError
from repro.pregel.columnar import ColumnBuilder, decode_column
from repro.simfs.writers import BLOCK_FLAG_ZLIB

SEGMENT_MAGIC = b"VPG1"

#: Vertices per page segment: small enough that a segment encodes in one
#: bounded buffer during chunked builds, large enough that framing and
#: pickling amortize.
PAGE_SEGMENT_ENTRIES = 8192


def encode_segment(entries):
    """Encode ``[(vertex_id, value, edge_map, halted), ...]`` to bytes."""
    ids = []
    column = ColumnBuilder()
    edges = []
    bits = bytearray((len(entries) + 7) // 8)
    for position, (vertex_id, value, edge_map, halted) in enumerate(entries):
        ids.append(vertex_id)
        column.append(value)
        edges.append(edge_map)
        if halted:
            bits[position >> 3] |= 1 << (position & 7)
    ids_blob = pickle.dumps(ids, protocol=4)
    values_blob = column.encode()
    edges_blob = pickle.dumps(edges, protocol=4)
    header = SEGMENT_MAGIC + struct.pack(
        ">IIII", len(entries), len(ids_blob), len(values_blob), len(edges_blob)
    )
    return b"".join((header, ids_blob, values_blob, edges_blob, bytes(bits)))


def decode_segment(blob):
    """Decode one segment payload.

    Returns ``(ids, values, edge_maps, halted_flags, value_fallback)``
    where ``value_fallback`` is True when the value section used the
    pickled-object column rather than a typed one.
    """
    if blob[:4] != SEGMENT_MAGIC:
        raise PregelError(
            f"bad vertex page segment magic {blob[:4]!r} (expected VPG1)"
        )
    count, ids_len, values_len, edges_len = struct.unpack(">IIII", blob[4:20])
    offset = 20
    ids = pickle.loads(blob[offset:offset + ids_len])
    offset += ids_len
    values, value_fallback = decode_column(blob[offset:offset + values_len])
    offset += values_len
    edges = pickle.loads(blob[offset:offset + edges_len])
    offset += edges_len
    bits = blob[offset:offset + (count + 7) // 8]
    halted = [bool(bits[i >> 3] & (1 << (i & 7))) for i in range(count)]
    if not (len(ids) == len(values) == len(edges) == count):
        raise PregelError(
            f"vertex page segment section lengths disagree: "
            f"{len(ids)}/{len(values)}/{len(edges)} vs count {count}"
        )
    return ids, values, edges, halted, value_fallback


def iter_frames(data):
    """Yield the payloads of consecutive BlockWriter frames in ``data``.

    The inverse of :meth:`~repro.simfs.BlockWriter.write_block` applied
    to a whole file: parses ``u32be stored_length | u8 flags | stored``
    frames back to payload bytes, inflating zlib-flagged blocks. A torn
    trailing frame (truncated mid-append) raises — spill files are only
    read after their writer sealed, so a short frame is corruption.
    """
    offset = 0
    total = len(data)
    while offset < total:
        if offset + 5 > total:
            raise PregelError("torn frame header in spill file")
        stored_length = int.from_bytes(data[offset:offset + 4], "big")
        flags = data[offset + 4]
        start = offset + 5
        end = start + stored_length
        if end > total:
            raise PregelError("torn frame payload in spill file")
        payload = data[start:end]
        if flags & BLOCK_FLAG_ZLIB:
            payload = zlib.decompress(payload)
        yield bytes(payload)
        offset = end
