"""A simulated Giraph worker.

Each worker owns the values, adjacency, and halt flags of the vertices its
partition assigned to it, and executes ``compute()`` for its active
vertices each superstep. Workers are plain objects scheduled by the
engine's execution backend (serially or concurrently); everything a
distributed worker would do at the API level — message emission,
aggregator partials, mutation requests, metrics — happens here, so Graft's
per-worker trace files come out exactly as they would on a cluster.

A worker's per-superstep outputs are written only by its own step, so the
parallel backends need no locks: the engine hands each worker a private
aggregator buffer and reads all outputs back at the barrier.
"""

from array import array

from repro.common.errors import ComputeError, InjectedWorkerCrash
from repro.pregel.columnar import ColumnarOutbox
from repro.pregel.context import ComputeContext, ComputeServices
from repro.pregel.messages import BROADCAST_TARGET, Envelope


class _WorkerServices(ComputeServices):
    """Bridges contexts to the worker's per-superstep state."""

    def __init__(self, worker):
        self._worker = worker

    def aggregated_value(self, name):
        return self._worker._aggregators.visible_value(name)

    def aggregate(self, name, contribution):
        self._worker._aggregators.aggregate(name, contribution)

    def note_edges_mutated(self):
        # One worker-wide flag: any in-place adjacency edit this superstep
        # taints broadcast-compaction and forces the engine to rebuild the
        # columnar reverse index (and, under the process backend, to ship
        # this worker's edges back).
        self._worker.edges_dirty = True

    def emit(self, envelope):
        worker = self._worker
        outbox = worker.outbox
        batch = outbox.get(envelope.target)
        if batch is None:
            outbox[envelope.target] = [envelope]
        else:
            batch.append(envelope)
        worker.messages_sent += 1
        worker.bytes_sent += _estimate_bytes(envelope.value)

    def emit_broadcast(self, source, targets, value):
        # Broadcast fast path: one shared envelope, one size estimate, and
        # one counter update for the whole fan-out. The envelope is filed
        # under every target's batch — immutable, so sharing is safe — and
        # its authoritative target is the batch key, not its target field.
        worker = self._worker
        outbox = worker.outbox
        shared = Envelope(source=source, target=BROADCAST_TARGET, value=value)
        for target in targets:
            batch = outbox.get(target)
            if batch is None:
                outbox[target] = [shared]
            else:
                batch.append(shared)
        worker.messages_sent += len(targets)
        worker.bytes_sent += len(targets) * _estimate_bytes(value)

    def request_add_vertex(self, vertex_id, value):
        self._worker.add_vertex_requests.append((vertex_id, value))

    def request_remove_vertex(self, vertex_id):
        self._worker.remove_vertex_requests.append(vertex_id)


class _ColumnarServices(_WorkerServices):
    """Emission into packed columns instead of envelope lists.

    Point sends append to the target's typed column batch; broadcasts
    append one compact ``(source, seq, value)`` record for the whole
    fan-out — unless this worker already mutated adjacency this superstep
    (``edges_dirty``), in which case the engine-side reverse index no
    longer matches the emit-time neighbor set and the fan-out is filed as
    explicit per-target entries instead. Counters and byte estimates match
    the envelope services exactly.
    """

    def emit(self, envelope):
        worker = self._worker
        worker.outbox.add_point(envelope.source, envelope.target, envelope.value)
        worker.messages_sent += 1
        worker.bytes_sent += _estimate_bytes(envelope.value)

    def emit_broadcast(self, source, targets, value):
        fan_out = len(targets)
        if not fan_out:
            return
        worker = self._worker
        if worker.edges_dirty:
            worker.outbox.add_broadcast_explicit(source, targets, value)
        else:
            worker.outbox.add_broadcast(source, value, fan_out)
        worker.messages_sent += fan_out
        worker.bytes_sent += fan_out * _estimate_bytes(value)


# Fixed estimates for types whose size doesn't depend on content enough to
# matter for accounting. Exact-class keys so bool doesn't fall into int via
# isinstance checks.
_FIXED_SIZES = {type(None): 1, bool: 1, int: 8, float: 8}
_CONTAINER_TYPES = (list, tuple, set, frozenset, dict)
# First-instance size estimate per unknown type, so repeated messages of a
# user value class cost one dict lookup instead of a repr each.
_LEARNED_SIZES = {}


def _estimate_bytes(value):
    """Cheap serialized-size estimate for network accounting.

    O(1) in the size of the value: scalars use fixed sizes, strings/bytes
    their length, containers a shallow per-slot estimate, and unknown types
    the repr length of the first instance seen (cached per type). Byte
    counts are an accounting signal, not a codec — they must never cost
    more than the send itself, which the old ``len(str(value))`` did for
    large nested payloads.
    """
    cls = value.__class__
    fixed = _FIXED_SIZES.get(cls)
    if fixed is not None:
        return 16 + fixed
    if cls is str or cls is bytes or cls is bytearray:
        return 16 + len(value)
    if cls is memoryview:
        # A learned repr would report the ~50-char repr string, not the
        # buffer; nbytes is exact and O(1).
        return 16 + value.nbytes
    if cls is array:
        return 16 + len(value) * value.itemsize
    if cls in _CONTAINER_TYPES or isinstance(value, _CONTAINER_TYPES):
        return 32 + 8 * len(value)
    learned = _LEARNED_SIZES.get(cls)
    if learned is None:
        try:
            learned = len(repr(value))
        except Exception:  # noqa: BLE001 - estimation must never raise
            learned = 64
        _LEARNED_SIZES[cls] = learned
    return 16 + learned


class Worker:
    """One simulated worker: vertex state plus superstep execution."""

    def __init__(self, worker_id, run_seed):
        self.worker_id = worker_id
        self.run_seed = run_seed
        self.values = {}
        self.edges = {}
        self.halted = {}
        self._envelope_services = _WorkerServices(self)
        self._columnar_services = _ColumnarServices(self)
        self._services = self._envelope_services
        self._aggregators = None
        # Per-superstep outputs, reset by prepare_superstep():
        self.columnar = False
        self.outbox = {}
        self.edges_dirty = False
        self.add_vertex_requests = []
        self.remove_vertex_requests = []
        self.messages_sent = 0
        self.bytes_sent = 0
        self.compute_calls = 0
        self.compute_errors = []

    # -- loading & mutation ------------------------------------------------

    def load_vertex(self, vertex_id, value, edge_map):
        """Place a vertex on this worker (initial load or barrier creation)."""
        self.values[vertex_id] = value
        self.edges[vertex_id] = dict(edge_map)
        self.halted[vertex_id] = False

    def remove_vertex(self, vertex_id):
        self.values.pop(vertex_id, None)
        self.edges.pop(vertex_id, None)
        self.halted.pop(vertex_id, None)

    def has_vertex(self, vertex_id):
        return vertex_id in self.values

    def get_vertex_value(self, vertex_id):
        return self.values[vertex_id]

    def get_vertex_edges(self, vertex_id):
        return dict(self.edges[vertex_id])

    def iter_state(self):
        """Iterate ``(vertex_id, value, edge_map, halted)`` — checkpoint view."""
        for vertex_id, value in self.values.items():
            yield vertex_id, value, self.edges[vertex_id], self.halted[vertex_id]

    def restore_state(self, values, edges, halted):
        """Overwrite this worker's full vertex state (checkpoint restore)."""
        self.values = values
        self.edges = edges
        self.halted = halted

    @property
    def num_vertices(self):
        return len(self.values)

    @property
    def num_edges(self):
        return sum(len(edge_map) for edge_map in self.edges.values())

    # -- superstep execution -------------------------------------------------

    def prepare_superstep(self, aggregators, columnar=False):
        """Reset per-superstep outputs and bind the aggregator sink.

        ``aggregators`` is anything with ``visible_value``/``aggregate`` —
        the shared :class:`~repro.pregel.aggregators.AggregatorRegistry`
        (serial semantics) or a worker-local
        :class:`~repro.pregel.aggregators.AggregatorBuffer` (what the
        engine's backends hand out so steps never share mutable state).

        ``columnar`` selects the packed outbox + columnar emission services
        for this superstep (the engine's columnar fast path); otherwise
        emission goes through the classic grouped-envelope outbox.
        """
        self._aggregators = aggregators
        self.columnar = columnar
        if columnar:
            self.outbox = ColumnarOutbox()
            self._services = self._columnar_services
        else:
            self.outbox = {}
            self._services = self._envelope_services
        self.edges_dirty = False
        self.add_vertex_requests = []
        self.remove_vertex_requests = []
        self.messages_sent = 0
        self.bytes_sent = 0
        self.compute_calls = 0
        self.compute_errors = []

    def outbox_envelopes(self):
        """All envelopes emitted this superstep, fully addressed.

        Envelope outboxes report emission order per target (shared
        broadcast envelopes rewritten with the batch's real target);
        columnar outboxes expand compact broadcast records against the
        worker's adjacency and restore global emission order via the seq
        column. Debug/introspection only — never on the hot path.
        """
        if self.columnar:
            return self.outbox.envelopes(
                lambda source: self.edges.get(source, ())
            )
        return [
            envelope
            if envelope.target is not BROADCAST_TARGET
            else Envelope(envelope.source, target, envelope.value)
            for target, batch in self.outbox.items()
            for envelope in batch
        ]

    def active_vertices(self, superstep, message_store):
        """Ids this worker must run compute() on this superstep, in order."""
        if superstep == 0:
            return list(self.values)
        return [
            vertex_id
            for vertex_id in self.values
            if not self.halted[vertex_id] or message_store.has_inbox(vertex_id)
        ]

    def run_superstep(
        self,
        computation,
        superstep,
        message_store,
        num_vertices,
        num_edges,
        on_error="raise",
        crash_after_calls=None,
    ):
        """Execute one superstep over this worker's active vertices.

        ``on_error`` controls what a raising ``compute()`` does: ``raise``
        propagates a :class:`ComputeError` (a failed Giraph job); with
        ``halt_vertex`` the vertex is marked halted, the error recorded, and
        the superstep continues — the mode Graft's exception capture uses to
        keep collecting context after a failure.

        ``crash_after_calls`` is the chaos subsystem's mid-superstep fault
        hook: after that many ``compute()`` calls this superstep, the
        worker dies with :class:`InjectedWorkerCrash` — which is *not* a
        ComputeError, so it escapes the step as a machine failure rather
        than a user-code bug, and the engine rolls back to a checkpoint.
        """
        from repro.pregel.computation import WorkerInfo

        worker_info = WorkerInfo(
            self.worker_id, superstep, num_vertices, num_edges
        )
        computation.pre_superstep(worker_info)
        self._run_vertices(
            computation, superstep, message_store, num_vertices, num_edges,
            on_error, crash_after_calls,
        )
        computation.post_superstep(worker_info)

    def _run_vertices(self, computation, superstep, message_store,
                      num_vertices, num_edges, on_error, crash_after_calls):
        """The inner compute loop over ``self.values``'s active vertices.

        Factored out so the spill plane can point ``values``/``edges``/
        ``halted`` at one partition page at a time and re-run this loop per
        partition — the loop itself is store-agnostic.
        """
        for vertex_id in self.active_vertices(superstep, message_store):
            if (
                crash_after_calls is not None
                and self.compute_calls >= crash_after_calls
            ):
                raise InjectedWorkerCrash(
                    self.worker_id, superstep, crash_after_calls
                )
            # Store-agnostic inbox access: compute() gets raw values (no
            # envelope objects on the columnar fast path); the context's
            # incoming view materializes envelopes only if a debugger reads
            # them.
            inbox_values = message_store.inbox_values(vertex_id)
            ctx = ComputeContext(
                vertex_id=vertex_id,
                value=self.values[vertex_id],
                edges=self.edges[vertex_id],
                incoming=message_store.incoming_view(vertex_id),
                superstep=superstep,
                num_vertices=num_vertices,
                num_edges=num_edges,
                services=self._services,
                run_seed=self.run_seed,
            )
            self.compute_calls += 1
            try:
                computation.compute(ctx, inbox_values)
            except Exception as exc:  # noqa: BLE001 - policy decides below
                error = ComputeError(vertex_id, superstep, exc)
                if on_error == "raise":
                    raise error from exc
                self.compute_errors.append(error)
                self.halted[vertex_id] = True
                continue
            self.values[vertex_id] = ctx.value
            self.halted[vertex_id] = ctx.halted

    def all_halted(self):
        return all(self.halted.values())

    def vertex_values(self):
        """Iterate ``(vertex_id, value)`` pairs owned by this worker."""
        return iter(self.values.items())


class _SpillServices(_WorkerServices):
    """Emission straight into the worker's run router.

    No grouped outbox exists under the spill plane: every send is routed
    to its target partition's sorted run file immediately, so emission
    memory stays bounded by the router's chunk buffer. Counters and byte
    estimates match the envelope services exactly.
    """

    def emit(self, envelope):
        worker = self._worker
        worker.router.add(envelope.source, envelope.target, envelope.value)
        worker.messages_sent += 1
        worker.bytes_sent += _estimate_bytes(envelope.value)

    def emit_broadcast(self, source, targets, value):
        worker = self._worker
        router = worker.router
        for target in targets:
            router.add(source, target, value)
        worker.messages_sent += len(targets)
        worker.bytes_sent += len(targets) * _estimate_bytes(value)


class SpilledWorker(Worker):
    """A worker whose vertex state lives in a partitioned spill store.

    Owns ``partitions_of_worker(worker_id)`` partitions and runs each
    superstep partition-at-a-time: pin the partition's page, load its
    merged message inbox, point ``values``/``edges``/``halted`` at the
    page's dicts, run the shared inner compute loop, release dirty. With
    one partition per worker and a page cache large enough to hold it,
    this degenerates to exactly the in-memory worker's behaviour —
    identical compute order, identical aggregator fold order.
    """

    def __init__(self, worker_id, run_seed):
        super().__init__(worker_id, run_seed)
        self._spill_services = _SpillServices(self)
        self.store = None
        self.spill_partitioner = None
        self.locations = None
        self.deferred_runs = False
        self.router = None
        self.messages_combined = 0
        self._partitions = ()

    def attach_spill(self, store, partitioner, locations, deferred=False):
        """Bind this worker to the shared store (engine load time)."""
        self.store = store
        self.spill_partitioner = partitioner
        self.locations = locations
        self.deferred_runs = deferred
        self._partitions = list(
            partitioner.partitions_of_worker(self.worker_id)
        )
        # The base dicts are never the source of truth here.
        self.values = {}
        self.edges = {}
        self.halted = {}

    @property
    def partitions(self):
        return self._partitions

    # -- superstep execution ----------------------------------------------

    def prepare_superstep(self, aggregators, columnar=False):
        # The spill plane has no columnar outbox; emission always routes
        # through the run router (the engine refuses columnar + spill).
        super().prepare_superstep(aggregators, columnar=False)
        self._services = self._spill_services
        self.messages_combined = 0
        self.router = None

    def run_superstep(
        self,
        computation,
        superstep,
        message_store,
        num_vertices,
        num_edges,
        on_error="raise",
        crash_after_calls=None,
    ):
        from repro.pregel.computation import WorkerInfo

        store = self.store
        self.router = store.run_router(
            self.worker_id,
            superstep + 1,
            self.spill_partitioner,
            self.locations,
            deferred=self.deferred_runs,
        )
        worker_info = WorkerInfo(
            self.worker_id, superstep, num_vertices, num_edges
        )
        computation.pre_superstep(worker_info)
        for partition_id in self._partitions:
            page = store.acquire(partition_id)
            view = message_store.load_partition(partition_id)
            self.values = page.values
            self.edges = page.edges
            self.halted = page.halted
            try:
                self._run_vertices(
                    computation, superstep, view, num_vertices, num_edges,
                    on_error, crash_after_calls,
                )
            finally:
                self.messages_combined += view.eliminated
                store.release(partition_id, dirty=True)
        computation.post_superstep(worker_info)
        self.router.seal()

    def outbox_envelopes(self):
        # Sent messages live in run files, not an outbox; the debugger's
        # emission views come from capture listeners, which observe sends
        # through the compute context before they reach the router.
        return []

    def collect_spill_state(self):
        """Everything the process backend must ship back to the parent."""
        router = self.router
        return {
            "pages": self.store.collect_dirty(self._partitions),
            "runs": router.shipped_files() if router is not None else [],
            "routed": router.count if router is not None else 0,
            "suspects": router.suspects if router is not None else set(),
            "suspect_counts": (
                router.suspect_counts if router is not None else {}
            ),
            "messages_combined": self.messages_combined,
        }

    # -- state access through the store ------------------------------------

    def load_vertex(self, vertex_id, value, edge_map):
        self.store.add_vertex(
            self.spill_partitioner.partition_for(vertex_id),
            vertex_id, value, edge_map,
        )

    def remove_vertex(self, vertex_id):
        self.store.remove_vertex(
            self.spill_partitioner.partition_for(vertex_id), vertex_id
        )

    def has_vertex(self, vertex_id):
        return self.store.has_vertex(
            self.spill_partitioner.partition_for(vertex_id), vertex_id
        )

    def get_vertex_value(self, vertex_id):
        return self.store.get_vertex_value(
            self.spill_partitioner.partition_for(vertex_id), vertex_id
        )

    def get_vertex_edges(self, vertex_id):
        return self.store.get_vertex_edges(
            self.spill_partitioner.partition_for(vertex_id), vertex_id
        )

    @property
    def num_vertices(self):
        return self.store.num_vertices(self._partitions)

    @property
    def num_edges(self):
        return self.store.num_edges(self._partitions)

    def all_halted(self):
        return self.store.all_halted(self._partitions)

    def iter_state(self):
        for partition_id in self._partitions:
            yield from self.store.iter_partition(partition_id)

    def vertex_values(self):
        for vertex_id, value, _edges, _halted in self.iter_state():
            yield vertex_id, value

    def restore_state(self, values, edges, halted):
        """Rewrite every owned partition from checkpoint dicts."""
        by_partition = {}
        for vertex_id in values:
            partition_id = self.spill_partitioner.partition_for(vertex_id)
            by_partition.setdefault(partition_id, []).append(vertex_id)
        for partition_id in self._partitions:
            ids = by_partition.get(partition_id, ())
            self.store.replace_partition(
                partition_id,
                {vid: values[vid] for vid in ids},
                {vid: edges[vid] for vid in ids},
                {vid: halted[vid] for vid in ids},
            )
