"""The per-vertex compute context: everything Giraph exposes to a vertex.

One :class:`ComputeContext` is created for each ``compute()`` call. It
exposes exactly the five pieces of data the paper lists (Section 2) —

1. the vertex id,
2. its outgoing edges,
3. its incoming messages,
4. the aggregators, and
5. the default global data (superstep number, total vertex and edge counts)

— plus ``vote_to_halt()``, Pregel graph-mutation requests, and a seeded
per-vertex RNG (randomness is derived from ``(run_seed, vertex_id,
superstep)``, so it is part of the reproducible context rather than hidden
state; this is what lets Graft replay the paper's random-walk scenario
exactly).

The context is deliberately constructible from plain data plus a small
``services`` object, so the Graft Context Reproducer can rebuild one from a
trace record without any engine or cluster — the Python analogue of the
paper's Mockito mocks.
"""

from repro.common.errors import PregelError
from repro.common.rng import derive_rng
from repro.pregel.messages import Envelope


class ComputeServices:
    """What a context needs from its host (worker, or replay harness)."""

    def aggregated_value(self, name):
        """Merged aggregator value visible this superstep."""
        raise NotImplementedError

    def aggregate(self, name, contribution):
        """Fold a contribution into an aggregator."""
        raise NotImplementedError

    def emit(self, envelope):
        """Accept an outgoing message envelope."""
        raise NotImplementedError

    def request_add_vertex(self, vertex_id, value):
        """Request vertex creation at the coming barrier."""
        raise NotImplementedError

    def request_remove_vertex(self, vertex_id):
        """Request vertex removal at the coming barrier."""
        raise NotImplementedError


class ComputeContext:
    """The object handed to ``Computation.compute()``.

    Attributes populated by the call are inspected afterwards by the worker
    (and by Graft's instrumentation): ``sent_envelopes``, ``halted``, and
    the possibly-updated ``value``.
    """

    def __init__(
        self,
        vertex_id,
        value,
        edges,
        incoming,
        superstep,
        num_vertices,
        num_edges,
        services,
        run_seed=0,
        observer=None,
    ):
        self.vertex_id = vertex_id
        self._value = value
        self._edges = edges
        self._incoming = incoming
        self.superstep = superstep
        self.num_vertices = num_vertices
        self.num_edges = num_edges
        self._services = services
        self._run_seed = run_seed
        self._observer = observer
        self._rng = None
        self.halted = False
        self.sent_envelopes = []

    def attach_observer(self, observer):
        """Attach an interception observer (Graft's instrumentation point).

        The observer's ``on_set_value(ctx, old, new)`` and ``on_send(ctx,
        target, value)`` hooks fire before each value update and message
        send. This is the Python analogue of the paper's Javassist wrap:
        user code is untouched; the wrapper injects observation.
        """
        self._observer = observer

    # -- vertex value ---------------------------------------------------

    @property
    def value(self):
        """Current vertex value."""
        return self._value

    def set_value(self, new_value):
        """Update the vertex value (Giraph's ``vertex.setValue``)."""
        if self._observer is not None:
            self._observer.on_set_value(self, self._value, new_value)
        self._value = new_value

    # -- edges ------------------------------------------------------------

    def out_edges(self):
        """Iterate ``(target_id, edge_value)`` pairs."""
        return iter(self._edges.items())

    def neighbor_ids(self):
        """Iterate target ids of outgoing edges."""
        return iter(self._edges)

    @property
    def out_degree(self):
        return len(self._edges)

    def has_edge(self, target):
        return target in self._edges

    def edge_value(self, target):
        if target not in self._edges:
            raise PregelError(
                f"vertex {self.vertex_id!r} has no edge to {target!r}"
            )
        return self._edges[target]

    def set_edge_value(self, target, value):
        """Mutate a local edge value, effective immediately (Pregel rules)."""
        if target not in self._edges:
            raise PregelError(
                f"vertex {self.vertex_id!r} has no edge to {target!r}"
            )
        self._edges[target] = value

    def add_edge(self, target, value=None):
        """Add a local outgoing edge, effective immediately."""
        self._edges[target] = value

    def remove_edge(self, target):
        """Remove a local outgoing edge, effective immediately."""
        self._edges.pop(target, None)

    # -- messages -----------------------------------------------------------

    def message_envelopes(self):
        """Incoming messages with their source ids (debugger-facing view)."""
        return list(self._incoming)

    def send_message(self, target, value):
        """Send a message for delivery in the next superstep."""
        if self._observer is not None:
            self._observer.on_send(self, target, value)
        envelope = Envelope(source=self.vertex_id, target=target, value=value)
        self.sent_envelopes.append(envelope)
        self._services.emit(envelope)

    def send_message_to_all_neighbors(self, value):
        """Send the same message along every outgoing edge."""
        for target in list(self._edges):
            self.send_message(target, value)

    # -- aggregators ----------------------------------------------------------

    def aggregated_value(self, name):
        """Read an aggregator's merged value from the previous superstep."""
        return self._services.aggregated_value(name)

    def aggregate(self, name, contribution):
        """Contribute to an aggregator, visible next superstep."""
        self._services.aggregate(name, contribution)

    # -- halting & mutations --------------------------------------------------

    def vote_to_halt(self):
        """Declare this vertex inactive (re-activated by incoming messages)."""
        self.halted = True

    def add_vertex_request(self, vertex_id, value=None):
        """Request creation of a vertex at the coming barrier."""
        self._services.request_add_vertex(vertex_id, value)

    def remove_vertex_request(self, vertex_id):
        """Request removal of a vertex at the coming barrier."""
        self._services.request_remove_vertex(vertex_id)

    # -- randomness -------------------------------------------------------

    @property
    def rng(self):
        """Per-(vertex, superstep) seeded RNG; identical on replay."""
        if self._rng is None:
            self._rng = derive_rng(
                self._run_seed, "vertex", self.vertex_id, self.superstep
            )
        return self._rng

    def random(self):
        """Convenience for ``ctx.rng.random()``."""
        return self.rng.random()

    # -- snapshots (used by Graft capture) ---------------------------------

    def edges_snapshot(self):
        """Copy of the current outgoing-edge map."""
        return dict(self._edges)
