"""The per-vertex compute context: everything Giraph exposes to a vertex.

One :class:`ComputeContext` is created for each ``compute()`` call. It
exposes exactly the five pieces of data the paper lists (Section 2) —

1. the vertex id,
2. its outgoing edges,
3. its incoming messages,
4. the aggregators, and
5. the default global data (superstep number, total vertex and edge counts)

— plus ``vote_to_halt()``, Pregel graph-mutation requests, and a seeded
per-vertex RNG (randomness is derived from ``(run_seed, vertex_id,
superstep)``, so it is part of the reproducible context rather than hidden
state; this is what lets Graft replay the paper's random-walk scenario
exactly).

The context is deliberately constructible from plain data plus a small
``services`` object, so the Graft Context Reproducer can rebuild one from a
trace record without any engine or cluster — the Python analogue of the
paper's Mockito mocks.
"""

from typing import NamedTuple

from repro.common.errors import PregelError
from repro.common.rng import derive_rng
from repro.pregel.messages import Envelope


class _BroadcastSend(NamedTuple):
    """Compact sent-message record for one broadcast fan-out.

    The fast broadcast path must not allocate one envelope per neighbor
    just for bookkeeping; it notes the value and a snapshot of the targets
    instead, and :attr:`ComputeContext.sent_envelopes` expands it only when
    somebody (Graft's capture, the reproducer) actually reads the sends.
    """

    value: object
    targets: tuple


class ComputeServices:
    """What a context needs from its host (worker, or replay harness)."""

    def aggregated_value(self, name):
        """Merged aggregator value visible this superstep."""
        raise NotImplementedError

    def aggregate(self, name, contribution):
        """Fold a contribution into an aggregator."""
        raise NotImplementedError

    def emit(self, envelope):
        """Accept an outgoing message envelope."""
        raise NotImplementedError

    def emit_broadcast(self, source, targets, value):
        """Accept one value sent from ``source`` to every id in ``targets``.

        Hosts may override this to route the whole fan-out with a single
        shared envelope (the worker's broadcast fast path); the default
        keeps simple hosts — like the Context Reproducer's replay services
        — working with only ``emit`` implemented.
        """
        for target in targets:
            self.emit(Envelope(source=source, target=target, value=value))

    def request_add_vertex(self, vertex_id, value):
        """Request vertex creation at the coming barrier."""
        raise NotImplementedError

    def request_remove_vertex(self, vertex_id):
        """Request vertex removal at the coming barrier."""
        raise NotImplementedError

    def note_edges_mutated(self):
        """Record an in-place adjacency edit (columnar-index taint).

        Default is a no-op so replay hosts stay trivial; workers override
        it to taint broadcast compaction for the rest of the superstep.
        """


class ComputeContext:
    """The object handed to ``Computation.compute()``.

    Attributes populated by the call are inspected afterwards by the worker
    (and by Graft's instrumentation): ``sent_envelopes``, ``halted``, and
    the possibly-updated ``value``.
    """

    def __init__(
        self,
        vertex_id,
        value,
        edges,
        incoming,
        superstep,
        num_vertices,
        num_edges,
        services,
        run_seed=0,
        observer=None,
    ):
        self.vertex_id = vertex_id
        self._value = value
        self._edges = edges
        self._incoming = incoming
        self.superstep = superstep
        self.num_vertices = num_vertices
        self.num_edges = num_edges
        self._services = services
        self._run_seed = run_seed
        self._observer = observer
        self._rng = None
        self.halted = False
        self._sends = []

    def attach_observer(self, observer):
        """Attach an interception observer (Graft's instrumentation point).

        The observer's ``on_set_value(ctx, old, new)`` and ``on_send(ctx,
        target, value)`` hooks fire before each value update and message
        send. This is the Python analogue of the paper's Javassist wrap:
        user code is untouched; the wrapper injects observation.
        """
        self._observer = observer

    # -- vertex value ---------------------------------------------------

    @property
    def value(self):
        """Current vertex value."""
        return self._value

    def set_value(self, new_value):
        """Update the vertex value (Giraph's ``vertex.setValue``)."""
        if self._observer is not None:
            self._observer.on_set_value(self, self._value, new_value)
        self._value = new_value

    # -- edges ------------------------------------------------------------

    def out_edges(self):
        """Iterate ``(target_id, edge_value)`` pairs."""
        return iter(self._edges.items())

    def neighbor_ids(self):
        """Iterate target ids of outgoing edges."""
        return iter(self._edges)

    @property
    def out_degree(self):
        return len(self._edges)

    def has_edge(self, target):
        return target in self._edges

    def edge_value(self, target):
        if target not in self._edges:
            raise PregelError(
                f"vertex {self.vertex_id!r} has no edge to {target!r}"
            )
        return self._edges[target]

    def set_edge_value(self, target, value):
        """Mutate a local edge value, effective immediately (Pregel rules)."""
        if target not in self._edges:
            raise PregelError(
                f"vertex {self.vertex_id!r} has no edge to {target!r}"
            )
        self._edges[target] = value
        self._services.note_edges_mutated()

    def add_edge(self, target, value=None):
        """Add a local outgoing edge, effective immediately."""
        self._edges[target] = value
        self._services.note_edges_mutated()

    def remove_edge(self, target):
        """Remove a local outgoing edge, effective immediately."""
        self._edges.pop(target, None)
        self._services.note_edges_mutated()

    # -- messages -----------------------------------------------------------

    def message_envelopes(self):
        """Incoming messages with their source ids (debugger-facing view)."""
        return list(self._incoming)

    @property
    def sent_envelopes(self):
        """Envelopes sent during this compute(), in send order.

        Materialized on read: broadcasts are stored compactly (one record
        per fan-out) and expanded to per-target envelopes only here, so
        only readers of the send log — Graft capture, the reproducer's
        fidelity check — pay for the envelope objects.
        """
        source = self.vertex_id
        envelopes = []
        for entry in self._sends:
            if entry.__class__ is _BroadcastSend:
                envelopes.extend(
                    Envelope(source=source, target=target, value=entry.value)
                    for target in entry.targets
                )
            else:
                envelopes.append(entry)
        return envelopes

    def send_message(self, target, value):
        """Send a message for delivery in the next superstep."""
        if self._observer is not None:
            self._observer.on_send(self, target, value)
        envelope = Envelope(source=self.vertex_id, target=target, value=value)
        self._sends.append(envelope)
        self._services.emit(envelope)

    def send_message_to_all_neighbors(self, value):
        """Send the same message along every outgoing edge.

        Without an observer attached this takes a fast path: the fan-out is
        handed to the services as ``(source, targets, value)`` so the host
        can route one shared envelope instead of building one per neighbor.
        With an observer (Graft's message-constraint hook needs to see each
        send) it falls back to per-message ``send_message``.
        """
        if self._observer is not None:
            for target in list(self._edges):
                self.send_message(target, value)
            return
        targets = tuple(self._edges)
        self._sends.append(_BroadcastSend(value, targets))
        self._services.emit_broadcast(self.vertex_id, targets, value)

    # -- aggregators ----------------------------------------------------------

    def aggregated_value(self, name):
        """Read an aggregator's merged value from the previous superstep."""
        return self._services.aggregated_value(name)

    def aggregate(self, name, contribution):
        """Contribute to an aggregator, visible next superstep."""
        self._services.aggregate(name, contribution)

    # -- halting & mutations --------------------------------------------------

    def vote_to_halt(self):
        """Declare this vertex inactive (re-activated by incoming messages)."""
        self.halted = True

    def add_vertex_request(self, vertex_id, value=None):
        """Request creation of a vertex at the coming barrier."""
        self._services.request_add_vertex(vertex_id, value)

    def remove_vertex_request(self, vertex_id):
        """Request removal of a vertex at the coming barrier."""
        self._services.request_remove_vertex(vertex_id)

    # -- randomness -------------------------------------------------------

    @property
    def rng(self):
        """Per-(vertex, superstep) seeded RNG; identical on replay."""
        if self._rng is None:
            self._rng = derive_rng(
                self._run_seed, "vertex", self.vertex_id, self.superstep
            )
        return self._rng

    def random(self):
        """Convenience for ``ctx.rng.random()``."""
        return self.rng.random()

    # -- snapshots (used by Graft capture) ---------------------------------

    def edges_snapshot(self):
        """Copy of the current outgoing-edge map."""
        return dict(self._edges)
