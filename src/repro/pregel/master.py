"""The optional Master computation.

``master_compute()`` runs once at the *beginning* of each superstep (the
paper, Section 2), sees the aggregator values merged at the previous
barrier, may overwrite them before they broadcast to vertices, and may halt
the whole computation. Multi-phase algorithms (like the paper's graph
coloring) drive their phase transitions here — and the paper notes the most
common master bug is setting the phase wrong, which Graft's master capture
is built to expose.
"""

from repro.common.errors import PregelError


class MasterContext:
    """What ``master_compute()`` sees and can do."""

    def __init__(self, superstep, num_vertices, num_edges, aggregators):
        self.superstep = superstep
        self.num_vertices = num_vertices
        self.num_edges = num_edges
        self._aggregators = aggregators
        self.halted = False
        # Snapshot before master_compute() runs: what replay must rebuild.
        self._initial_snapshot = aggregators.visible_snapshot()

    def aggregated_value(self, name):
        """Merged value of an aggregator from the previous superstep."""
        return self._aggregators.visible_value(name)

    def set_aggregated_value(self, name, value):
        """Overwrite an aggregator before it broadcasts to vertices."""
        self._aggregators.set_visible(name, value)

    def halt_computation(self):
        """Terminate the whole computation before this superstep runs."""
        self.halted = True

    def aggregator_snapshot(self):
        """All visible aggregator values (what Graft captures for the master)."""
        return self._aggregators.visible_snapshot()

    def initial_aggregator_snapshot(self):
        """Aggregator values as they stood before master_compute() ran."""
        return dict(self._initial_snapshot)


class MasterComputation:
    """Base class for master programs."""

    def initialize(self, registry):
        """Register aggregators before superstep 0 (Giraph's initialize())."""

    def master_compute(self, master_ctx):
        """Run at the beginning of each superstep."""
        raise NotImplementedError


def run_master(master, master_ctx):
    """Invoke ``master_compute`` translating failures to engine errors."""
    from repro.common.errors import MasterComputeError

    try:
        master.master_compute(master_ctx)
    except Exception as exc:  # noqa: BLE001 - rewrapped with superstep info
        raise MasterComputeError(master_ctx.superstep, exc) from exc


def ensure_master(master):
    """Validate the engine's ``master`` argument."""
    if master is not None and not isinstance(master, MasterComputation):
        raise PregelError(
            f"master must be a MasterComputation instance, got {master!r}"
        )
    return master
