"""The user-facing vertex computation class.

Users subclass :class:`Computation` and implement ``compute(ctx,
messages)`` — the direct analogue of Giraph's ``Computation.compute(vertex,
messages)``. One instance is created per worker (as Giraph creates one per
worker thread), so instance attributes are worker-local scratch space; the
paper's Section 7 warning applies: state smuggled through such attributes
is invisible to Graft's capture and breaks exact replay.
"""


class Computation:
    """Base class for vertex programs."""

    def compute(self, ctx, messages):
        """Process one vertex for one superstep.

        ``ctx`` is a :class:`~repro.pregel.ComputeContext`; ``messages`` is
        the list of message *values* received from the previous superstep
        (Giraph's view). Use ``ctx.message_envelopes()`` to see sources.
        """
        raise NotImplementedError

    def initial_value(self, vertex_id, input_value):
        """Initial vertex value for superstep 0.

        ``input_value`` is the value carried by the input graph (possibly
        None). The default keeps it unchanged.
        """
        return input_value

    def default_vertex_value(self, vertex_id):
        """Value for a vertex auto-created by a message to a missing id.

        Giraph creates destination vertices on demand; this supplies their
        initial value (default None).
        """
        return None

    def pre_superstep(self, worker_info):
        """Giraph's WorkerContext.preSuperstep(): runs once per worker
        before its vertices compute. ``worker_info`` has ``worker_id``,
        ``superstep``, ``num_vertices``, ``num_edges``.

        Caution (the paper's Section 7 limitation, and detectable with
        :func:`repro.graft.verify_run_fidelity`): state computed here and
        consumed inside ``compute()`` lives *outside* the captured vertex
        context, so it breaks exact replay unless it is derivable from the
        context alone.
        """

    def post_superstep(self, worker_info):
        """Giraph's WorkerContext.postSuperstep(): runs once per worker
        after its vertices computed."""


class WorkerInfo:
    """What the per-worker superstep hooks see."""

    __slots__ = ("worker_id", "superstep", "num_vertices", "num_edges")

    def __init__(self, worker_id, superstep, num_vertices, num_edges):
        self.worker_id = worker_id
        self.superstep = superstep
        self.num_vertices = num_vertices
        self.num_edges = num_edges

    def __repr__(self):
        return (
            f"WorkerInfo(worker_id={self.worker_id}, "
            f"superstep={self.superstep})"
        )
