"""Pluggable execution backends for superstep scheduling.

The engine splits each superstep into one *step* per worker — a zero-arg
callable returning a :class:`StepOutcome` — and hands the whole batch to an
:class:`ExecutionBackend`. The backend decides only *where/when* the steps
run (in order on the calling thread, on a thread pool, or in forked child
processes); every reduction that follows — message routing, aggregator
merges, mutations, metrics, Graft trace drains — happens in the engine at
the barrier in worker-id order, which is why results and trace files do
not depend on the backend chosen.

Step functions are data-parallel by construction: each one touches only
its own worker's vertex state, a private grouped outbox, and a private
:class:`~repro.pregel.aggregators.AggregatorBuffer`, so the thread backend
needs no locks. The process backend additionally ships each worker's
mutated state back to the parent (``StepOutcome.state``), since fork gives
children copy-on-write memory the parent never sees.

CPython note: threads still share the GIL, so the thread backend helps
workloads that release it (I/O, native extensions) and provides the
scheduling structure for free-threaded builds; pure-Python compute gains
come from the batched message path rather than thread parallelism. See
``docs/performance.md``.
"""

import pickle
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.common.errors import PregelError

EXECUTOR_NAMES = ("serial", "threads", "processes")


@dataclass
class StepOutcome:
    """Everything one worker's superstep produced, ready for the barrier.

    Plain data (no live worker references) so the process backend can
    pickle it across a pipe. ``state`` is ``None`` except under backends
    with ``transfers_state``, where it carries the worker's post-step
    ``(values, edges, halted)`` dicts. ``error`` holds the
    :class:`~repro.common.errors.ComputeError` that aborted the step under
    the ``raise`` policy, if any. ``payloads`` carries opaque per-listener
    data collected in the child (e.g. Graft's buffered capture records).
    ``frame`` is the columnar transport handle for this worker's packed
    message frame (see :mod:`repro.pregel.columnar`) — a shared-memory
    block reference under the process backend — which the barrier must
    retrieve or release exactly once.
    """

    worker_id: int
    elapsed: float = 0.0
    outbox: dict = field(default_factory=dict)
    agg_partials: dict = field(default_factory=dict)
    add_vertex_requests: list = field(default_factory=list)
    remove_vertex_requests: list = field(default_factory=list)
    messages_sent: int = 0
    bytes_sent: int = 0
    compute_calls: int = 0
    compute_errors: list = field(default_factory=list)
    error: object = None
    state: object = None
    payloads: object = None
    frame: object = None


class ExecutionBackend:
    """Runs one superstep's worker steps; subclasses pick the strategy."""

    #: Backend name as accepted by ``executor=``.
    name = "base"
    #: True when steps run in another address space, so worker state and
    #: listener payloads must be shipped back via :class:`StepOutcome`.
    transfers_state = False

    def run_superstep(self, steps):
        """Run every step; return their outcomes ordered by step index."""
        raise NotImplementedError

    def close(self):
        """Release any pooled resources (called once after the run)."""


class SerialBackend(ExecutionBackend):
    """Steps run in worker-id order on the calling thread.

    Short-circuits as soon as a step reports a fatal ``error``, matching
    the classic single-threaded engine exactly: later workers never run,
    so their Graft traces show nothing for the aborted superstep.
    """

    name = "serial"

    def run_superstep(self, steps):
        outcomes = []
        for step in steps:
            outcome = step()
            outcomes.append(outcome)
            if outcome.error is not None:
                break
        return outcomes


class ThreadBackend(ExecutionBackend):
    """Steps run concurrently on a shared thread pool.

    All steps run to completion even when one fails — concurrent siblings
    cannot be un-launched — and the engine resolves the failure
    deterministically (lowest worker id wins) at the barrier.
    """

    name = "threads"

    def __init__(self, max_workers):
        if max_workers < 1:
            raise PregelError("threads backend needs max_workers >= 1")
        self._max_workers = max_workers
        self._pool = None

    def run_superstep(self, steps):
        if len(steps) == 1:
            return [steps[0]()]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="pregel-worker",
            )
        futures = [self._pool.submit(step) for step in steps]
        # Wait for EVERY step before raising: a raised step (an injected
        # worker crash) must not leave sibling threads still mutating
        # worker state while the engine rolls back to a checkpoint. The
        # lowest step index wins, matching the outcome-error policy.
        outcomes = []
        first_error = None
        for future in futures:
            try:
                outcomes.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return outcomes

    def close(self):
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessBackend(ExecutionBackend):
    """Steps run in forked child processes, one per worker per superstep.

    Children inherit the full engine state via fork and send a pickled
    :class:`StepOutcome` back over a pipe; the parent absorbs the mutated
    worker state at the barrier. Requires a platform with ``fork`` (POSIX)
    and picklable vertex/message values. Computation instances themselves
    stay in the parent's address space — state a ``compute()`` stores on
    ``self`` does not persist across supersteps under this backend.
    """

    name = "processes"
    transfers_state = True

    def __init__(self):
        import multiprocessing

        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError as exc:
            raise PregelError(
                "executor='processes' requires the fork start method, "
                "which this platform does not support"
            ) from exc

    def run_superstep(self, steps):
        if len(steps) == 1:
            return [steps[0]()]
        channels = []
        for step in steps:
            parent_conn, child_conn = self._ctx.Pipe(duplex=False)
            process = self._ctx.Process(
                target=_child_main, args=(step, child_conn), daemon=True
            )
            process.start()
            child_conn.close()
            channels.append((process, parent_conn))
        outcomes = []
        failure = None
        for process, conn in channels:
            try:
                status, data = conn.recv()
            except EOFError:
                status, data = "crashed", None
            finally:
                conn.close()
            process.join()
            if status == "ok":
                outcomes.append(data)
            elif failure is None:
                if status == "error" and isinstance(data, BaseException):
                    failure = data
                else:
                    failure = PregelError(
                        "worker process died before reporting an outcome"
                        + (f": {data}" if data else "")
                    )
        if failure is not None:
            # Frames already shipped by surviving workers will never be
            # retrieved by a barrier — unlink their shared-memory blocks
            # now or they outlive the run in /dev/shm.
            from repro.pregel.columnar import release_frame

            for outcome in outcomes:
                release_frame(getattr(outcome, "frame", None))
            raise failure
        return outcomes


def _child_main(step, conn):
    """Run one step in the forked child and ship the outcome back."""
    try:
        outcome = step()
        payload = ("ok", outcome)
    except BaseException as exc:  # noqa: BLE001 - must cross the pipe
        try:
            pickle.dumps(exc)
            payload = ("error", exc)
        except Exception:  # noqa: BLE001 - unpicklable exception
            payload = ("crashed", repr(exc))
    try:
        conn.send(payload)
    except Exception:  # noqa: BLE001 - e.g. unpicklable user values
        if payload[0] == "ok":
            # The parent will never see this outcome's shm handle; unlink
            # it here or the block leaks past the run.
            from repro.pregel.columnar import release_frame

            release_frame(getattr(payload[1], "frame", None))
        conn.send(("crashed", "step outcome could not be pickled"))
    finally:
        conn.close()


def resolve_backend(executor, num_workers):
    """Turn an ``executor=`` argument into an :class:`ExecutionBackend`.

    Accepts a backend name (``"serial"``, ``"threads"``, ``"processes"``)
    or an already-constructed backend instance (for tests and extensions).
    """
    if isinstance(executor, ExecutionBackend):
        return executor
    if executor == "serial":
        return SerialBackend()
    if executor == "threads":
        return ThreadBackend(max_workers=num_workers)
    if executor == "processes":
        return ProcessBackend()
    raise PregelError(
        f"executor must be one of {EXECUTOR_NAMES} or an ExecutionBackend, "
        f"got {executor!r}"
    )
