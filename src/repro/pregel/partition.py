"""Vertex-to-partition-to-worker mapping.

Giraph assigns vertices to *partitions* and multiplexes partitions over
workers; partition count and worker count are independent knobs. The
in-memory engine historically collapsed the two (one partition per
worker); the out-of-core store needs many more partitions than workers
so one partition's page fits comfortably under the memory ceiling.

Every partitioner therefore answers two questions:

- :meth:`Partitioner.partition_for` — which partition owns a vertex id
  (a pure function of the id, stable across runs, backends, and worker
  counts);
- :meth:`Partitioner.worker_of_partition` — which worker runs a
  partition (round-robin, so partitions spread evenly).

``worker_for`` composes the two. With the default ``num_partitions ==
num_workers``, ``HashPartitioner`` reduces exactly to the historical
``stable_hash % num_workers`` assignment, so existing runs, traces, and
checkpoints are unchanged.
"""

from repro.common.errors import PregelError
from repro.common.hashing import stable_hash


class Partitioner:
    """Maps vertex ids to partitions and partitions to workers."""

    def __init__(self, num_workers, num_partitions=None):
        if num_workers <= 0:
            raise PregelError(f"need at least one worker, got {num_workers}")
        self.num_workers = num_workers
        if num_partitions is None:
            num_partitions = num_workers
        if num_partitions < num_workers:
            raise PregelError(
                f"need at least one partition per worker, got "
                f"{num_partitions} partition(s) for {num_workers} worker(s)"
            )
        self.num_partitions = num_partitions

    def partition_for(self, vertex_id):
        """Partition index in ``range(num_partitions)`` owning ``vertex_id``."""
        raise NotImplementedError

    def worker_of_partition(self, partition_id):
        """Worker index running ``partition_id`` (round-robin)."""
        return partition_id % self.num_workers

    def partitions_of_worker(self, worker_id):
        """The partition ids multiplexed onto ``worker_id``, ascending."""
        return range(worker_id, self.num_partitions, self.num_workers)

    def worker_for(self, vertex_id):
        return self.worker_of_partition(self.partition_for(vertex_id))

    def partition(self, vertex_ids):
        """Group ``vertex_ids`` into per-worker lists, preserving order."""
        groups = [[] for _ in range(self.num_workers)]
        for vertex_id in vertex_ids:
            groups[self.worker_for(vertex_id)].append(vertex_id)
        return groups


class HashPartitioner(Partitioner):
    """Giraph's default: stable hash of the vertex id modulo partitions.

    >>> p = HashPartitioner(4)
    >>> p.worker_for("v1") == p.worker_for("v1")
    True
    >>> q = HashPartitioner(4, num_partitions=16)
    >>> q.worker_of_partition(q.partition_for("v1")) == q.worker_for("v1")
    True
    """

    def partition_for(self, vertex_id):
        return stable_hash("partition", vertex_id) % self.num_partitions


class RangePartitioner(Partitioner):
    """Contiguous integer-id ranges, one per partition.

    The natural layout for the generated datasets (consecutive int ids):
    partition ``p`` owns ids ``[p * ceil(n / P), ...)``, so each
    partition's page holds a contiguous, cache-friendly id range and a
    vertex's partition can be computed without hashing. Ids outside
    ``[id_offset, id_offset + total_vertices)`` — e.g. vertices created
    at a barrier — are clamped into the nearest edge partition, keeping
    the assignment total and deterministic.
    """

    def __init__(self, num_workers, total_vertices, num_partitions=None,
                 id_offset=0):
        super().__init__(num_workers, num_partitions)
        if total_vertices <= 0:
            raise PregelError(
                f"total_vertices must be positive, got {total_vertices}"
            )
        self.total_vertices = total_vertices
        self.id_offset = id_offset

    def partition_for(self, vertex_id):
        if not isinstance(vertex_id, int) or isinstance(vertex_id, bool):
            raise PregelError(
                f"RangePartitioner needs integer vertex ids, got "
                f"{vertex_id!r}"
            )
        position = vertex_id - self.id_offset
        if position < 0:
            return 0
        if position >= self.total_vertices:
            return self.num_partitions - 1
        return position * self.num_partitions // self.total_vertices


class ExplicitPartitioner(Partitioner):
    """Fixed vertex-to-worker assignment; unmapped ids fall back to hashing.

    Used by tests that need to place specific vertices on specific workers
    (e.g. to prove traces merge correctly across worker files). Partition
    count equals worker count: the explicit map speaks in worker ids.
    """

    def __init__(self, num_workers, assignment):
        super().__init__(num_workers)
        bad = {v: w for v, w in assignment.items() if not 0 <= w < num_workers}
        if bad:
            raise PregelError(f"assignments out of range: {bad!r}")
        self._assignment = dict(assignment)
        self._fallback = HashPartitioner(num_workers)

    def partition_for(self, vertex_id):
        if vertex_id in self._assignment:
            return self._assignment[vertex_id]
        return self._fallback.partition_for(vertex_id)
