"""Vertex-to-worker partitioning.

Giraph assigns vertices to workers by hashing their ids; the same
stable hash used everywhere in this library makes the assignment
deterministic across runs and processes.
"""

from repro.common.errors import PregelError
from repro.common.hashing import stable_hash


class Partitioner:
    """Maps a vertex id to a worker index in ``range(num_workers)``."""

    def __init__(self, num_workers):
        if num_workers <= 0:
            raise PregelError(f"need at least one worker, got {num_workers}")
        self.num_workers = num_workers

    def worker_for(self, vertex_id):
        raise NotImplementedError

    def partition(self, vertex_ids):
        """Group ``vertex_ids`` into per-worker lists, preserving order."""
        groups = [[] for _ in range(self.num_workers)]
        for vertex_id in vertex_ids:
            groups[self.worker_for(vertex_id)].append(vertex_id)
        return groups


class HashPartitioner(Partitioner):
    """Giraph's default: stable hash of the vertex id modulo worker count.

    >>> p = HashPartitioner(4)
    >>> p.worker_for("v1") == p.worker_for("v1")
    True
    """

    def worker_for(self, vertex_id):
        return stable_hash("partition", vertex_id) % self.num_workers


class ExplicitPartitioner(Partitioner):
    """Fixed assignment from a mapping; unmapped ids fall back to hashing.

    Used by tests that need to place specific vertices on specific workers
    (e.g. to prove traces merge correctly across worker files).
    """

    def __init__(self, num_workers, assignment):
        super().__init__(num_workers)
        bad = {v: w for v, w in assignment.items() if not 0 <= w < num_workers}
        if bad:
            raise PregelError(f"assignments out of range: {bad!r}")
        self._assignment = dict(assignment)
        self._fallback = HashPartitioner(num_workers)

    def worker_for(self, vertex_id):
        if vertex_id in self._assignment:
            return self._assignment[vertex_id]
        return self._fallback.worker_for(vertex_id)
