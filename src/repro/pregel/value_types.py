"""Fixed-width integers with Java wrap-around semantics.

The paper's random-walk scenario (Section 4.2) hinges on Java ``short``
arithmetic: counters declared as 16-bit shorts silently wrap past 32767 and
become negative, so a vertex sends a negative number of walkers. Python
integers never overflow, so to reproduce the bug — and to let Graft catch
it with a message-value constraint — the algorithm's counters use these
wrapping integer types.

``Short16``, ``Int32`` and ``Long64`` behave like Java's ``short``,
``int`` and ``long``: two's-complement wrap-around on ``+ - *``,
value-based equality and ordering (including against plain ints), and
round-tripping through the trace codec.
"""

from repro.common.serialization import register_value_type
from repro.pregel.columnar import register_fixed_width


def _wrap(value, bits):
    """Two's-complement wrap of ``value`` into a signed ``bits``-bit range."""
    mask = (1 << bits) - 1
    value &= mask
    sign_bit = 1 << (bits - 1)
    return value - (1 << bits) if value & sign_bit else value


class _FixedWidthInt:
    """Common behaviour for the wrapping integer types."""

    __slots__ = ("value",)
    BITS = None

    def __init__(self, value=0):
        raw = value.value if isinstance(value, _FixedWidthInt) else int(value)
        object.__setattr__(self, "value", _wrap(raw, self.BITS))

    @classmethod
    def max_value(cls):
        """Largest representable value (e.g. 32767 for :class:`Short16`)."""
        return (1 << (cls.BITS - 1)) - 1

    @classmethod
    def min_value(cls):
        return -(1 << (cls.BITS - 1))

    def _coerce(self, other):
        if isinstance(other, _FixedWidthInt):
            return other.value
        if isinstance(other, int):
            return other
        return NotImplemented

    def __add__(self, other):
        raw = self._coerce(other)
        if raw is NotImplemented:
            return NotImplemented
        return type(self)(self.value + raw)

    __radd__ = __add__

    def __sub__(self, other):
        raw = self._coerce(other)
        if raw is NotImplemented:
            return NotImplemented
        return type(self)(self.value - raw)

    def __rsub__(self, other):
        raw = self._coerce(other)
        if raw is NotImplemented:
            return NotImplemented
        return type(self)(raw - self.value)

    def __mul__(self, other):
        raw = self._coerce(other)
        if raw is NotImplemented:
            return NotImplemented
        return type(self)(self.value * raw)

    __rmul__ = __mul__

    def __neg__(self):
        return type(self)(-self.value)

    def __eq__(self, other):
        raw = self._coerce(other)
        if raw is NotImplemented:
            return NotImplemented
        return self.value == raw

    def __lt__(self, other):
        raw = self._coerce(other)
        if raw is NotImplemented:
            return NotImplemented
        return self.value < raw

    def __le__(self, other):
        raw = self._coerce(other)
        if raw is NotImplemented:
            return NotImplemented
        return self.value <= raw

    def __gt__(self, other):
        raw = self._coerce(other)
        if raw is NotImplemented:
            return NotImplemented
        return self.value > raw

    def __ge__(self, other):
        raw = self._coerce(other)
        if raw is NotImplemented:
            return NotImplemented
        return self.value >= raw

    def __hash__(self):
        return hash(self.value)

    def __int__(self):
        return self.value

    def __index__(self):
        return self.value

    def __bool__(self):
        return bool(self.value)

    def __repr__(self):
        return f"{type(self).__name__}({self.value})"

    # Codec hooks: encode as a single-field payload.
    def to_payload(self):
        return {"value": self.value}

    @classmethod
    def from_payload(cls, payload):
        return cls(payload["value"])


@register_value_type
class Short16(_FixedWidthInt):
    """Java ``short``: 16-bit signed, wraps at 32767.

    >>> Short16(32767) + 1
    Short16(-32768)
    """

    __slots__ = ()
    BITS = 16


@register_value_type
class Int32(_FixedWidthInt):
    """Java ``int``: 32-bit signed."""

    __slots__ = ()
    BITS = 32


@register_value_type
class Long64(_FixedWidthInt):
    """Java ``long``: 64-bit signed."""

    __slots__ = ()
    BITS = 64


# Columnar fast path: batches of these ride an int64 column (the wrapped
# payload plus a width tag) instead of per-object codec dispatch — the
# random-walk scenario's Short16 counters ship packed like plain ints.
register_fixed_width(Short16, Short16.BITS)
register_fixed_width(Int32, Int32.BITS)
register_fixed_width(Long64, Long64.BITS)
