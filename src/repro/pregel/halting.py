"""Halting decisions for the BSP loop.

A Pregel computation terminates when (a) every vertex has voted to halt and
no messages are in flight, (b) the master calls ``halt_computation()``, or
(c) a configured superstep budget runs out. The engine records which one
ended the run; the paper's MWM scenario (an input bug causing an infinite
loop) is exactly the case where (c) fires and the user reaches for Graft.
"""

CONVERGED = "converged"
MASTER_HALT = "master_halt"
MAX_SUPERSTEPS = "max_supersteps"


def should_stop_after_barrier(workers, outgoing_store):
    """True when every vertex is halted and nothing is in flight."""
    if outgoing_store.has_messages():
        return False
    return all(worker.all_halted() for worker in workers)
