"""Columnar message batches and shared-memory transport (the fast data plane).

``BENCH_engine.json`` showed the processes backend losing to serial:
every superstep pickled ~50k :class:`~repro.pregel.messages.Envelope`
objects per worker across a pipe, plus the worker's entire state dicts.
Following Pregelix's columnar discipline (Ammar & Özsu's cross-system
analysis), this module moves the inter-worker data plane off the object
heap: messages and vertex values cross process boundaries as *flat packed
buffers* — typed columns backed by :mod:`array` — shipped through
``multiprocessing.shared_memory`` blocks, one per worker pair (child →
parent) per superstep.

The three layers
----------------

**Columns** (:class:`ColumnBuilder` / :func:`decode_column`): a value
column holds a homogeneous run of built-in payloads — ``float`` as a
packed ``array('d')``, ``int`` as ``array('q')``, fixed-width integers
(:class:`~repro.pregel.value_types.Short16` and friends) as their wrapped
``int`` payloads plus a class tag, ``str`` as a compact list. A column
that sees a second type, an overflowing int, or an arbitrary object
degrades to a pickled fallback list — counted, never fatal. The numpy-free
core uses only :mod:`array`/``memoryview``; when numpy is importable the
decode path uses ``numpy.frombuffer`` as an accelerator, with identical
results.

**Frames** (:func:`FrameBuilder` / :func:`parse_frame`): a frame is a
sequence of length-prefixed sections — ``u32be payload_len | u8 kind |
payload`` — the same framing convention as the v2 trace format
(:mod:`repro.graft.traceformat`). Sections carry compact broadcast
records, per-target point batches, and (under state-transferring
backends) the worker's vertex values, halt flags, and — only when
mutated — its adjacency. Vertex ids are referenced as ``u32`` indices
into the run-global :class:`VertexInterner` (the interned dictionary
column), which children inherit from the parent via fork, so id strings
never travel at all.

**Transport** (:class:`ShmTransport` / :class:`InlineTransport`): a frame
crosses the process boundary as one shared-memory block handoff; the
parent attaches, copies, and unlinks at the barrier, so no segment
outlives its superstep (the chaos harness asserts ``/dev/shm`` stays
clean). Same-address-space backends ship frames as plain bytes.

Determinism
-----------
The envelope path canonicalizes each inbox by a stable sort on
``repr(source)``; ties (equal reprs) fall back to merge position, i.e.
``(worker id, emission order)``. The columnar store reproduces exactly
that order when it materializes an inbox — broadcast expansion walks
in-neighbor lists pre-sorted by ``(repr, worker, load order)`` and the
general path sorts decorated entries by ``(repr(source), worker id,
emission seq)`` — so canonical trace digests are byte-identical across
serial/threads/processes, worker counts, and columnar on/off. The
determinism suite and graft-san pin this.
"""

import pickle
import struct
from array import array

from repro.common.errors import PregelError
from repro.pregel.messages import BROADCAST_TARGET, Envelope, MessageStore

try:  # pragma: no cover - exercised only where numpy is installed
    import numpy as _np
except Exception:  # noqa: BLE001 - numpy is strictly optional
    _np = None

_U32BE = struct.Struct(">I")

FRAME_MAGIC = b"GCF1"

# Section kinds (``u32be len | u8 kind | payload``, v2-trace framing).
SECTION_META = 1
SECTION_BCAST = 2
SECTION_POINT = 3
SECTION_FALLBACK = 4
SECTION_VALUES = 5
SECTION_HALTED = 6
SECTION_EDGES = 7

# Column tags (first byte of an encoded value column).
COL_EMPTY = 0
COL_F64 = 1
COL_I64 = 2
COL_FIXED = 3
COL_STR = 4
COL_OBJ = 5  # pickled fallback list — counted in transport metrics

_META = struct.Struct(">IIQB")  # worker_id, superstep, messages, flags
META_EDGES_DIRTY = 1

#: ``array`` typecodes for the id/seq columns (u32) and numeric payloads.
_ID_TYPECODE = "I"

# -- fixed-width payload codecs (registered by value_types at import) -----

#: Exact class -> (bits tag, to_int, from_int). Populated via
#: :func:`register_fixed_width`; ``value_types`` registers Short16/Int32/
#: Long64 so their wrapped payloads ride the integer column codec-free.
_FIXED_BY_CLASS = {}
_FIXED_BY_BITS = {}


def register_fixed_width(cls, bits):
    """Register a fixed-width int class for the columnar fast path.

    The class must expose ``to_payload() -> {"value": int}`` and a
    ``from_payload`` constructor (the trace-codec hooks); the column stores
    only the wrapped integer plus this tag, so batches of Short16 counters
    never touch :class:`~repro.common.serialization.ValueCodec`.
    """
    _FIXED_BY_CLASS[cls] = bits
    _FIXED_BY_BITS[bits] = cls
    return cls


# =====================================================================
# Vertex id interning
# =====================================================================


class VertexInterner:
    """Run-global dictionary column: vertex id <-> dense u32 index.

    Built once by the engine at load (vertices *and* edge targets), then
    grown append-only as vertices are created at barriers. Children
    inherit the table through fork, so frames reference ids as 4-byte
    indices and the canonical ``repr`` of every id is computed exactly
    once per run.
    """

    __slots__ = ("ids", "index", "reprs")

    def __init__(self):
        self.ids = []
        self.index = {}
        self.reprs = []

    def intern(self, vertex_id):
        idx = self.index.get(vertex_id)
        if idx is None:
            idx = len(self.ids)
            self.index[vertex_id] = idx
            self.ids.append(vertex_id)
            self.reprs.append(repr(vertex_id))
        return idx

    def get(self, vertex_id):
        return self.index.get(vertex_id)

    def __len__(self):
        return len(self.ids)


# =====================================================================
# Value columns
# =====================================================================


class ColumnBuilder:
    """Append-only typed value column with transparent fallback.

    Starts empty; adopts the type of the first value appended. A type
    mismatch, an int wider than 64 bits, or an unregistered object class
    degrades the whole column to a plain Python list that will be pickled
    (``COL_OBJ``) — correctness is never at stake, only compactness.
    """

    __slots__ = ("kind", "data", "fixed_bits")

    def __init__(self):
        self.kind = COL_EMPTY
        self.data = None
        self.fixed_bits = 0

    def append(self, value):
        kind = self.kind
        cls = value.__class__
        if kind == COL_F64:
            if cls is float:
                self.data.append(value)
                return
        elif kind == COL_I64:
            if cls is int:
                try:
                    self.data.append(value)
                    return
                except OverflowError:
                    pass
        elif kind == COL_FIXED:
            if _FIXED_BY_CLASS.get(cls) == self.fixed_bits:
                self.data.append(value.value)
                return
        elif kind == COL_STR:
            if cls is str:
                self.data.append(value)
                return
        elif kind == COL_OBJ:
            self.data.append(value)
            return
        elif kind == COL_EMPTY:
            self._start(cls, value)
            return
        self._degrade(value)

    def _start(self, cls, value):
        if cls is float:
            self.kind = COL_F64
            self.data = array("d", (value,))
        elif cls is int:
            self.kind = COL_I64
            try:
                self.data = array("q", (value,))
            except OverflowError:
                self.kind = COL_OBJ
                self.data = [value]
        elif cls is str:
            self.kind = COL_STR
            self.data = [value]
        elif cls in _FIXED_BY_CLASS:
            self.kind = COL_FIXED
            self.fixed_bits = _FIXED_BY_CLASS[cls]
            self.data = array("q", (value.value,))
        else:
            self.kind = COL_OBJ
            self.data = [value]

    def _degrade(self, value):
        """Convert to the pickled-list representation and append."""
        if self.kind == COL_FIXED:
            cls = _FIXED_BY_BITS[self.fixed_bits]
            self.data = [cls(v) for v in self.data]
        elif self.kind in (COL_F64, COL_I64):
            self.data = self.data.tolist()
        self.kind = COL_OBJ
        self.data.append(value)

    def __len__(self):
        return 0 if self.data is None else len(self.data)

    def encode(self):
        """Serialize to ``tag byte + payload`` bytes."""
        kind = self.kind
        if kind == COL_EMPTY:
            return b"\x00"
        if kind == COL_F64 or kind == COL_I64:
            return bytes((kind,)) + self.data.tobytes()
        if kind == COL_FIXED:
            return bytes((kind, self.fixed_bits)) + self.data.tobytes()
        # str / obj: a flat pickled list of scalars — C-speed both ways,
        # no per-object codec dispatch, decoding yields exact values.
        return bytes((kind,)) + pickle.dumps(self.data, protocol=4)

    def values(self):
        """Decode the live column to a plain value list (no byte round-trip).

        Used by same-address-space consumers (serial/threads barriers,
        ``outbox_envelopes``) where encoding to bytes would be pure waste.
        """
        kind = self.kind
        if kind == COL_EMPTY:
            return []
        if kind == COL_F64 or kind == COL_I64:
            return self.data.tolist()
        if kind == COL_FIXED:
            cls = _FIXED_BY_BITS[self.fixed_bits]
            return [cls(v) for v in self.data]
        return list(self.data)


def decode_column(blob):
    """Decode an encoded column to ``(list of values, was_fallback)``."""
    kind = blob[0]
    if kind == COL_EMPTY:
        return [], False
    if kind == COL_F64:
        return _decode_numeric("d", blob, 1), False
    if kind == COL_I64:
        return _decode_numeric("q", blob, 1), False
    if kind == COL_FIXED:
        cls = _FIXED_BY_BITS.get(blob[1])
        if cls is None:
            raise PregelError(
                f"columnar frame references unregistered fixed-width tag {blob[1]}"
            )
        raw = _decode_numeric("q", blob, 2)
        make = cls.__new__
        out = []
        for v in raw:
            obj = make(cls)
            object.__setattr__(obj, "value", v)
            out.append(obj)
        return out, False
    if kind == COL_STR:
        return pickle.loads(blob[1:]), False
    if kind == COL_OBJ:
        return pickle.loads(blob[1:]), True
    raise PregelError(f"unknown column tag {kind} in columnar frame")


def _decode_numeric(typecode, blob, offset):
    if _np is not None:
        dtype = "<f8" if typecode == "d" else "<i8"
        return _np.frombuffer(blob, dtype=dtype, offset=offset).tolist()
    col = array(typecode)
    col.frombytes(blob[offset:])
    return col.tolist()


def _encode_u32_column(values):
    return array(_ID_TYPECODE, values).tobytes()


def _decode_u32_column(blob):
    col = array(_ID_TYPECODE)
    col.frombytes(blob)
    return col.tolist()


# =====================================================================
# Emit-time columnar outbox
# =====================================================================


class _PointBatch:
    """Point-send accumulation for one target: parallel source/seq/value."""

    __slots__ = ("sources", "seqs", "column")

    def __init__(self):
        self.sources = []
        self.seqs = []
        self.column = ColumnBuilder()

    def add(self, source, seq, value):
        self.sources.append(source)
        self.seqs.append(seq)
        self.column.append(value)

    def __len__(self):
        return len(self.sources)


class ColumnarOutbox:
    """Per-worker outbox that accumulates packed batches at emit time.

    The two hot shapes map to two sections:

    - point sends group into per-target :class:`_PointBatch` columns —
      the packed replacement for ``group_by_target``'s envelope lists;
    - broadcasts append **one compact record** ``(source, seq, value)``;
      the receiver expands them against the (fork-inherited) reverse
      adjacency, so a fan-out of ten thousand neighbors ships as a dozen
      bytes. When the worker's adjacency has been mutated this superstep
      (``edges_dirty``), broadcasts degrade to explicit per-target point
      entries, because the parent's reverse index no longer matches the
      emit-time neighbor snapshot.

    ``seq`` is the worker's emission counter; one broadcast consumes one
    seq for its whole fan-out. Per ``(worker, target)`` pair the seqs are
    strictly increasing in emission order, which is exactly the tie-break
    the canonical inbox sort needs.
    """

    __slots__ = ("point", "bcast_sources", "bcast_seqs", "bcast_column",
                 "seq", "messages")

    def __init__(self):
        self.point = {}
        self.bcast_sources = []
        self.bcast_seqs = []
        self.bcast_column = ColumnBuilder()
        self.seq = 0
        self.messages = 0

    def add_point(self, source, target, value):
        seq = self.seq
        self.seq = seq + 1
        batch = self.point.get(target)
        if batch is None:
            batch = self.point[target] = _PointBatch()
        batch.add(source, seq, value)
        self.messages += 1

    def add_broadcast(self, source, value, fan_out):
        seq = self.seq
        self.seq = seq + 1
        self.bcast_sources.append(source)
        self.bcast_seqs.append(seq)
        self.bcast_column.append(value)
        self.messages += fan_out

    def add_broadcast_explicit(self, source, targets, value):
        """Dirty-adjacency fallback: file the fan-out as point entries."""
        seq = self.seq
        self.seq = seq + 1
        point = self.point
        for target in targets:
            batch = point.get(target)
            if batch is None:
                batch = point[target] = _PointBatch()
            batch.add(source, seq, value)
        self.messages += len(targets)

    def batch_count(self):
        """Packed batches held: per-target point batches + the bcast column."""
        return len(self.point) + (1 if self.bcast_sources else 0)

    def envelopes(self, resolve_targets):
        """Materialize every outgoing message as fully-addressed envelopes.

        Debug/introspection only (``Worker.outbox_envelopes``): broadcast
        records expand through ``resolve_targets(source)``. Emission order
        is restored via the seq column.
        """
        items = []
        for target, batch in self.point.items():
            values = batch.column.values()
            for source, seq, value in zip(batch.sources, batch.seqs, values):
                items.append((seq, 0, Envelope(source, target, value)))
        values = self.bcast_column.values()
        for source, seq, value in zip(self.bcast_sources, self.bcast_seqs, values):
            for order, target in enumerate(resolve_targets(source)):
                items.append((seq, order, Envelope(source, target, value)))
        items.sort(key=lambda item: (item[0], item[1]))
        return [item[2] for item in items]


# =====================================================================
# Frames
# =====================================================================


class _SectionWriter:
    """Accumulates ``u32be len | u8 kind | payload`` sections."""

    def __init__(self):
        self.parts = [FRAME_MAGIC]

    def add(self, kind, payload):
        self.parts.append(_U32BE.pack(len(payload)))
        self.parts.append(bytes((kind,)))
        self.parts.append(payload)

    def tobytes(self):
        return b"".join(self.parts)


def build_frame(worker, interner, superstep, state_sections=False):
    """Pack one worker's superstep products into a columnar frame.

    Always carries the outbox (broadcast + point + fallback sections);
    with ``state_sections`` (process backend) it also carries the
    worker's values, halt flags, and — only when ``edges_dirty`` — its
    adjacency, so unmutated edge maps never cross the pipe again.
    """
    outbox = worker.outbox
    writer = _SectionWriter()
    flags = META_EDGES_DIRTY if worker.edges_dirty else 0
    writer.add(SECTION_META, _META.pack(
        worker.worker_id, superstep, outbox.messages, flags
    ))

    if outbox.bcast_sources:
        src_idx = array(_ID_TYPECODE, [
            interner.index[s] for s in outbox.bcast_sources
        ])
        payload = b"".join((
            _U32BE.pack(len(src_idx)),
            src_idx.tobytes(),
            array(_ID_TYPECODE, outbox.bcast_seqs).tobytes(),
            outbox.bcast_column.encode(),
        ))
        writer.add(SECTION_BCAST, payload)

    if outbox.point:
        plain, odd = {}, {}
        for target, batch in outbox.point.items():
            idx = interner.index.get(target)
            if idx is None:
                odd[target] = batch
            else:
                plain[idx] = batch
        if plain:
            writer.add(SECTION_POINT, _encode_point_section(plain, interner))
        if odd:
            # Targets outside the interner (sends to ids that do not exist
            # yet); the id itself must travel. Ships as pickled triples.
            payload = {
                target: list(zip(
                    batch.seqs, batch.sources, batch.column.values()
                ))
                for target, batch in odd.items()
            }
            writer.add(SECTION_FALLBACK, pickle.dumps(payload, protocol=4))

    if state_sections:
        _add_state_sections(writer, worker, interner)
    return writer.tobytes()


def _encode_point_section(batches, interner):
    parts = [_U32BE.pack(len(batches))]
    index = interner.index
    for target_idx, batch in batches.items():
        src_idx = array(_ID_TYPECODE, [index[s] for s in batch.sources])
        parts.append(_U32BE.pack(target_idx))
        parts.append(_U32BE.pack(len(batch)))
        parts.append(src_idx.tobytes())
        parts.append(array(_ID_TYPECODE, batch.seqs).tobytes())
        column = batch.column.encode()
        parts.append(_U32BE.pack(len(column)))
        parts.append(column)
    return b"".join(parts)


def _add_state_sections(writer, worker, interner):
    index = interner.index
    ids = array(_ID_TYPECODE, [index[v] for v in worker.values])
    column = ColumnBuilder()
    for value in worker.values.values():
        column.append(value)
    writer.add(SECTION_VALUES, b"".join((
        _U32BE.pack(len(ids)), ids.tobytes(), column.encode()
    )))
    writer.add(SECTION_HALTED, b"".join((
        _U32BE.pack(len(worker.halted)),
        array(_ID_TYPECODE, [index[v] for v in worker.halted]).tobytes(),
        bytes(1 if h else 0 for h in worker.halted.values()),
    )))
    if worker.edges_dirty:
        writer.add(SECTION_EDGES, pickle.dumps(worker.edges, protocol=4))


class ParsedFrame:
    """One worker's frame, decoded to plain columns (no envelopes).

    ``bcast`` is ``[(source_idx, seq, value)]``; ``point`` maps
    ``target_idx -> (source_idx list, seq list, value list)``; ``fallback``
    maps raw target ids to ``(seq, source, value)`` triples. State
    sections decode into ``values``/``halted`` dicts (insertion order
    preserved — it is the compute order) and ``edges`` when shipped.
    """

    __slots__ = ("worker_id", "superstep", "messages", "edges_dirty",
                 "bcast", "point", "fallback", "values", "halted", "edges",
                 "pickle_fallbacks", "batches")

    def __init__(self):
        self.worker_id = None
        self.superstep = None
        self.messages = 0
        self.edges_dirty = False
        self.bcast = []
        self.point = {}
        self.fallback = {}
        self.values = None
        self.halted = None
        self.edges = None
        self.pickle_fallbacks = 0
        self.batches = 0


def parse_frame(blob, interner):
    """Decode a frame built by :func:`build_frame`."""
    if blob[:4] != FRAME_MAGIC:
        raise PregelError("columnar frame has bad magic")
    frame = ParsedFrame()
    offset = 4
    view = memoryview(blob)
    total = len(blob)
    while offset < total:
        (length,) = _U32BE.unpack_from(blob, offset)
        kind = blob[offset + 4]
        start = offset + 5
        payload = view[start:start + length]
        offset = start + length
        if kind == SECTION_META:
            wid, superstep, messages, flags = _META.unpack(payload)
            frame.worker_id = wid
            frame.superstep = superstep
            frame.messages = messages
            frame.edges_dirty = bool(flags & META_EDGES_DIRTY)
        elif kind == SECTION_BCAST:
            _parse_bcast(frame, payload)
        elif kind == SECTION_POINT:
            _parse_point(frame, payload)
        elif kind == SECTION_FALLBACK:
            frame.fallback = pickle.loads(payload)
            frame.batches += len(frame.fallback)
            frame.pickle_fallbacks += len(frame.fallback)
        elif kind == SECTION_VALUES:
            frame.values = _parse_keyed_column(payload, interner, frame)
        elif kind == SECTION_HALTED:
            (n,) = _U32BE.unpack_from(payload, 0)
            ids = _decode_u32_column(payload[4:4 + 4 * n])
            flags = payload[4 + 4 * n:4 + 4 * n + n]
            resolve = interner.ids
            frame.halted = {
                resolve[idx]: bool(flag) for idx, flag in zip(ids, flags)
            }
        elif kind == SECTION_EDGES:
            frame.edges = pickle.loads(payload)
        # Unknown sections are skipped: frames are same-build transport,
        # but a tolerant reader keeps partial rollouts debuggable.
    return frame


def _parse_bcast(frame, payload):
    (n,) = _U32BE.unpack_from(payload, 0)
    sources = _decode_u32_column(payload[4:4 + 4 * n])
    seqs = _decode_u32_column(payload[4 + 4 * n:4 + 8 * n])
    values, fell_back = decode_column(bytes(payload[4 + 8 * n:]))
    frame.bcast = list(zip(sources, seqs, values))
    frame.batches += 1
    if fell_back:
        frame.pickle_fallbacks += 1


def _parse_point(frame, payload):
    (ntargets,) = _U32BE.unpack_from(payload, 0)
    offset = 4
    for _ in range(ntargets):
        target_idx, n = struct.unpack_from(">II", payload, offset)
        offset += 8
        sources = _decode_u32_column(payload[offset:offset + 4 * n])
        offset += 4 * n
        seqs = _decode_u32_column(payload[offset:offset + 4 * n])
        offset += 4 * n
        (col_len,) = _U32BE.unpack_from(payload, offset)
        offset += 4
        values, fell_back = decode_column(bytes(payload[offset:offset + col_len]))
        offset += col_len
        frame.point[target_idx] = (sources, seqs, values)
        frame.batches += 1
        if fell_back:
            frame.pickle_fallbacks += 1


def _parse_keyed_column(payload, interner, frame):
    (n,) = _U32BE.unpack_from(payload, 0)
    ids = _decode_u32_column(payload[4:4 + 4 * n])
    values, fell_back = decode_column(bytes(payload[4 + 4 * n:]))
    if fell_back:
        frame.pickle_fallbacks += 1
    resolve = interner.ids
    return {resolve[idx]: value for idx, value in zip(ids, values)}


# =====================================================================
# Transport
# =====================================================================


class InlineTransport:
    """Frames travel as plain bytes (same address space, or pipe pickle)."""

    name = "inline"

    def ship(self, frame_bytes):
        return ("bytes", frame_bytes)

    def retrieve(self, handle):
        return handle[1]

    def release(self, handle):
        """Nothing to free for inline frames."""


class ShmTransport:
    """Frames cross the process boundary as shared-memory blocks.

    The child writes the frame into a fresh ``SharedMemory`` block and
    sends only ``("shm", name, nbytes)`` over the pipe. The parent
    attaches, copies the bytes out, closes, and **unlinks immediately** —
    a block never outlives the barrier that consumes it, so a run leaves
    ``/dev/shm`` exactly as it found it (the chaos harness checks).
    Falls back to inline bytes when the platform refuses a segment.
    """

    name = "shm"

    def __init__(self):
        # Start the multiprocessing resource tracker *before* any worker
        # forks: children then inherit the parent's tracker instead of
        # each spawning their own, so create (child) and unlink (parent)
        # land in the same tracker and nothing is reported leaked.
        try:  # pragma: no cover - absent on exotic platforms
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # noqa: BLE001 - tracker is an optimization
            pass

    def ship(self, frame_bytes):
        try:
            from multiprocessing import shared_memory
            block = shared_memory.SharedMemory(
                create=True, size=max(1, len(frame_bytes))
            )
        except (ImportError, OSError):
            return ("bytes", frame_bytes)
        try:
            block.buf[:len(frame_bytes)] = frame_bytes
            name = block.name
        finally:
            block.close()
        return ("shm", name, len(frame_bytes))

    def retrieve(self, handle):
        if handle[0] == "bytes":
            return handle[1]
        from multiprocessing import shared_memory
        block = shared_memory.SharedMemory(name=handle[1])
        try:
            data = bytes(block.buf[:handle[2]])
        finally:
            block.close()
            block.unlink()
        return data

    def release(self, handle):
        """Free a shipped-but-unconsumed frame (failure paths)."""
        if handle is None or handle[0] != "shm":
            return
        try:
            from multiprocessing import shared_memory
            block = shared_memory.SharedMemory(name=handle[1])
            block.close()
            block.unlink()
        except (ImportError, OSError, FileNotFoundError):
            pass


def release_frame(handle):
    """Best-effort release of any frame handle (used on failure paths)."""
    if handle is not None and handle[0] == "shm":
        ShmTransport().release(handle)


# =====================================================================
# Engine-side run state: interner + reverse adjacency
# =====================================================================


class ColumnarRunState:
    """Everything the columnar plane derives from the graph topology.

    Owned by the engine (parent); children inherit it read-only via fork.
    The reverse-adjacency index (``in_lists``) is what lets a compact
    broadcast record expand on the receiving side; it is rebuilt lazily
    whenever a worker mutated adjacency or vertices were added/removed
    with edges.
    """

    def __init__(self):
        self.interner = VertexInterner()
        self.in_lists = {}
        #: source idx -> tuple of its out-edge target ids that did not
        #: exist at index-build time (resolver candidates).
        self.missing_out = {}
        self._stale = True

    # -- build --------------------------------------------------------

    def ensure_index(self, workers, locations):
        if self._stale:
            self._build(workers, locations)

    def _build(self, workers, locations):
        interner = self.interner
        intern = interner.intern
        in_lists = {}
        for worker in workers:
            for source_id, edge_map in worker.edges.items():
                s_idx = intern(source_id)
                for target in edge_map:
                    t_idx = intern(target)
                    lst = in_lists.get(t_idx)
                    if lst is None:
                        in_lists[t_idx] = [s_idx]
                    else:
                        lst.append(s_idx)
        # Canonical source order per inbox: (repr, owning worker, load
        # order). Computed once as a global rank so per-list sorts are
        # plain int sorts.
        reprs = interner.reprs
        ids = interner.ids
        order = sorted(
            range(len(ids)),
            key=lambda i: (reprs[i], locations.get(ids[i], -1), i),
        )
        rank = [0] * len(ids)
        for position, idx in enumerate(order):
            rank[idx] = position
        for lst in in_lists.values():
            lst.sort(key=rank.__getitem__)
        self.in_lists = in_lists
        missing_out = {}
        for worker in workers:
            for source_id, edge_map in worker.edges.items():
                missing = tuple(t for t in edge_map if t not in locations)
                if missing:
                    missing_out[interner.index[source_id]] = missing
        self.missing_out = missing_out
        self._stale = False

    # -- engine hooks -------------------------------------------------

    def invalidate(self):
        """Adjacency changed: rebuild the reverse index before next use.

        The engine calls this whenever a barrier applied explicit vertex
        mutations or a worker reported ``edges_dirty``. A barrier with
        vertex mutations also *materializes* its outgoing store to
        envelopes first, so no compact broadcast record ever expands
        against an index newer than its emit-time adjacency.
        """
        self._stale = True

    def note_vertex_added(self, vertex_id):
        """Intern a vertex created at a barrier (index itself is unaffected:
        a brand-new vertex has no in- or out-edges until it mutates)."""
        self.interner.intern(vertex_id)


# =====================================================================
# The columnar message store (receiver side)
# =====================================================================


class IncomingView:
    """Lazy per-vertex inbox view handed to :class:`ComputeContext`.

    Compute itself receives raw values (``inbox_values``); envelopes are
    materialized only if a debugger actually iterates this view
    (``ctx.message_envelopes()``), so the fast path never allocates them.
    """

    __slots__ = ("_store", "_target")

    def __init__(self, store, target):
        self._store = store
        self._target = target

    def __iter__(self):
        return iter(self._store.inbox(self._target))

    def __len__(self):
        return len(self._store.inbox_values(self._target))

    def __bool__(self):
        return bool(self._store.inbox_values(self._target))


class ColumnarMessageStore:
    """One superstep's messages, kept packed until a vertex reads them.

    Built at the barrier by absorbing per-worker frames (process backend)
    or live :class:`ColumnarOutbox` objects (serial/threads) **in
    worker-id order**. Messages live as:

    - ``_bcast``: source idx -> ``[(worker_id, seq, value)]`` compact
      broadcast records, expanded per receiver against the run state's
      reverse-adjacency index;
    - ``_point``: target id -> ``[(worker_id, seq, source_id, value)]``.

    Inboxes materialize lazily and memoize. Under the process backend the
    consumers are next superstep's forked children, so the per-message
    expansion work lands on the worker side of the fence — parallel where
    the hardware allows — instead of in the parent's serial barrier.

    Canonical order: an inbox's envelope-path order is the stable sort by
    ``repr(source)`` over worker-id-merge order, i.e. exactly
    ``(repr(source), worker_id, emission seq)``. The pure-broadcast fast
    path walks in-neighbor lists pre-sorted by that key; the mixed path
    decorates and sorts by the triple explicitly.
    """

    def __init__(self, run_state):
        self._rs = run_state
        self._bcast = {}
        self._point = {}
        self._values_cache = {}
        self._envelope_cache = {}
        self.total_messages = 0

    # -- absorption (parent, worker-id order) -------------------------

    def absorb_frame(self, frame):
        """Merge one worker's parsed frame (process backend)."""
        wid = frame.worker_id
        bcast = self._bcast
        for s_idx, seq, value in frame.bcast:
            lst = bcast.get(s_idx)
            if lst is None:
                bcast[s_idx] = [(wid, seq, value)]
            else:
                lst.append((wid, seq, value))
        ids = self._rs.interner.ids
        point = self._point
        for t_idx, (sources, seqs, values) in frame.point.items():
            target = ids[t_idx]
            lst = point.get(target)
            if lst is None:
                lst = point[target] = []
            for s_idx, seq, value in zip(sources, seqs, values):
                lst.append((wid, seq, ids[s_idx], value))
        for target, triples in frame.fallback.items():
            lst = point.get(target)
            if lst is None:
                lst = point[target] = []
            for seq, source, value in triples:
                lst.append((wid, seq, source, value))
        self.total_messages += frame.messages

    def absorb_outbox(self, worker_id, outbox):
        """Merge one worker's live outbox (same-address-space backends)."""
        index = self._rs.interner.index
        bcast = self._bcast
        for source, seq, value in zip(
            outbox.bcast_sources, outbox.bcast_seqs,
            outbox.bcast_column.values(),
        ):
            s_idx = index[source]
            lst = bcast.get(s_idx)
            if lst is None:
                bcast[s_idx] = [(worker_id, seq, value)]
            else:
                lst.append((worker_id, seq, value))
        point = self._point
        for target, batch in outbox.point.items():
            lst = point.get(target)
            if lst is None:
                lst = point[target] = []
            for source, seq, value in zip(
                batch.sources, batch.seqs, batch.column.values()
            ):
                lst.append((worker_id, seq, source, value))
        self.total_messages += outbox.messages

    # -- inbox materialization ----------------------------------------

    def _in_list(self, target):
        t_idx = self._rs.interner.index.get(target)
        if t_idx is None:
            return ()
        return self._rs.in_lists.get(t_idx, ())

    def inbox_values(self, target):
        """Message values for ``target`` in canonical order (memoized)."""
        cached = self._values_cache.get(target)
        if cached is not None:
            return cached
        point = self._point.get(target)
        bcast = self._bcast
        if point is None:
            if not bcast:
                values = []
            else:
                # Pure broadcast fan-in: in-neighbors are pre-sorted by
                # (repr, worker, load order) and each source's records
                # are already in (worker, seq) order, so concatenation
                # IS canonical order — no sort, no Envelope objects.
                values = []
                append = values.append
                get = bcast.get
                for s_idx in self._in_list(target):
                    lst = get(s_idx)
                    if lst is not None:
                        for record in lst:
                            append(record[2])
        else:
            values = [entry[4] for entry in self._decorated(target, point)]
        self._values_cache[target] = values
        return values

    def inbox(self, target):
        """Envelopes for ``target`` in canonical order (memoized).

        Only debug-facing readers (Graft capture, checkpoints) pay for the
        envelope objects; broadcast-derived envelopes carry the
        :data:`~repro.pregel.messages.BROADCAST_TARGET` placeholder in
        their target field, exactly like the envelope path's shared
        broadcast envelopes.
        """
        cached = self._envelope_cache.get(target)
        if cached is not None:
            return cached
        point = self._point.get(target)
        if point is None:
            interner = self._rs.interner
            ids = interner.ids
            envelopes = []
            append = envelopes.append
            get = self._bcast.get
            for s_idx in self._in_list(target):
                lst = get(s_idx)
                if lst is not None:
                    source = ids[s_idx]
                    for record in lst:
                        append(Envelope(source, BROADCAST_TARGET, record[2]))
        else:
            envelopes = [
                Envelope(
                    entry[3],
                    BROADCAST_TARGET if entry[5] else target,
                    entry[4],
                )
                for entry in self._decorated(target, point)
            ]
        self._envelope_cache[target] = envelopes
        return envelopes

    def _decorated(self, target, point):
        """Mixed point+broadcast entries decorated and sorted canonically.

        Each entry is ``(repr(source), worker_id, seq, source, value,
        from_broadcast)``; sorting by the first three fields reproduces the
        envelope path's stable repr-sort over worker-merge order exactly.
        """
        entries = [
            (repr(source), wid, seq, source, value, False)
            for wid, seq, source, value in point
        ]
        bcast = self._bcast
        if bcast:
            interner = self._rs.interner
            ids = interner.ids
            reprs = interner.reprs
            for s_idx in self._in_list(target):
                lst = bcast.get(s_idx)
                if lst:
                    source_repr = reprs[s_idx]
                    source = ids[s_idx]
                    for wid, seq, value in lst:
                        entries.append(
                            (source_repr, wid, seq, source, value, True)
                        )
        entries.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
        return entries

    # -- store protocol (what the engine/worker/checkpoint consume) ---

    def incoming_view(self, target):
        return IncomingView(self, target)

    def has_inbox(self, target):
        if target in self._point:
            return True
        if not self._bcast:
            return False
        cached = self._values_cache.get(target)
        if cached is not None:
            return bool(cached)
        get = self._bcast.get
        for s_idx in self._in_list(target):
            if get(s_idx):
                return True
        return False

    def has_messages(self):
        return self.total_messages > 0

    def targets(self):
        """All vertex ids with at least one message, sorted by repr.

        Full-materialization consumers only (checkpoint writes). The
        broadcast side is recovered by scanning the reverse index for
        in-neighbors that broadcast this superstep.
        """
        targets = set(self._point)
        if self._bcast:
            ids = self._rs.interner.ids
            bcast = self._bcast
            for t_idx, sources in self._rs.in_lists.items():
                for s_idx in sources:
                    if s_idx in bcast:
                        targets.add(ids[t_idx])
                        break
        return sorted(targets, key=repr)

    def missing_targets(self, locations):
        """Message targets that do not currently exist (resolver input).

        Point targets are checked directly; compact broadcasts can only
        reach a missing id along an edge that already dangled at index
        build time, which ``missing_out`` precomputed — so this never
        expands a fan-out.
        """
        missing = set()
        for target in self._point:
            if target not in locations:
                missing.add(target)
        if self._bcast:
            missing_out = self._rs.missing_out
            for s_idx in self._bcast:
                for target in missing_out.get(s_idx, ()):
                    if target not in locations:
                        missing.add(target)
        return missing

    def to_message_store(self):
        """Materialize everything into a plain envelope MessageStore.

        The slow-path escape hatch for barriers that mutate the graph (or
        drop messages): the resulting store behaves exactly like the
        envelope path's post-canonicalize store, in repr-sorted target
        order, so mutations/rollback/drop logic needs no columnar cases.
        """
        store = MessageStore()
        by_target = store._by_target
        total = 0
        for target in self.targets():
            envelopes = list(self.inbox(target))
            if envelopes:
                by_target[target] = envelopes
                total += len(envelopes)
        store.total_messages = total
        return store

    def combine_into(self, combiner):
        """Fold every inbox on its packed value column.

        Returns ``(envelope MessageStore, messages_eliminated)``. Folds
        run over raw value lists in canonical order — no per-message
        envelope is ever built — and single-message inboxes keep their
        original source envelope, matching
        :meth:`~repro.pregel.messages.MessageStore.combine`.
        """
        store = MessageStore()
        by_target = store._by_target
        eliminated = 0
        total = 0
        for target in self.targets():
            values = self.inbox_values(target)
            if not values:
                continue
            if len(values) == 1:
                by_target[target] = list(self.inbox(target))
            else:
                folded = combiner.fold_column(values)
                by_target[target] = [Envelope(None, target, folded)]
                eliminated += len(values) - 1
            total += 1
        store.total_messages = total
        return store, eliminated
