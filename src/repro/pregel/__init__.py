"""A Pregel/Giraph-compatible BSP graph-processing engine.

This is the substrate the Graft debugger instruments. It reproduces the
Giraph execution model the paper depends on:

- vertex-centric ``compute()`` called once per active vertex per superstep,
  with access to exactly the five pieces of Giraph context data (vertex id,
  outgoing edges, incoming messages, aggregators, default global data);
- ``vote_to_halt()`` / message-wakeup halting semantics;
- an optional ``master_compute()`` run at the beginning of each superstep;
- aggregators merged at superstep barriers;
- messages routed between hash-partitioned workers, optionally combined;
- graph mutations (edge edits, vertex add/remove requests, message-to-
  missing-vertex vertex creation) resolved at barriers.

The "cluster" is simulated: workers are in-process objects executed in a
deterministic order, which leaves every API and every superstep boundary
identical to the distributed original while making runs exactly
reproducible from a seed.
"""

from repro.pregel.aggregators import (
    Aggregator,
    AggregatorBuffer,
    AggregatorRegistry,
    AndAggregator,
    MaxAggregator,
    MinAggregator,
    OrAggregator,
    OverwriteAggregator,
    SumAggregator,
)
from repro.pregel.combiners import (
    MaxCombiner,
    MessageCombiner,
    MinCombiner,
    SumCombiner,
)
from repro.pregel.checkpoint import (
    CheckpointConfig,
    WorkerFailure,
    checkpoint_candidates,
)
from repro.common.errors import CheckpointError
from repro.pregel.computation import Computation, WorkerInfo
from repro.pregel.context import ComputeContext
from repro.pregel.engine import PregelEngine, PregelResult, run_computation
from repro.pregel.job import JobResult, read_output, run_job, write_output
from repro.pregel.master import MasterComputation, MasterContext
from repro.pregel.metrics import RunMetrics, SuperstepMetrics
from repro.pregel.permutation import PermutationSchedule
from repro.pregel.partition import (
    ExplicitPartitioner,
    HashPartitioner,
    Partitioner,
    RangePartitioner,
)
from repro.pregel.store import SpillStore
from repro.pregel.runtime import (
    EXECUTOR_NAMES,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    StepOutcome,
    ThreadBackend,
    resolve_backend,
)
from repro.pregel.value_types import Int32, Long64, Short16

__all__ = [
    "Aggregator",
    "AggregatorBuffer",
    "AggregatorRegistry",
    "AndAggregator",
    "MaxAggregator",
    "MinAggregator",
    "OrAggregator",
    "OverwriteAggregator",
    "SumAggregator",
    "MessageCombiner",
    "MinCombiner",
    "MaxCombiner",
    "SumCombiner",
    "CheckpointConfig",
    "CheckpointError",
    "WorkerFailure",
    "checkpoint_candidates",
    "Computation",
    "WorkerInfo",
    "ComputeContext",
    "PregelEngine",
    "PregelResult",
    "run_computation",
    "JobResult",
    "read_output",
    "run_job",
    "write_output",
    "MasterComputation",
    "MasterContext",
    "RunMetrics",
    "SuperstepMetrics",
    "PermutationSchedule",
    "Partitioner",
    "HashPartitioner",
    "RangePartitioner",
    "ExplicitPartitioner",
    "SpillStore",
    "EXECUTOR_NAMES",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "StepOutcome",
    "resolve_backend",
    "Short16",
    "Int32",
    "Long64",
]
