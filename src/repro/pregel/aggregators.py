"""Aggregators: Pregel's global coordination objects.

Vertices fold local contributions into named aggregators during a
superstep; the system merges worker partials at the barrier; the merged
value is visible to ``master_compute()`` at the beginning of the next
superstep and to every vertex during it. Regular aggregators reset to
their initial value each superstep; persistent ones keep accumulating
(both kinds exist in Giraph).
"""

from repro.common.errors import AggregatorError


class Aggregator:
    """Base aggregator: an initial value and an associative merge."""

    def initial_value(self):
        """The identity element contributions merge into."""
        raise NotImplementedError

    def merge(self, current, contribution):
        """Fold one contribution into the running value."""
        raise NotImplementedError


class SumAggregator(Aggregator):
    """Sums numeric contributions; identity is ``zero`` (default 0)."""

    def __init__(self, zero=0):
        self._zero = zero

    def initial_value(self):
        return self._zero

    def merge(self, current, contribution):
        return current + contribution


class MinAggregator(Aggregator):
    """Keeps the minimum contribution; identity is None (no contribution)."""

    def initial_value(self):
        return None

    def merge(self, current, contribution):
        if current is None:
            return contribution
        return contribution if contribution < current else current


class MaxAggregator(Aggregator):
    """Keeps the maximum contribution; identity is None (no contribution)."""

    def initial_value(self):
        return None

    def merge(self, current, contribution):
        if current is None:
            return contribution
        return contribution if contribution > current else current


class AndAggregator(Aggregator):
    """Logical AND of boolean contributions; identity is True."""

    def initial_value(self):
        return True

    def merge(self, current, contribution):
        return bool(current) and bool(contribution)


class OrAggregator(Aggregator):
    """Logical OR of boolean contributions; identity is False."""

    def initial_value(self):
        return False

    def merge(self, current, contribution):
        return bool(current) or bool(contribution)


class OverwriteAggregator(Aggregator):
    """Last contribution wins (Giraph's store-and-broadcast pattern).

    Typically only the master writes it, to broadcast a value — the
    computation *phase* in multi-phase algorithms like the paper's graph
    coloring — so ordering among multiple writers is not relied upon.
    """

    def __init__(self, default=None):
        self._default = default

    def initial_value(self):
        return self._default

    def merge(self, current, contribution):
        return contribution


class AggregatorBuffer:
    """Worker-local aggregator partials for one superstep.

    Parallel backends give each worker one of these instead of sharing the
    registry: vertices fold contributions into the buffer without locking,
    and the engine merges every buffer's partials back into the registry in
    worker-id order at the barrier (:meth:`AggregatorRegistry.merge_partials`).
    Because aggregator merges are associative with an identity element (the
    base-class contract), folding per worker and then across workers in a
    fixed order yields the same value as the serial registry fold — so
    aggregator results are identical across backends and worker counts.

    Reads (``visible_value``) go straight to the registry's previous-superstep
    values, which are frozen during a superstep and safe to share.
    """

    def __init__(self, registry):
        self._registry = registry
        self._partials = {}

    def visible_value(self, name):
        return self._registry.visible_value(name)

    def aggregate(self, name, contribution):
        """Fold a contribution into this worker's local partial."""
        partials = self._partials
        if name in partials:
            aggregator = self._registry._aggregators[name]
            partials[name] = aggregator.merge(partials[name], contribution)
        else:
            self._registry._require(name)
            aggregator = self._registry._aggregators[name]
            partials[name] = aggregator.merge(
                aggregator.initial_value(), contribution
            )

    @property
    def partials(self):
        """This worker's ``{name: partial}`` contributions (touched only)."""
        return self._partials


class AggregatorRegistry:
    """Named aggregators plus their per-superstep lifecycle.

    The registry owns three layers of state:

    - ``visible``: merged values from the previous superstep, readable by
      vertices and master this superstep;
    - ``partials``: contributions accumulated during the current superstep;
    - the persistent flag deciding whether a barrier resets the value.
    """

    def __init__(self):
        self._aggregators = {}
        self._persistent = {}
        self._visible = {}
        self._partials = {}
        self._touched = set()

    def register(self, name, aggregator, persistent=False):
        """Register an aggregator before the computation starts."""
        if name in self._aggregators:
            raise AggregatorError(f"aggregator {name!r} already registered")
        if not isinstance(aggregator, Aggregator):
            raise AggregatorError(
                f"aggregator {name!r} must be an Aggregator, got {aggregator!r}"
            )
        self._aggregators[name] = aggregator
        self._persistent[name] = persistent
        self._visible[name] = aggregator.initial_value()
        self._partials[name] = aggregator.initial_value()

    def names(self):
        return sorted(self._aggregators)

    def _require(self, name):
        if name not in self._aggregators:
            raise AggregatorError(
                f"unknown aggregator {name!r}; registered: {self.names()}"
            )

    def aggregate(self, name, contribution):
        """Fold a contribution into the current superstep's partial."""
        self._require(name)
        self._partials[name] = self._aggregators[name].merge(
            self._partials[name], contribution
        )
        self._touched.add(name)

    def visible_value(self, name):
        """The merged value from the previous superstep."""
        self._require(name)
        return self._visible[name]

    def visible_snapshot(self):
        """Dict of every aggregator's visible value (captured by Graft)."""
        return dict(self._visible)

    def set_visible(self, name, value):
        """Master-side direct write, effective immediately (broadcast)."""
        self._require(name)
        self._visible[name] = value

    def buffer(self):
        """A fresh worker-local :class:`AggregatorBuffer` bound to this registry."""
        return AggregatorBuffer(self)

    def merge_partials(self, partials):
        """Fold one worker's buffered partials into the superstep partials.

        Called once per worker, in worker-id order, at the barrier. The
        first worker to touch an aggregator this superstep contributes its
        partial wholesale (it was folded from the aggregator's identity);
        later workers merge on top. With associative merges this reproduces
        the serial fold exactly. Persistent aggregators always merge into
        their carried-over partial, which keeps accumulating across
        supersteps.
        """
        for name, partial in partials.items():
            if name in self._touched or self._persistent[name]:
                self._partials[name] = self._aggregators[name].merge(
                    self._partials[name], partial
                )
            else:
                self._partials[name] = partial
            self._touched.add(name)

    def barrier(self):
        """End-of-superstep merge: publish partials, reset non-persistent ones.

        An aggregator nobody contributed to this superstep keeps its visible
        value — so a value the master broadcast (e.g. a phase marker in an
        :class:`OverwriteAggregator`) stays visible until overwritten, which
        is how multi-phase Giraph algorithms rely on it behaving.
        """
        for name, aggregator in self._aggregators.items():
            if name in self._touched:
                self._visible[name] = self._partials[name]
            if not self._persistent[name]:
                self._partials[name] = aggregator.initial_value()
        self._touched.clear()

    def restore_snapshot(self, snapshot):
        """Overwrite visible values from a snapshot (replay and recovery).

        Persistent aggregators also restore their running partial, since
        their accumulation continues from the visible value.
        """
        for name, value in snapshot.items():
            if name not in self._aggregators:
                raise AggregatorError(
                    f"snapshot references unregistered aggregator {name!r}"
                )
            self._visible[name] = value
            if self._persistent[name]:
                self._partials[name] = value
        self._touched.clear()
