"""The BSP engine: superstep loop, barriers, routing, mutations, halting.

:class:`PregelEngine` wires the pieces together exactly in Giraph's order:

1. at the beginning of each superstep, ``master_compute()`` runs against
   the aggregator values merged at the previous barrier and may rewrite
   them or halt;
2. every worker runs ``compute()`` for its active vertices (active = not
   halted, or woken by an incoming message; everyone is active in
   superstep 0);
3. the barrier routes emitted messages (optionally through a combiner),
   applies graph mutations (explicit requests plus Giraph's
   create-vertex-on-message default resolver), merges aggregator partials,
   and checks termination.

Listeners observe superstep boundaries — this is where Graft hooks in its
master-context capture and per-superstep trace flushing without the engine
knowing anything about the debugger.
"""

from dataclasses import dataclass, field

from repro.common.errors import EngineStateError, PregelError
from repro.common.timing import Timer
from repro.pregel import halting
from repro.pregel.aggregators import AggregatorRegistry
from repro.pregel.checkpoint import (
    WorkerFailure,
    latest_checkpoint_path,
    read_checkpoint,
    restore_workers,
    write_checkpoint,
)
from repro.pregel.master import MasterContext, ensure_master, run_master
from repro.pregel.messages import MessageStore
from repro.pregel.metrics import RunMetrics, SuperstepMetrics
from repro.pregel.partition import HashPartitioner
from repro.pregel.worker import Worker

DEFAULT_MAX_SUPERSTEPS = 10_000


@dataclass
class PregelResult:
    """Outcome of one engine run."""

    vertex_values: dict
    num_supersteps: int
    halt_reason: str
    metrics: RunMetrics
    aggregator_values: dict
    compute_errors: list = field(default_factory=list)
    recoveries: int = 0

    @property
    def converged(self):
        return self.halt_reason == halting.CONVERGED

    def summary(self):
        return (
            f"halt={self.halt_reason} after {self.num_supersteps} supersteps; "
            f"{self.metrics.summary()}"
        )


class PregelEngine:
    """Runs one vertex program over one input graph.

    Parameters
    ----------
    computation_factory:
        The user's :class:`~repro.pregel.Computation` subclass (or any
        zero-argument factory). One instance is created per worker, as
        Giraph creates one per worker thread.
    graph:
        The input :class:`~repro.graph.Graph`. The engine copies adjacency
        into workers; the input graph is never mutated.
    num_workers, partitioner:
        Cluster shape. Default: 4 workers, hash partitioning.
    master:
        Optional :class:`~repro.pregel.MasterComputation` instance.
    combiner:
        Optional :class:`~repro.pregel.MessageCombiner`.
    aggregators:
        Optional dict ``name -> Aggregator`` registered before superstep 0
        (in addition to whatever ``master.initialize`` registers).
    seed:
        Root seed for all per-vertex randomness.
    max_supersteps:
        Superstep budget; hitting it sets halt reason ``max_supersteps``
        (how a user notices the paper's MWM infinite loop).
    on_error:
        ``"raise"`` (default) propagates a failing ``compute()`` as
        :class:`~repro.common.errors.ComputeError`; ``"halt_vertex"``
        records it and keeps going (used with Graft exception capture).
    listeners:
        Objects whose optional hooks ``on_start(engine)``,
        ``on_master_computed(superstep, master_ctx)``,
        ``on_superstep_end(superstep, metrics)``, ``on_finish(result)``
        are called at the matching points.
    checkpoint_config:
        Optional :class:`~repro.pregel.CheckpointConfig`; enables periodic
        checkpoints to the simulated DFS and failure recovery.
    failure_injections:
        Optional list of ``(superstep, worker_id)`` simulated machine
        failures. With checkpointing enabled, each triggers a Pregel-style
        rollback to the last checkpoint; without it, the job fails with
        :class:`~repro.pregel.WorkerFailure`.
    """

    def __init__(
        self,
        computation_factory,
        graph,
        num_workers=4,
        seed=0,
        master=None,
        combiner=None,
        aggregators=None,
        partitioner=None,
        max_supersteps=DEFAULT_MAX_SUPERSTEPS,
        on_error="raise",
        listeners=None,
        checkpoint_config=None,
        failure_injections=None,
        on_message_to_missing="create",
    ):
        if max_supersteps <= 0:
            raise PregelError(f"max_supersteps must be positive, got {max_supersteps}")
        if on_error not in ("raise", "halt_vertex"):
            raise PregelError(f"unknown on_error policy {on_error!r}")
        if on_message_to_missing not in ("create", "drop"):
            raise PregelError(
                f"unknown on_message_to_missing policy {on_message_to_missing!r}"
            )
        self._computation_factory = computation_factory
        self._graph = graph
        self._partitioner = partitioner or HashPartitioner(num_workers)
        self._num_workers = self._partitioner.num_workers
        self._seed = seed
        self._master = ensure_master(master)
        self._combiner = combiner
        self._extra_aggregators = dict(aggregators or {})
        self._max_supersteps = max_supersteps
        self._on_error = on_error
        self._listeners = list(listeners or [])
        self._on_message_to_missing = on_message_to_missing
        self._checkpoint_config = checkpoint_config
        self._pending_failures = {
            superstep: worker_id
            for superstep, worker_id in (failure_injections or [])
        }
        self._ran = False
        # Populated by run():
        self.workers = []
        self.aggregators = AggregatorRegistry()
        self._locations = {}

    # -- listener plumbing -----------------------------------------------

    def add_listener(self, listener):
        """Attach a listener before run() (Graft uses this)."""
        self._listeners.append(listener)

    def _notify(self, hook_name, *args):
        for listener in self._listeners:
            hook = getattr(listener, hook_name, None)
            if hook is not None:
                hook(*args)

    # -- setup ------------------------------------------------------------

    def _load(self):
        self.workers = [
            Worker(worker_id, self._seed) for worker_id in range(self._num_workers)
        ]
        self._computations = [
            self._computation_factory() for _ in range(self._num_workers)
        ]
        for vertex_id in self._graph.vertex_ids():
            worker_index = self._partitioner.worker_for(vertex_id)
            computation = self._computations[worker_index]
            initial = computation.initial_value(
                vertex_id, self._graph.vertex_value(vertex_id)
            )
            edge_map = dict(self._graph.out_edges(vertex_id))
            self.workers[worker_index].load_vertex(vertex_id, initial, edge_map)
            self._locations[vertex_id] = worker_index
        for name, aggregator in self._extra_aggregators.items():
            self.aggregators.register(name, aggregator)
        if self._master is not None:
            self._master.initialize(self.aggregators)

    def vertex_value(self, vertex_id):
        """Current value of a vertex (live engine state; used by debuggers)."""
        worker_index = self._locations.get(vertex_id)
        if worker_index is None:
            raise PregelError(f"vertex {vertex_id!r} not in the computation")
        return self.workers[worker_index].values[vertex_id]

    def has_vertex(self, vertex_id):
        return vertex_id in self._locations

    def vertex_edges(self, vertex_id):
        """Current outgoing-edge map of a vertex (live engine state)."""
        worker_index = self._locations.get(vertex_id)
        if worker_index is None:
            raise PregelError(f"vertex {vertex_id!r} not in the computation")
        return dict(self.workers[worker_index].edges[vertex_id])

    @property
    def num_vertices(self):
        return sum(worker.num_vertices for worker in self.workers)

    @property
    def num_edges(self):
        return sum(worker.num_edges for worker in self.workers)

    # -- the BSP loop -------------------------------------------------------

    def run(self):
        """Execute the computation to completion and return a result."""
        if self._ran:
            raise EngineStateError("engine instances are single-use; build a new one")
        self._ran = True
        self._load()
        self._notify("on_start", self)

        metrics = RunMetrics()
        compute_errors = []
        incoming = MessageStore()
        halt_reason = halting.MAX_SUPERSTEPS
        supersteps_run = 0
        recoveries = 0

        if self._checkpoint_config is not None:
            write_checkpoint(
                self._checkpoint_config, 0, self.workers, self.aggregators, incoming
            )

        with Timer() as total_timer:
            superstep = 0
            while superstep < self._max_supersteps:
                failed_worker = self._pending_failures.pop(superstep, None)
                if failed_worker is not None:
                    if self._checkpoint_config is None:
                        raise WorkerFailure(failed_worker, superstep)
                    superstep, incoming = self._recover(superstep)
                    recoveries += 1
                    continue
                num_vertices = self.num_vertices
                num_edges = self.num_edges
                master_ctx = MasterContext(
                    superstep, num_vertices, num_edges, self.aggregators
                )
                if self._master is not None:
                    run_master(self._master, master_ctx)
                self._notify("on_master_computed", superstep, master_ctx)
                if master_ctx.halted:
                    halt_reason = halting.MASTER_HALT
                    break

                superstep_metrics = SuperstepMetrics(superstep)
                for worker, computation in zip(self.workers, self._computations):
                    worker.prepare_superstep(self.aggregators)
                    with Timer() as worker_timer:
                        worker.run_superstep(
                            computation,
                            superstep,
                            incoming,
                            num_vertices,
                            num_edges,
                            on_error=self._on_error,
                        )
                    superstep_metrics.compute_seconds += worker_timer.elapsed
                    superstep_metrics.compute_calls += worker.compute_calls
                    superstep_metrics.active_vertices += worker.compute_calls
                    superstep_metrics.messages_sent += worker.messages_sent
                    superstep_metrics.bytes_sent += worker.bytes_sent
                    compute_errors.extend(worker.compute_errors)

                outgoing = self._barrier(superstep_metrics)
                metrics.add_superstep(superstep_metrics)
                self._notify("on_superstep_end", superstep, superstep_metrics)
                supersteps_run = superstep + 1

                config = self._checkpoint_config
                if config is not None and (superstep + 1) % config.every_n_supersteps == 0:
                    write_checkpoint(
                        config, superstep + 1, self.workers, self.aggregators, outgoing
                    )

                if halting.should_stop_after_barrier(self.workers, outgoing):
                    halt_reason = halting.CONVERGED
                    break
                incoming = outgoing
                superstep += 1
        metrics.total_seconds = total_timer.elapsed

        result = PregelResult(
            vertex_values=self._collect_values(),
            num_supersteps=supersteps_run,
            halt_reason=halt_reason,
            metrics=metrics,
            aggregator_values=self.aggregators.visible_snapshot(),
            compute_errors=compute_errors,
            recoveries=recoveries,
        )
        self._notify("on_finish", result)
        return result

    def _recover(self, failed_superstep):
        """Roll every worker back to the last checkpoint (Pregel recovery)."""
        config = self._checkpoint_config
        path = latest_checkpoint_path(config, before_superstep=failed_superstep)
        checkpoint = read_checkpoint(config, path)
        self._locations = restore_workers(self.workers, checkpoint)
        self.aggregators.restore_snapshot(checkpoint["aggregators"])
        return checkpoint["superstep"], checkpoint["incoming"]

    def _barrier(self, superstep_metrics):
        """Route messages, apply mutations, merge aggregators."""
        outgoing = MessageStore()
        for worker in self.workers:
            outgoing.deliver_all(worker.outbox)
        if self._combiner is not None:
            superstep_metrics.messages_combined = outgoing.combine(self._combiner)
        self._apply_mutations(outgoing)
        self.aggregators.barrier()
        return outgoing

    def _apply_mutations(self, outgoing):
        """Removals, then additions, then message-driven vertex creation."""
        for worker in self.workers:
            for vertex_id in worker.remove_vertex_requests:
                location = self._locations.pop(vertex_id, None)
                if location is not None:
                    self.workers[location].remove_vertex(vertex_id)
        for worker in self.workers:
            for vertex_id, value in worker.add_vertex_requests:
                if vertex_id not in self._locations:
                    self._create_vertex(vertex_id, value)
        if self._on_message_to_missing == "create":
            # Giraph's default vertex resolver: a message to a missing id
            # creates the vertex. The "drop" policy silently discards such
            # messages instead (the other standard resolver behaviour).
            for target in outgoing.targets():
                if target not in self._locations:
                    worker_index = self._partitioner.worker_for(target)
                    default = self._computations[worker_index].default_vertex_value(
                        target
                    )
                    self._create_vertex(target, default)
        else:
            for target in list(outgoing.targets()):
                if target not in self._locations:
                    outgoing.drop_inbox(target)

    def _create_vertex(self, vertex_id, value):
        worker_index = self._partitioner.worker_for(vertex_id)
        self.workers[worker_index].load_vertex(vertex_id, value, {})
        self._locations[vertex_id] = worker_index

    def _collect_values(self):
        values = {}
        for worker in self.workers:
            values.update(worker.vertex_values())
        return values


def run_computation(computation_factory, graph, **engine_kwargs):
    """One-shot convenience: build an engine, run it, return the result.

    >>> from repro.pregel import Computation
    >>> from repro.graph import GraphBuilder
    >>> class Noop(Computation):
    ...     def compute(self, ctx, messages):
    ...         ctx.vote_to_halt()
    >>> g = GraphBuilder().vertices(1, 2).build()
    >>> run_computation(Noop, g).num_supersteps
    1
    """
    return PregelEngine(computation_factory, graph, **engine_kwargs).run()
