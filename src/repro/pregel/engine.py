"""The BSP engine: superstep loop, barriers, routing, mutations, halting.

:class:`PregelEngine` wires the pieces together exactly in Giraph's order:

1. at the beginning of each superstep, ``master_compute()`` runs against
   the aggregator values merged at the previous barrier and may rewrite
   them or halt;
2. every worker runs ``compute()`` for its active vertices (active = not
   halted, or woken by an incoming message; everyone is active in
   superstep 0);
3. the barrier routes emitted messages (optionally through a combiner),
   applies graph mutations (explicit requests plus Giraph's
   create-vertex-on-message default resolver), merges aggregator partials,
   and checks termination.

Superstep execution is split into two layers. Each worker's share of a
superstep is packaged as a *step*: a closure that prepares the worker,
runs ``compute()`` over its active vertices against a private grouped
outbox and aggregator buffer, and returns a
:class:`~repro.pregel.runtime.StepOutcome`. An
:class:`~repro.pregel.runtime.ExecutionBackend` (``executor="serial" |
"threads" | "processes"``) schedules the steps; the engine then reduces
all outcomes at the barrier **in worker-id order** — message merge,
aggregator partial fold, mutation application, error selection — so
results, aggregator values, and Graft trace files are identical whichever
backend ran the steps.

Listeners observe superstep boundaries — this is where Graft hooks in its
master-context capture and per-superstep trace flushing without the engine
knowing anything about the debugger. Listeners that buffer per-worker data
during steps may implement two extra hooks used by state-transferring
backends (``processes``): ``collect_step_payload(worker_id)`` runs inside
the step's address space and returns picklable data;
``absorb_step_payload(worker_id, payload)`` replays it in the parent at
the barrier. ``on_superstep_aborted(superstep, worker_id)`` fires when a
step's fatal error is about to propagate.
"""

import time
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.common.errors import (
    CheckpointError,
    ComputeError,
    EngineStateError,
    InjectedFault,
    PregelError,
    SimFsError,
)
from repro.common.timing import Timer
from repro.pregel import halting
from repro.pregel.aggregators import AggregatorRegistry
from repro.pregel.columnar import (
    ColumnarMessageStore,
    ColumnarRunState,
    InlineTransport,
    ShmTransport,
    build_frame,
    parse_frame,
    release_frame,
)
from repro.pregel.checkpoint import (
    WorkerFailure,
    checkpoint_candidates,
    read_checkpoint,
    restore_workers,
    write_checkpoint,
)
from repro.pregel.master import MasterContext, ensure_master, run_master
from repro.pregel.messages import MessageStore
from repro.pregel.metrics import RunMetrics, SuperstepMetrics, sample_peak_memory
from repro.pregel.partition import HashPartitioner
from repro.pregel.runtime import StepOutcome, resolve_backend
from repro.pregel.worker import SpilledWorker, Worker

DEFAULT_MAX_SUPERSTEPS = 10_000

#: Default partition count when spilling: enough partitions that one
#: partition's page is a small fraction of any realistic memory ceiling,
#: while still a multiple of common worker counts (1/2/4/8).
DEFAULT_SPILL_PARTITIONS = 32

# Rough in-memory footprint per vertex / per edge of the dict-based
# plane (value + adjacency + halt flag + outbox slack), used only to
# decide whether ``store="auto"`` should spill under a memory ceiling.
_VERTEX_FOOTPRINT = 300
_EDGE_FOOTPRINT = 180


def estimated_graph_bytes(graph):
    """Estimated resident bytes of running ``graph`` fully in memory."""
    num_vertices = getattr(graph, "num_vertices", None)
    num_edges = getattr(graph, "num_edges", 0) or 0
    if num_vertices is None:
        num_vertices = len(list(graph.vertex_ids()))
    return _VERTEX_FOOTPRINT * num_vertices + _EDGE_FOOTPRINT * num_edges


@dataclass
class PregelResult:
    """Outcome of one engine run."""

    vertex_values: dict
    num_supersteps: int
    halt_reason: str
    metrics: RunMetrics
    aggregator_values: dict
    compute_errors: list = field(default_factory=list)
    recoveries: int = 0

    @property
    def converged(self):
        return self.halt_reason == halting.CONVERGED

    def summary(self):
        return (
            f"halt={self.halt_reason} after {self.num_supersteps} supersteps; "
            f"{self.metrics.summary()}"
        )


class SpilledResultValues(Mapping):
    """Lazy ``{vertex_id: value}`` view over the spill store.

    Materializing a million-vertex result dict would defeat the memory
    ceiling the spill plane exists for; point lookups go through the page
    cache instead. Iteration order follows the location map (insertion
    order of the load). ``dict(result.vertex_values)`` still works — and
    pays the page churn — when a test wants the whole mapping.
    """

    def __init__(self, workers, locations):
        self._workers = workers
        self._locations = locations

    def __getitem__(self, vertex_id):
        worker_index = self._locations[vertex_id]
        return self._workers[worker_index].get_vertex_value(vertex_id)

    def __iter__(self):
        return iter(self._locations)

    def __len__(self):
        return len(self._locations)

    def __eq__(self, other):
        if isinstance(other, (dict, Mapping)):
            return dict(self) == dict(other)
        return NotImplemented

    __hash__ = None

    def __repr__(self):
        return f"<SpilledResultValues of {len(self._locations)} vertices>"


class PregelEngine:
    """Runs one vertex program over one input graph.

    Parameters
    ----------
    computation_factory:
        The user's :class:`~repro.pregel.Computation` subclass (or any
        zero-argument factory). One instance is created per worker, as
        Giraph creates one per worker thread.
    graph:
        The input :class:`~repro.graph.Graph`. The engine copies adjacency
        into workers; the input graph is never mutated.
    num_workers, partitioner:
        Cluster shape. Default: 4 workers, hash partitioning.
    executor:
        Execution backend for worker steps: ``"serial"`` (default),
        ``"threads"``, ``"processes"``, or an
        :class:`~repro.pregel.runtime.ExecutionBackend` instance. Results
        and Graft traces are identical across backends; see
        ``docs/performance.md``.
    columnar:
        Message/state transport: ``True`` forces the columnar data plane
        (packed batches; shared-memory frames under ``processes``),
        ``False`` the classic envelope path, ``None`` (default) picks
        columnar unless a ``delivery_schedule`` is installed. Results and
        trace digests are identical either way; see ``docs/columnar.md``.
    master:
        Optional :class:`~repro.pregel.MasterComputation` instance.
    combiner:
        Optional :class:`~repro.pregel.MessageCombiner`.
    aggregators:
        Optional dict ``name -> Aggregator`` registered before superstep 0
        (in addition to whatever ``master.initialize`` registers).
    seed:
        Root seed for all per-vertex randomness.
    max_supersteps:
        Superstep budget; hitting it sets halt reason ``max_supersteps``
        (how a user notices the paper's MWM infinite loop).
    on_error:
        ``"raise"`` (default) propagates a failing ``compute()`` as
        :class:`~repro.common.errors.ComputeError`; ``"halt_vertex"``
        records it and keeps going (used with Graft exception capture).
        Under parallel backends with ``"raise"``, concurrent steps run to
        completion and the error from the lowest-numbered worker wins.
    listeners:
        Objects whose optional hooks ``on_start(engine)``,
        ``on_master_computed(superstep, master_ctx)``,
        ``on_superstep_end(superstep, metrics)``, ``on_finish(result)``,
        ``on_superstep_aborted(superstep, worker_id)`` are called at the
        matching points.
    checkpoint_config:
        Optional :class:`~repro.pregel.CheckpointConfig`; enables periodic
        checkpoints to the simulated DFS and failure recovery.
    failure_injections:
        Optional list of ``(superstep, worker_id)`` simulated machine
        failures. With checkpointing enabled, each triggers a Pregel-style
        rollback to the last checkpoint; without it, the job fails with
        :class:`~repro.pregel.WorkerFailure`.
    fault_injector:
        Optional :class:`~repro.chaos.FaultInjector` (or anything with its
        hook methods). Consulted at deterministic points — superstep start,
        step packaging, after each checkpoint write — so injected faults
        (crashes, slow workers, checkpoint corruption) fire identically
        whatever execution backend runs the steps. Any
        :class:`~repro.common.errors.InjectedFault` that escapes a
        superstep is handled like a machine failure: rollback and
        re-execute when checkpointing is on, propagate otherwise.
    """

    def __init__(
        self,
        computation_factory,
        graph,
        num_workers=4,
        seed=0,
        master=None,
        combiner=None,
        aggregators=None,
        partitioner=None,
        max_supersteps=DEFAULT_MAX_SUPERSTEPS,
        on_error="raise",
        listeners=None,
        checkpoint_config=None,
        failure_injections=None,
        fault_injector=None,
        on_message_to_missing="create",
        executor="serial",
        delivery_schedule=None,
        columnar=None,
        store=None,
        memory_limit=None,
        num_partitions=None,
        spill_filesystem=None,
        page_cache_bytes=None,
    ):
        if max_supersteps <= 0:
            raise PregelError(f"max_supersteps must be positive, got {max_supersteps}")
        if on_error not in ("raise", "halt_vertex"):
            raise PregelError(f"unknown on_error policy {on_error!r}")
        if on_message_to_missing not in ("create", "drop"):
            raise PregelError(
                f"unknown on_message_to_missing policy {on_message_to_missing!r}"
            )
        if store is None:
            store = "auto"
        if store not in ("auto", "memory", "spill"):
            raise PregelError(
                f"store must be 'auto', 'memory', or 'spill', got {store!r}"
            )
        spill = store == "spill" or (
            store == "auto"
            and memory_limit is not None
            and estimated_graph_bytes(graph) > memory_limit
        )
        if spill:
            if columnar:
                raise PregelError(
                    "columnar=True cannot be combined with store='spill'; "
                    "the spill plane routes messages through sorted run "
                    "files, not packed column frames"
                )
            if delivery_schedule is not None:
                raise PregelError(
                    "a delivery_schedule cannot be combined with "
                    "store='spill'; graft-san permutations operate on the "
                    "in-memory envelope store"
                )
            columnar = False
        self._computation_factory = computation_factory
        self._graph = graph
        if partitioner is not None:
            self._partitioner = partitioner
        else:
            if num_partitions is None and spill:
                num_partitions = max(num_workers, DEFAULT_SPILL_PARTITIONS)
            self._partitioner = HashPartitioner(
                num_workers, num_partitions=num_partitions
            )
        self._num_workers = self._partitioner.num_workers
        self._backend = resolve_backend(executor, self._num_workers)
        self._memory_limit = memory_limit
        if spill:
            from repro.pregel.store import SpillStore
            from repro.pregel.store.spill import DEFAULT_CACHE_BYTES

            if page_cache_bytes is None:
                page_cache_bytes = DEFAULT_CACHE_BYTES
                if memory_limit is not None:
                    page_cache_bytes = min(
                        page_cache_bytes, max(memory_limit // 4, 1 << 20)
                    )
            self._store = SpillStore(
                spill_filesystem,
                num_partitions=self._partitioner.num_partitions,
                cache_bytes=page_cache_bytes,
            )
        else:
            self._store = None
        self._store_counters = None
        self._seed = seed
        self._master = ensure_master(master)
        self._combiner = combiner
        self._extra_aggregators = dict(aggregators or {})
        self._max_supersteps = max_supersteps
        self._on_error = on_error
        self._listeners = list(listeners or [])
        self._on_message_to_missing = on_message_to_missing
        self._checkpoint_config = checkpoint_config
        self._fault_injector = fault_injector
        # graft-san: a PermutationSchedule (or compatible object) that
        # reorders canonicalized inboxes at the barrier. Seeded from the
        # run seed unless it carries its own.
        self._delivery_schedule = (
            delivery_schedule.bind(seed)
            if delivery_schedule is not None
            else None
        )
        # Columnar data plane: on by default (None = auto) for every
        # backend — same canonical digests, flat buffers instead of
        # per-envelope objects — except under a graft-san delivery
        # schedule, which permutes envelope stores and therefore pins the
        # classic path.
        if columnar and delivery_schedule is not None:
            raise PregelError(
                "columnar=True cannot be combined with a delivery_schedule; "
                "graft-san permutations operate on the envelope store"
            )
        if columnar is None:
            columnar = delivery_schedule is None
        self._columnar = bool(columnar)
        self._run_state = ColumnarRunState() if self._columnar else None
        self._transport = (
            ShmTransport()
            if self._columnar and self._backend.transfers_state
            else InlineTransport()
        )
        self._pending_failures = {
            superstep: worker_id
            for superstep, worker_id in (failure_injections or [])
        }
        self._ran = False
        # Populated by run():
        self.workers = []
        self.aggregators = AggregatorRegistry()
        self._locations = {}

    @property
    def executor_name(self):
        """Name of the execution backend scheduling worker steps."""
        return self._backend.name

    # -- listener plumbing -----------------------------------------------

    def add_listener(self, listener):
        """Attach a listener before run() (Graft uses this)."""
        self._listeners.append(listener)

    def _notify(self, hook_name, *args):
        for listener in self._listeners:
            hook = getattr(listener, hook_name, None)
            if hook is not None:
                hook(*args)

    # -- setup ------------------------------------------------------------

    def _iter_graph_vertices(self):
        """Unified vertex source: ``(vertex_id, raw_value, edge_map)``.

        A :class:`~repro.datasets.VertexStream` (or anything exposing
        ``iter_vertices``) is consumed streaming — vertices flow straight
        into worker/store state without the whole graph ever being a dict;
        a materialized :class:`~repro.graph.Graph` goes through the
        classic per-id accessors.
        """
        iterator = getattr(self._graph, "iter_vertices", None)
        if iterator is not None:
            return iterator()
        graph = self._graph
        return (
            (vertex_id, graph.vertex_value(vertex_id), graph.out_edges(vertex_id))
            for vertex_id in graph.vertex_ids()
        )

    def _load(self):
        worker_class = Worker if self._store is None else SpilledWorker
        self.workers = [
            worker_class(worker_id, self._seed)
            for worker_id in range(self._num_workers)
        ]
        self._computations = [
            self._computation_factory() for _ in range(self._num_workers)
        ]
        if self._store is not None:
            # Bulk-build pages partition-at-a-time: bounded buffers, no
            # full-graph dict — what lets ≥1M-vertex datasets load under
            # a memory ceiling.
            partitioner = self._partitioner
            computations = self._computations
            builder = self._store.builder()
            for vertex_id, raw_value, edge_map in self._iter_graph_vertices():
                partition_id = partitioner.partition_for(vertex_id)
                worker_index = partitioner.worker_of_partition(partition_id)
                initial = computations[worker_index].initial_value(
                    vertex_id, raw_value
                )
                builder.add(partition_id, vertex_id, initial, edge_map)
                self._locations[vertex_id] = worker_index
            builder.finish()
            self._store_counters = self._store.counters()
            for worker in self.workers:
                worker.attach_spill(
                    self._store, partitioner, self._locations,
                    deferred=self._backend.transfers_state,
                )
        else:
            for vertex_id, raw_value, edge_map in self._iter_graph_vertices():
                worker_index = self._partitioner.worker_for(vertex_id)
                computation = self._computations[worker_index]
                initial = computation.initial_value(vertex_id, raw_value)
                self.workers[worker_index].load_vertex(
                    vertex_id, initial, edge_map
                )
                self._locations[vertex_id] = worker_index
        for name, aggregator in self._extra_aggregators.items():
            self.aggregators.register(name, aggregator)
        if self._master is not None:
            self._master.initialize(self.aggregators)

    def vertex_value(self, vertex_id):
        """Current value of a vertex (live engine state; used by debuggers)."""
        worker_index = self._locations.get(vertex_id)
        if worker_index is None:
            raise PregelError(f"vertex {vertex_id!r} not in the computation")
        return self.workers[worker_index].get_vertex_value(vertex_id)

    def has_vertex(self, vertex_id):
        return vertex_id in self._locations

    def vertex_edges(self, vertex_id):
        """Current outgoing-edge map of a vertex (live engine state)."""
        worker_index = self._locations.get(vertex_id)
        if worker_index is None:
            raise PregelError(f"vertex {vertex_id!r} not in the computation")
        return self.workers[worker_index].get_vertex_edges(vertex_id)

    @property
    def num_vertices(self):
        return sum(worker.num_vertices for worker in self.workers)

    @property
    def num_edges(self):
        return sum(worker.num_edges for worker in self.workers)

    # -- worker steps -------------------------------------------------------

    def _make_step(self, worker, computation, superstep, incoming,
                   num_vertices, num_edges, payload_collectors, fault=None):
        """Package one worker's share of a superstep as a pure step function.

        The step touches only the worker's own state, a fresh aggregator
        buffer, and the immutable ``incoming`` store, so backends may run
        steps concurrently without locks. Fatal compute errors are returned
        in the outcome (not raised) so sibling steps aren't torn down
        mid-superstep; the engine re-raises deterministically afterwards.

        ``fault`` is a chaos decision made in the parent *before* the step
        is scheduled (so it is backend-independent): an optional
        ``{"delay": seconds, "crash_after": calls}`` dict. A crash raises
        :class:`~repro.common.errors.InjectedWorkerCrash` out of the step —
        deliberately not caught here, because it models the machine dying,
        not user code failing.
        """
        transfers_state = self._backend.transfers_state
        on_error = self._on_error
        columnar = self._columnar
        spill = self._store is not None
        delay = fault.get("delay") if fault else None
        crash_after = fault.get("crash_after") if fault else None

        def step():
            buffer = self.aggregators.buffer()
            worker.prepare_superstep(buffer, columnar=columnar)
            error = None
            if delay:
                time.sleep(delay)
            with Timer() as timer:
                try:
                    worker.run_superstep(
                        computation,
                        superstep,
                        incoming,
                        num_vertices,
                        num_edges,
                        on_error=on_error,
                        crash_after_calls=crash_after,
                    )
                except ComputeError as exc:
                    error = exc
            payloads = None
            state = None
            frame = None
            outbox = worker.outbox
            if spill:
                # Messages are already in run files (or the worker's
                # deferred router under ``transfers_state``); nothing is
                # grouped in an outbox.
                outbox = {}
                if transfers_state:
                    payloads = [
                        collector(worker.worker_id)
                        for collector in payload_collectors
                    ]
                    state = worker.collect_spill_state()
            elif transfers_state:
                payloads = [
                    collector(worker.worker_id)
                    for collector in payload_collectors
                ]
                if columnar:
                    # Pack outbox + values + halt flags (+ adjacency only
                    # when mutated) into one flat frame and ship it as a
                    # shared-memory block; nothing per-message crosses the
                    # pickle pipe.
                    frame = self._transport.ship(
                        build_frame(
                            worker,
                            self._run_state.interner,
                            superstep,
                            state_sections=True,
                        )
                    )
                    outbox = {}
                else:
                    state = (worker.values, worker.edges, worker.halted)
            return StepOutcome(
                worker_id=worker.worker_id,
                elapsed=timer.elapsed,
                outbox=outbox,
                agg_partials=buffer.partials,
                add_vertex_requests=worker.add_vertex_requests,
                remove_vertex_requests=worker.remove_vertex_requests,
                messages_sent=worker.messages_sent,
                bytes_sent=worker.bytes_sent,
                compute_calls=worker.compute_calls,
                compute_errors=worker.compute_errors,
                error=error,
                state=state,
                payloads=payloads,
                frame=frame,
            )

        return step

    # -- the BSP loop -------------------------------------------------------

    def run(self):
        """Execute the computation to completion and return a result."""
        if self._ran:
            raise EngineStateError("engine instances are single-use; build a new one")
        self._ran = True
        try:
            return self._run()
        finally:
            self._backend.close()

    def _run(self):
        self._load()
        self._notify("on_start", self)
        payload_collectors = [
            listener
            for listener in self._listeners
            if hasattr(listener, "collect_step_payload")
        ]
        collector_hooks = [
            listener.collect_step_payload for listener in payload_collectors
        ]

        metrics = RunMetrics()
        compute_errors = []
        incoming = MessageStore()
        halt_reason = halting.MAX_SUPERSTEPS
        supersteps_run = 0
        injector = self._fault_injector
        if injector is not None:
            injector.bind(self._seed, self._num_workers)
        # Highest superstep that has completed its barrier; any execution
        # at or below it is a post-rollback re-run (marked in metrics).
        max_completed = -1

        if self._checkpoint_config is not None:
            write_checkpoint(
                self._checkpoint_config, 0, self.workers, self.aggregators, incoming
            )

        with Timer() as total_timer:
            superstep = 0
            while superstep < self._max_supersteps:
                if injector is not None:
                    injector.begin_superstep(superstep)
                failed_worker = self._pending_failures.pop(superstep, None)
                if failed_worker is None and injector is not None:
                    failed_worker = injector.barrier_crash(superstep)
                if failed_worker is not None:
                    if self._checkpoint_config is None:
                        raise WorkerFailure(failed_worker, superstep)
                    superstep, incoming = self._rollback(superstep, metrics)
                    continue
                num_vertices = self.num_vertices
                num_edges = self.num_edges
                master_ctx = MasterContext(
                    superstep, num_vertices, num_edges, self.aggregators
                )
                if self._master is not None:
                    run_master(self._master, master_ctx)
                self._notify("on_master_computed", superstep, master_ctx)
                if master_ctx.halted:
                    halt_reason = halting.MASTER_HALT
                    break
                if self._run_state is not None:
                    # Rebuild the interner/reverse-adjacency index if a
                    # prior barrier invalidated it — before steps are
                    # packaged, so forked children inherit it.
                    self._run_state.ensure_index(self.workers, self._locations)

                steps = [
                    self._make_step(
                        worker,
                        computation,
                        superstep,
                        incoming,
                        num_vertices,
                        num_edges,
                        collector_hooks,
                        fault=(
                            injector.step_fault(superstep, worker.worker_id)
                            if injector is not None
                            else None
                        ),
                    )
                    for worker, computation in zip(
                        self.workers, self._computations
                    )
                ]
                try:
                    if self._store is not None:
                        # A crashed earlier attempt may have left torn run
                        # chunks for this delivery superstep; re-execution
                        # must start from a clean directory. Freeze the
                        # store while steps run in other address spaces so
                        # forked children can never write the fork-shared
                        # spill area.
                        self._store.clear_runs(superstep + 1)
                        self._store.frozen = self._backend.transfers_state
                    try:
                        with Timer() as wall_timer:
                            outcomes = self._backend.run_superstep(steps)
                    finally:
                        if self._store is not None:
                            self._store.frozen = False
                    self._raise_if_step_failed(superstep, outcomes)

                    superstep_metrics = SuperstepMetrics(
                        superstep, recovered=superstep <= max_completed
                    )
                    superstep_metrics.wall_seconds = wall_timer.elapsed
                    for outcome in outcomes:
                        superstep_metrics.compute_seconds += outcome.elapsed
                        superstep_metrics.compute_calls += outcome.compute_calls
                        superstep_metrics.active_vertices += outcome.compute_calls
                        superstep_metrics.messages_sent += outcome.messages_sent
                        superstep_metrics.bytes_sent += outcome.bytes_sent
                        superstep_metrics.add_worker_row(
                            outcome.worker_id,
                            outcome.elapsed,
                            outcome.compute_calls,
                            outcome.messages_sent,
                            outcome.bytes_sent,
                        )
                        compute_errors.extend(outcome.compute_errors)

                    outgoing = self._barrier(
                        outcomes, superstep_metrics, payload_collectors
                    )
                    superstep_metrics.peak_memory_bytes = sample_peak_memory()
                    metrics.add_superstep(superstep_metrics)
                    self._notify("on_superstep_end", superstep, superstep_metrics)
                    supersteps_run = max(supersteps_run, superstep + 1)
                    max_completed = max(max_completed, superstep)

                    config = self._checkpoint_config
                    if config is not None and (superstep + 1) % config.every_n_supersteps == 0:
                        path = write_checkpoint(
                            config, superstep + 1, self.workers,
                            self.aggregators, outgoing,
                        )
                        if injector is not None:
                            injector.after_checkpoint(
                                config.filesystem, path, superstep + 1
                            )
                except InjectedFault:
                    # A planted machine failure escaped the superstep (a
                    # mid-step worker crash or a crash during a write).
                    # With checkpointing on, this is exactly the failure
                    # Pregel recovery exists for; without it, the job
                    # fails the way a real cluster loss would.
                    if self._checkpoint_config is None:
                        raise
                    superstep, incoming = self._rollback(superstep, metrics)
                    continue

                if halting.should_stop_after_barrier(self.workers, outgoing):
                    halt_reason = halting.CONVERGED
                    break
                incoming = outgoing
                superstep += 1
        metrics.total_seconds = total_timer.elapsed

        result = PregelResult(
            vertex_values=self._collect_values(),
            num_supersteps=supersteps_run,
            halt_reason=halt_reason,
            metrics=metrics,
            aggregator_values=self.aggregators.visible_snapshot(),
            compute_errors=compute_errors,
            recoveries=metrics.rollback_count,
        )
        self._notify("on_finish", result)
        return result

    def _raise_if_step_failed(self, superstep, outcomes):
        """Propagate a fatal step error deterministically.

        Concurrent backends run every step even when one fails, so several
        outcomes may carry errors; the lowest worker id wins regardless of
        completion order. Listeners get ``on_superstep_aborted`` first so
        Graft can persist exactly the captures a serial run would have
        produced (workers after the failing one never ran serially).
        """
        failed = None
        for outcome in outcomes:
            if outcome.error is not None:
                failed = outcome
                break
        if failed is None:
            return
        # The barrier will never run: free any shipped-but-unconsumed
        # shared-memory frames before propagating.
        for outcome in outcomes:
            release_frame(outcome.frame)
        self._notify("on_superstep_aborted", superstep, failed.worker_id)
        raise failed.error

    def _rollback(self, failed_superstep, metrics):
        """Recover from a failure at ``failed_superstep``; record the event.

        Restores state via :meth:`_recover`, accounts the rollback in the
        run metrics, and tells listeners (``on_rollback(failed, restored)``)
        so Graft can discard capture state belonging to the torn superstep
        and repair its trace files before re-execution appends to them.
        """
        restored_superstep, incoming, skipped = self._recover(failed_superstep)
        metrics.rollback_count += 1
        metrics.checkpoints_skipped += len(skipped)
        metrics.recovery_events.append({
            "failed_superstep": failed_superstep,
            "restored_superstep": restored_superstep,
            "skipped_checkpoints": skipped,
        })
        self._notify("on_rollback", failed_superstep, restored_superstep)
        return restored_superstep, incoming

    def _recover(self, failed_superstep):
        """Roll every worker back to the newest usable checkpoint.

        Candidates are tried newest-first; one that fails verification
        (torn write, injected corruption) is skipped and the next-older
        one is tried, so a single bad checkpoint file costs extra re-run
        supersteps rather than the whole job.
        """
        config = self._checkpoint_config
        skipped = []
        for path in checkpoint_candidates(
            config, before_superstep=failed_superstep
        ):
            try:
                checkpoint = read_checkpoint(config, path)
            except (CheckpointError, SimFsError) as exc:
                skipped.append({"path": path, "error": str(exc)})
                continue
            self._locations = restore_workers(self.workers, checkpoint)
            self.aggregators.restore_snapshot(checkpoint["aggregators"])
            if self._run_state is not None:
                # Restored adjacency may predate the current reverse
                # index; rebuild before the next columnar superstep.
                self._run_state.invalidate()
            return checkpoint["superstep"], checkpoint["incoming"], skipped
        raise PregelError(
            "no usable checkpoint to recover from"
            + (f" (skipped {len(skipped)} corrupt candidate(s))" if skipped else "")
        )

    def _barrier(self, outcomes, superstep_metrics, payload_collectors):
        """Reduce step outcomes in worker-id order.

        Every reduction here is a deterministic fold over ``outcomes``
        (already ordered by worker id): absorb transferred state, merge
        grouped outboxes, canonicalize inbox order, combine, apply
        mutations, fold aggregator partials. No step result is consumed in
        completion order, which is what makes the barrier
        backend-independent.
        """
        if self._store is not None:
            return self._spill_barrier(
                outcomes, superstep_metrics, payload_collectors
            )
        if self._columnar:
            return self._columnar_barrier(
                outcomes, superstep_metrics, payload_collectors
            )
        if self._backend.transfers_state:
            for outcome in outcomes:
                worker = self.workers[outcome.worker_id]
                worker.values, worker.edges, worker.halted = outcome.state
                for listener, payload in zip(payload_collectors, outcome.payloads):
                    listener.absorb_step_payload(outcome.worker_id, payload)
        outgoing = MessageStore()
        for outcome in outcomes:
            outgoing.merge_grouped(outcome.outbox)
        outgoing.canonicalize()
        if self._delivery_schedule is not None:
            # graft-san: re-open the Pregel model's delivery-order freedom.
            # Runs in the parent over the canonicalized store, so the
            # permutation is a pure function of (seed, schedule, superstep,
            # target) — identical across backends and worker counts. The
            # messages delivered here are consumed one superstep later.
            superstep_metrics.inboxes_permuted = (
                self._delivery_schedule.permute_store(
                    outgoing, superstep_metrics.superstep + 1
                )
            )
        if self._combiner is not None:
            superstep_metrics.messages_combined = outgoing.combine(self._combiner)
        self._apply_mutations(outcomes, outgoing)
        for outcome in outcomes:
            self.aggregators.merge_partials(outcome.agg_partials)
        self.aggregators.barrier()
        return outgoing

    def _columnar_barrier(self, outcomes, superstep_metrics, payload_collectors):
        """The barrier's columnar twin: absorb frames, keep messages packed.

        Same reductions, same worker-id order. Messages stay as packed
        columns in a :class:`ColumnarMessageStore` unless this barrier
        must mutate the graph or drop inboxes, in which case the store is
        materialized to envelopes first (see ``docs/columnar.md`` for the
        fallback rules).
        """
        run_state = self._run_state
        transfers = self._backend.transfers_state
        store = ColumnarMessageStore(run_state)
        superstep_metrics.transport = "columnar"
        any_dirty = False
        for outcome in outcomes:
            if transfers:
                blob = self._transport.retrieve(outcome.frame)
                superstep_metrics.transport_bytes += len(blob)
                frame = parse_frame(blob, run_state.interner)
                superstep_metrics.transport_batches += frame.batches
                superstep_metrics.pickle_fallbacks += frame.pickle_fallbacks
                worker = self.workers[outcome.worker_id]
                if frame.values is not None:
                    worker.values = frame.values
                if frame.halted is not None:
                    worker.halted = frame.halted
                if frame.edges is not None:
                    worker.edges = frame.edges
                any_dirty |= frame.edges_dirty
                store.absorb_frame(frame)
                for listener, payload in zip(payload_collectors, outcome.payloads):
                    listener.absorb_step_payload(outcome.worker_id, payload)
            else:
                outbox = outcome.outbox
                superstep_metrics.transport_batches += outbox.batch_count()
                any_dirty |= self.workers[outcome.worker_id].edges_dirty
                store.absorb_outbox(outcome.worker_id, outbox)
        if any_dirty:
            # In-place adjacency edits: the reverse index is stale for the
            # *next* superstep (this superstep's compact broadcasts came
            # only from clean workers, so expanding them below is safe).
            run_state.invalidate()
        mutating = any(
            outcome.add_vertex_requests or outcome.remove_vertex_requests
            for outcome in outcomes
        )
        if self._combiner is not None:
            # Folds run on the packed value columns; the result is one
            # envelope per inbox, so the combined store is an envelope
            # store and the mutation logic below needs no columnar cases.
            outgoing, eliminated = store.combine_into(self._combiner)
            superstep_metrics.messages_combined = eliminated
            self._apply_mutations(outcomes, outgoing)
            if mutating:
                run_state.invalidate()
        else:
            missing = store.missing_targets(self._locations)
            if mutating or (missing and self._on_message_to_missing == "drop"):
                # Graph-mutating barrier (or inbox drops): materialize to
                # envelopes while the index still matches emit-time
                # adjacency, then mutate freely.
                outgoing = store.to_message_store()
                self._apply_mutations(outcomes, outgoing)
                run_state.invalidate()
            else:
                outgoing = store
                if missing:
                    # Pure message-driven creation (Giraph's default
                    # resolver): new vertices have no edges, so the index
                    # stays valid and messages stay packed.
                    for target in sorted(missing, key=repr):
                        worker_index = self._partitioner.worker_for(target)
                        default = self._computations[
                            worker_index
                        ].default_vertex_value(target)
                        self._create_vertex(target, default)
        for outcome in outcomes:
            self.aggregators.merge_partials(outcome.agg_partials)
        self.aggregators.barrier()
        return outgoing

    def _spill_barrier(self, outcomes, superstep_metrics, payload_collectors):
        """The barrier's out-of-core twin: absorb pages, hand off runs.

        Same reductions in the same worker-id order as the in-memory
        barrier. Messages were already routed into sorted per-partition
        run files during the steps (canonicalization is the merge order
        of the runs, see :mod:`repro.pregel.store.runs`); combining
        happens lazily when the next superstep loads each partition, so
        the eliminations reported here were accounted by *this*
        superstep's loads.
        """
        store = self._store
        transfers = self._backend.transfers_state
        superstep = superstep_metrics.superstep
        superstep_metrics.transport = "spill"
        routed = 0
        combined = 0
        suspects = set()
        suspect_counts = {}
        for outcome in outcomes:
            if transfers:
                shipped = outcome.state
                for partition_id in sorted(shipped["pages"]):
                    values, edges, halted = shipped["pages"][partition_id]
                    store.replace_partition(partition_id, values, edges, halted)
                for path, data in shipped["runs"]:
                    store.install_run_file(path, data)
                routed += shipped["routed"]
                for target, count in shipped["suspect_counts"].items():
                    suspect_counts[target] = (
                        suspect_counts.get(target, 0) + count
                    )
                suspects |= shipped["suspects"]
                combined += shipped["messages_combined"]
                for listener, payload in zip(
                    payload_collectors, outcome.payloads
                ):
                    listener.absorb_step_payload(outcome.worker_id, payload)
            else:
                worker = self.workers[outcome.worker_id]
                router = worker.router
                if router is not None:
                    routed += router.count
                    for target, count in router.suspect_counts.items():
                        suspect_counts[target] = (
                            suspect_counts.get(target, 0) + count
                        )
                    suspects |= router.suspects
                combined += worker.messages_combined
        superstep_metrics.messages_combined = combined
        outgoing = store.message_store(
            superstep + 1, total_messages=routed, combiner=self._combiner
        )
        self._apply_spill_mutations(
            outcomes, outgoing, suspects, suspect_counts
        )
        for outcome in outcomes:
            self.aggregators.merge_partials(outcome.agg_partials)
        self.aggregators.barrier()
        # This superstep's inbox runs are fully consumed; the next
        # rollback restores messages from a checkpoint, never from here.
        store.clear_runs(superstep)
        counters = store.counters()
        before = self._store_counters or counters
        superstep_metrics.store_bytes_spilled = (
            counters["bytes_spilled"] - before["bytes_spilled"]
        )
        superstep_metrics.store_bytes_loaded = (
            counters["bytes_loaded"] - before["bytes_loaded"]
        )
        superstep_metrics.page_cache_hits = (
            counters["page_hits"] - before["page_hits"]
        )
        superstep_metrics.page_cache_misses = (
            counters["page_misses"] - before["page_misses"]
        )
        self._store_counters = counters
        superstep_metrics.partitions_resident = store.resident_partitions()
        return outgoing

    def _apply_spill_mutations(self, outcomes, outgoing, suspects,
                               suspect_counts):
        """Removals, then additions, then message-driven vertex creation.

        The resolver's work list is built incrementally: routers record
        emit-time suspects (targets not in ``_locations`` when the message
        was sent); vertices *removed at this barrier* passed that check,
        so their in-flight messages are counted with a run scan of just
        their partitions. The re-check against ``_locations`` below then
        sees the post-mutation graph, exactly like the in-memory
        ``missing_targets`` scan.
        """
        removed = []
        for outcome in outcomes:
            for vertex_id in outcome.remove_vertex_requests:
                location = self._locations.pop(vertex_id, None)
                if location is not None:
                    self.workers[location].remove_vertex(vertex_id)
                    removed.append(vertex_id)
        for outcome in outcomes:
            for vertex_id, value in outcome.add_vertex_requests:
                if vertex_id not in self._locations:
                    self._create_vertex(vertex_id, value)
        removed_missing = [
            vertex_id for vertex_id in removed
            if vertex_id not in self._locations
        ]
        if removed_missing:
            for target, count in outgoing.count_targets(
                self._partitioner, removed_missing
            ).items():
                suspects.add(target)
                suspect_counts[target] = suspect_counts.get(target, 0) + count
        missing = sorted(
            (target for target in suspects if target not in self._locations),
            key=repr,
        )
        if self._on_message_to_missing == "create":
            for target in missing:
                worker_index = self._partitioner.worker_for(target)
                default = self._computations[
                    worker_index
                ].default_vertex_value(target)
                self._create_vertex(target, default)
        else:
            for target in missing:
                outgoing.drop_target(target, suspect_counts.get(target, 0))

    def _apply_mutations(self, outcomes, outgoing):
        """Removals, then additions, then message-driven vertex creation."""
        for outcome in outcomes:
            for vertex_id in outcome.remove_vertex_requests:
                location = self._locations.pop(vertex_id, None)
                if location is not None:
                    self.workers[location].remove_vertex(vertex_id)
        for outcome in outcomes:
            for vertex_id, value in outcome.add_vertex_requests:
                if vertex_id not in self._locations:
                    self._create_vertex(vertex_id, value)
        # Repr-sorted so creation order — and therefore compute order on
        # the owning worker — is independent of partitioning and of the
        # columnar/envelope transport choice.
        missing = sorted(
            outgoing.missing_targets(self._locations), key=repr
        )
        if self._on_message_to_missing == "create":
            # Giraph's default vertex resolver: a message to a missing id
            # creates the vertex. The "drop" policy silently discards such
            # messages instead (the other standard resolver behaviour).
            for target in missing:
                worker_index = self._partitioner.worker_for(target)
                default = self._computations[worker_index].default_vertex_value(
                    target
                )
                self._create_vertex(target, default)
        else:
            for target in missing:
                outgoing.drop_inbox(target)

    def _create_vertex(self, vertex_id, value):
        worker_index = self._partitioner.worker_for(vertex_id)
        self.workers[worker_index].load_vertex(vertex_id, value, {})
        self._locations[vertex_id] = worker_index
        if self._run_state is not None:
            self._run_state.note_vertex_added(vertex_id)

    def _collect_values(self):
        if self._store is not None:
            return SpilledResultValues(self.workers, dict(self._locations))
        values = {}
        for worker in self.workers:
            values.update(worker.vertex_values())
        return values


def run_computation(computation_factory, graph, **engine_kwargs):
    """One-shot convenience: build an engine, run it, return the result.

    >>> from repro.pregel import Computation
    >>> from repro.graph import GraphBuilder
    >>> class Noop(Computation):
    ...     def compute(self, ctx, messages):
    ...         ctx.vote_to_halt()
    >>> g = GraphBuilder().vertices(1, 2).build()
    >>> run_computation(Noop, g).num_supersteps
    1
    """
    return PregelEngine(computation_factory, graph, **engine_kwargs).run()
