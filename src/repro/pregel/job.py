"""Giraph-style jobs: read the graph from the DFS, write results back.

A real Giraph job doesn't receive a Python object — it reads vertices from
an input format on HDFS and writes final vertex values back to an output
directory. :func:`run_job` reproduces that shape over the simulated file
system, so the whole lifecycle (input file → computation → output files,
one per worker) can be exercised and tested, with or without Graft.
"""

from dataclasses import dataclass

from repro.common.serialization import default_codec
from repro.graph.io import read_adjacency_simfs
from repro.pregel.engine import PregelEngine
from repro.simfs.writers import LineWriter


@dataclass
class JobResult:
    """Outcome of a DFS-to-DFS job."""

    result: object           # the PregelResult
    output_directory: str
    output_files: list

    def summary(self):
        return (
            f"{self.result.summary()}; output in {self.output_directory} "
            f"({len(self.output_files)} part files)"
        )


def write_output(filesystem, directory, workers, codec=None):
    """Write each worker's final vertex values to ``part-<worker>.out``.

    One line per vertex: ``<id json>\\t<value json>`` — the moral
    equivalent of Giraph's ``IdWithValueTextOutputFormat``.
    """
    codec = codec or default_codec
    paths = []
    for worker in workers:
        path = f"{directory}/part-{worker.worker_id:05d}.out"
        with LineWriter(filesystem, path) as writer:
            for vertex_id, value in worker.vertex_values():
                writer.write_line(f"{codec.dumps(vertex_id)}\t{codec.dumps(value)}")
        paths.append(path)
    return paths


def read_output(filesystem, directory, codec=None):
    """Read a job's output directory back into ``{vertex_id: value}``."""
    codec = codec or default_codec
    values = {}
    for path in filesystem.glob_files(directory, suffix=".out"):
        for line in filesystem.read_lines(path):
            id_token, _sep, value_token = line.partition("\t")
            values[codec.loads(id_token)] = codec.loads(value_token)
    return values


def run_job(
    filesystem,
    input_path,
    output_directory,
    computation_factory,
    directed=True,
    **engine_kwargs,
):
    """Run a computation DFS-to-DFS, like submitting a Giraph job.

    Reads an adjacency-list file from ``input_path`` on ``filesystem``,
    runs the computation, writes per-worker part files under
    ``output_directory``, and returns a :class:`JobResult`.

    >>> from repro.simfs import SimFileSystem
    >>> from repro.pregel import Computation
    >>> class Halt(Computation):
    ...     def compute(self, ctx, messages):
    ...         ctx.vote_to_halt()
    >>> fs = SimFileSystem()
    >>> fs.write_text("/in.adj", "1\\t5\\t2:\\n2\\t6\\t\\n")
    >>> job = run_job(fs, "/in.adj", "/out", Halt)
    >>> read_output(fs, "/out") == {1: 5, 2: 6}
    True
    """
    graph = read_adjacency_simfs(filesystem, input_path, directed=directed)
    engine = PregelEngine(computation_factory, graph, **engine_kwargs)
    result = engine.run()
    output_files = write_output(filesystem, output_directory, engine.workers)
    return JobResult(
        result=result,
        output_directory=output_directory,
        output_files=output_files,
    )
