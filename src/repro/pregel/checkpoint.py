"""Checkpointing and failure recovery (Pregel's fault-tolerance model).

Pregel checkpoints worker state to the distributed file system at
user-chosen superstep intervals; when a worker fails, the whole computation
rolls back to the last checkpoint and re-executes from there. Because this
engine derives all randomness from ``(run_seed, vertex_id, superstep)``,
re-execution after recovery is bit-identical to an undisturbed run — which
the tests assert.

A checkpoint stores, per worker: vertex values, adjacency, and halt flags;
plus the aggregator visible-state and the messages in flight toward the
next superstep. Everything goes through the trace codec, so checkpoints
are text files on the simulated DFS like Graft's traces.
"""

import hashlib
from dataclasses import dataclass

from repro.common.errors import CheckpointError, PregelError
from repro.common.serialization import default_codec
from repro.pregel.messages import Envelope, MessageStore
from repro.simfs.writers import append_retrying

#: First line of every checkpoint file: magic + integrity header. Reads
#: verify the digest before trusting the payload, so a corrupted (or torn)
#: checkpoint is detected and recovery falls back to an older one instead
#: of restoring garbage state. Header-less files (written before this
#: format) still load, unverified.
CHECKPOINT_MAGIC = "#CKPT1"


@dataclass(frozen=True)
class CheckpointConfig:
    """Where and how often to checkpoint.

    ``every_n_supersteps``: a checkpoint is written after the barrier of
    each superstep ``s`` with ``(s + 1) % every_n_supersteps == 0``, plus
    an initial checkpoint before superstep 0.
    """

    filesystem: object
    every_n_supersteps: int = 5
    directory: str = "/checkpoints"

    def __post_init__(self):
        if self.every_n_supersteps <= 0:
            raise PregelError("every_n_supersteps must be positive")

    def path_for(self, superstep):
        return f"{self.directory}/superstep-{superstep:06d}.ckpt"


class WorkerFailure(PregelError):
    """A simulated machine failure of one worker at a superstep boundary."""

    def __init__(self, worker_id, superstep):
        super().__init__(
            f"worker {worker_id} failed at the start of superstep {superstep}"
        )
        self.worker_id = worker_id
        self.superstep = superstep


def _worker_payload(worker):
    """One worker's state via the store-agnostic :meth:`Worker.iter_state`.

    Spilled workers stream their pages through the same view, so the
    checkpoint format is identical whichever plane holds the vertices.
    """
    values = []
    edges = []
    halted = []
    for vertex_id, value, edge_map, halt_flag in worker.iter_state():
        values.append([vertex_id, value])
        edges.append([vertex_id, list(edge_map.items())])
        halted.append([vertex_id, halt_flag])
    return {
        "worker_id": worker.worker_id,
        "values": values,
        "edges": edges,
        "halted": halted,
    }


def _iter_messages(incoming):
    """In-flight ``(source, target, value)`` triples in delivery order."""
    iterator = getattr(incoming, "iter_checkpoint_messages", None)
    if iterator is not None:
        return iterator()
    # Stores without the hook (e.g. the columnar store) expose the
    # classic targets()/inbox() protocol; the inbox key is the
    # authoritative target (shared broadcast envelopes carry a
    # placeholder in their target field).
    return (
        (envelope.source, target, envelope.value)
        for target in incoming.targets()
        for envelope in incoming.inbox(target)
    )


def write_checkpoint(config, superstep, workers, aggregators, incoming, codec=None):
    """Serialize the full engine state for resuming at ``superstep``."""
    codec = codec or default_codec
    payload = {
        "superstep": superstep,
        "aggregators": aggregators.visible_snapshot(),
        "workers": [_worker_payload(worker) for worker in workers],
        "messages": [
            [source, target, value]
            for source, target, value in _iter_messages(incoming)
        ],
    }
    body = codec.dumps(payload)
    digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
    path = config.path_for(superstep)
    # create + retrying append: a transient fs error mid-write is retried
    # from a fresh empty file, so no half-old half-new content can exist.
    config.filesystem.create(path, overwrite=True)
    append_retrying(
        config.filesystem, path, f"{CHECKPOINT_MAGIC} sha256={digest}\n{body}"
    )
    return path


def read_checkpoint(config, path, codec=None):
    """Load a checkpoint payload back into plain engine-state structures.

    Raises :class:`~repro.common.errors.CheckpointError` when the file is
    corrupt: undecodable bytes, a checksum mismatch against the integrity
    header, or a payload that no longer parses. Recovery treats that as
    "this checkpoint does not exist" and falls back to an older one.
    """
    codec = codec or default_codec
    try:
        text = config.filesystem.read_bytes(path).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CheckpointError(f"checkpoint {path!r} is not text: {exc}") from exc
    if text.startswith(CHECKPOINT_MAGIC):
        header, sep, body = text.partition("\n")
        if not sep:
            raise CheckpointError(f"checkpoint {path!r} truncated after header")
        expected = None
        for token in header.split()[1:]:
            if token.startswith("sha256="):
                expected = token[len("sha256="):]
        if expected is None:
            raise CheckpointError(f"checkpoint {path!r} header has no digest")
        actual = hashlib.sha256(body.encode("utf-8")).hexdigest()
        if actual != expected:
            raise CheckpointError(
                f"checkpoint {path!r} fails its checksum "
                f"(expected {expected[:12]}..., got {actual[:12]}...)"
            )
    else:
        body = text  # pre-header checkpoint: load unverified
    try:
        payload = codec.loads(body)
    except Exception as exc:  # noqa: BLE001 - any decode failure is corruption
        raise CheckpointError(
            f"checkpoint {path!r} payload unreadable: {exc}"
        ) from exc
    if not isinstance(payload, dict) or not (
        {"superstep", "aggregators", "workers", "messages"} <= set(payload)
    ):
        raise CheckpointError(f"checkpoint {path!r} is missing required keys")
    store = MessageStore()
    for source, target, value in payload["messages"]:
        store.deliver(Envelope(source=source, target=target, value=value))
    return {
        "superstep": payload["superstep"],
        "aggregators": payload["aggregators"],
        "workers": payload["workers"],
        "incoming": store,
    }


def checkpoint_candidates(config, before_superstep=None):
    """Checkpoint paths newest-first, optionally only those <= a superstep.

    Recovery walks this list and restores from the first checkpoint that
    passes verification, so one corrupt file costs one fallback step, not
    the whole job.
    """
    files = config.filesystem.glob_files(config.directory, suffix=".ckpt")
    if before_superstep is not None:
        files = [
            path
            for path in files
            if _superstep_of(path) <= before_superstep
        ]
    return sorted(files, key=_superstep_of, reverse=True)


def latest_checkpoint_path(config, before_superstep=None):
    """The newest checkpoint file, optionally only those <= a superstep."""
    files = checkpoint_candidates(config, before_superstep)
    if not files:
        raise PregelError("no checkpoint available to recover from")
    return files[0]


def _superstep_of(path):
    name = path.rsplit("/", 1)[-1]
    return int(name.replace("superstep-", "").replace(".ckpt", ""))


def restore_workers(workers, checkpoint):
    """Overwrite live worker state from a checkpoint payload."""
    by_id = {worker.worker_id: worker for worker in workers}
    locations = {}
    for worker_state in checkpoint["workers"]:
        worker = by_id[worker_state["worker_id"]]
        values = dict(worker_state["values"])
        worker.restore_state(
            values,
            {
                vertex_id: dict(edge_map)
                for vertex_id, edge_map in worker_state["edges"]
            },
            dict(worker_state["halted"]),
        )
        for vertex_id in values:
            locations[vertex_id] = worker.worker_id
    return locations
