"""Run metrics: what the benchmark harness measures.

The paper's performance section reports total run time with and without
Graft, plus capture counts. :class:`RunMetrics` records wall-clock time and
per-superstep counters so overhead and its sources (extra compute work,
trace bytes) are all observable.

With the pluggable execution backends, each superstep distinguishes
*wall-clock* time (barrier to barrier, as a user experiences it) from
*aggregate compute* time (the sum of every worker's step time, as the
cluster pays for it). Their ratio is the superstep's parallelism
efficiency: 1.0 means perfectly serial execution, ``num_workers`` means
ideal speedup.
"""

import tracemalloc
from dataclasses import dataclass, field, fields

from repro.common.timing import format_duration


def sample_peak_memory():
    """Best-available peak-resident-bytes reading for this process.

    When :mod:`tracemalloc` is tracing (the scale bench turns it on), the
    peak since the last sample is returned and the peak counter reset, so
    successive calls yield genuine per-superstep peaks of Python-heap
    allocations. Otherwise falls back to ``ru_maxrss`` — the OS-reported
    lifetime high-water mark of the whole process, which is monotonic
    across supersteps and includes the interpreter itself.
    """
    if tracemalloc.is_tracing():
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        return peak
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return 0
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    import sys

    scale = 1 if sys.platform == "darwin" else 1024
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * scale


@dataclass
class SuperstepMetrics:
    """Counters for one superstep across all workers."""

    superstep: int
    active_vertices: int = 0
    compute_calls: int = 0
    messages_sent: int = 0
    messages_combined: int = 0
    bytes_sent: int = 0
    compute_seconds: float = 0.0
    wall_seconds: float = 0.0
    #: True when this row re-executes a superstep after a rollback (the
    #: superstep had already completed once before a failure).
    recovered: bool = False
    #: Inboxes whose delivery order a PermutationSchedule changed at this
    #: superstep's barrier (0 unless a graft-san run is active).
    inboxes_permuted: int = 0
    #: Data plane that carried this superstep's messages:
    #: ``"columnar"`` (packed batches) or ``"envelope"`` (object lists).
    transport: str = "envelope"
    #: Frame bytes shipped across process boundaries at the barrier
    #: (0 under same-address-space backends — nothing is copied).
    transport_bytes: int = 0
    #: Packed column batches carried by the columnar plane.
    transport_batches: int = 0
    #: Columns that degraded to the pickled-object fallback.
    pickle_fallbacks: int = 0
    #: Peak resident bytes observed at this superstep's barrier: the
    #: per-superstep tracemalloc peak when tracing is on, otherwise the
    #: process-lifetime ``ru_maxrss`` high-water mark (monotonic).
    peak_memory_bytes: int = 0
    #: Vertex-page bytes written to / read from the spill filesystem this
    #: superstep (0 unless ``store="spill"``).
    store_bytes_spilled: int = 0
    store_bytes_loaded: int = 0
    #: Page-cache accounting for this superstep's partition acquisitions.
    page_cache_hits: int = 0
    page_cache_misses: int = 0
    #: Partition pages resident in memory when the barrier completed.
    partitions_resident: int = 0
    #: Per-worker breakdown of this superstep: one
    #: ``[worker_id, compute_seconds, compute_calls, messages_sent,
    #: bytes_sent]`` row per worker, in worker-id order. This is what the
    #: debug server's worker-skew timeline is computed from.
    worker_rows: list = field(default_factory=list)

    def add_worker_row(self, worker_id, compute_seconds, compute_calls,
                       messages_sent, bytes_sent):
        self.worker_rows.append(
            [worker_id, compute_seconds, compute_calls, messages_sent,
             bytes_sent]
        )

    @property
    def compute_skew(self):
        """Max worker compute time over the mean (1.0 = perfectly balanced).

        None when per-worker rows are missing or nothing was timed.
        """
        times = [row[1] for row in self.worker_rows]
        if not times:
            return None
        mean = sum(times) / len(times)
        if mean <= 0.0:
            return None
        return max(times) / mean

    @property
    def page_cache_hit_rate(self):
        """Hit fraction of this superstep's page acquisitions (None if none)."""
        total = self.page_cache_hits + self.page_cache_misses
        if total == 0:
            return None
        return self.page_cache_hits / total

    @property
    def parallel_efficiency(self):
        """Aggregate compute seconds per wall-clock second.

        1.0 = serial; approaches the worker count under ideal parallel
        speedup. None when the superstep was too fast to time.
        """
        if self.wall_seconds <= 0.0:
            return None
        return self.compute_seconds / self.wall_seconds

    def row(self):
        efficiency = self.parallel_efficiency
        parallel = (
            f" parallel={efficiency:.2f}x" if efficiency is not None else ""
        )
        recovered = " [recovered]" if self.recovered else ""
        memory = ""
        if self.peak_memory_bytes:
            memory = f" mem={self.peak_memory_bytes}"
        spill = ""
        if self.store_bytes_spilled or self.store_bytes_loaded:
            hit_rate = self.page_cache_hit_rate
            cache = f" cache={hit_rate:.0%}" if hit_rate is not None else ""
            spill = (
                f" spilled={self.store_bytes_spilled}"
                f" loaded={self.store_bytes_loaded}{cache}"
                f" resident={self.partitions_resident}"
            )
        return (
            f"superstep {self.superstep:>4}: active={self.active_vertices:>8} "
            f"msgs={self.messages_sent:>9} combined={self.messages_combined:>8} "
            f"bytes={self.bytes_sent:>11} "
            f"transport={self.transport} "
            f"time={format_duration(self.compute_seconds)}{parallel}"
            f"{memory}{spill}{recovered}"
        )


@dataclass
class RunMetrics:
    """Aggregated counters for one whole run."""

    supersteps: list = field(default_factory=list)
    total_seconds: float = 0.0
    #: How many times the engine rolled back to a checkpoint.
    rollback_count: int = 0
    #: How many superstep executions were re-runs after a rollback.
    recovered_supersteps: int = 0
    #: Checkpoint files skipped during recovery because they failed
    #: verification (corrupt/torn).
    checkpoints_skipped: int = 0
    #: One dict per rollback: failed/restored supersteps plus any corrupt
    #: checkpoints that had to be skipped on the way down.
    recovery_events: list = field(default_factory=list)

    def add_superstep(self, metrics):
        self.supersteps.append(metrics)
        if metrics.recovered:
            self.recovered_supersteps += 1

    @property
    def num_supersteps(self):
        return len(self.supersteps)

    @property
    def total_messages(self):
        return sum(s.messages_sent for s in self.supersteps)

    @property
    def total_compute_calls(self):
        return sum(s.compute_calls for s in self.supersteps)

    @property
    def total_bytes_sent(self):
        return sum(s.bytes_sent for s in self.supersteps)

    @property
    def total_messages_combined(self):
        return sum(s.messages_combined for s in self.supersteps)

    @property
    def total_inboxes_permuted(self):
        return sum(s.inboxes_permuted for s in self.supersteps)

    @property
    def total_transport_bytes(self):
        return sum(s.transport_bytes for s in self.supersteps)

    @property
    def total_transport_batches(self):
        return sum(s.transport_batches for s in self.supersteps)

    @property
    def total_pickle_fallbacks(self):
        return sum(s.pickle_fallbacks for s in self.supersteps)

    @property
    def peak_memory_bytes(self):
        """Highest per-superstep peak observed across the run."""
        return max(
            (s.peak_memory_bytes for s in self.supersteps), default=0
        )

    @property
    def total_store_bytes_spilled(self):
        return sum(s.store_bytes_spilled for s in self.supersteps)

    @property
    def total_store_bytes_loaded(self):
        return sum(s.store_bytes_loaded for s in self.supersteps)

    @property
    def page_cache_hit_rate(self):
        """Run-wide page-cache hit fraction (None when nothing was paged)."""
        hits = sum(s.page_cache_hits for s in self.supersteps)
        misses = sum(s.page_cache_misses for s in self.supersteps)
        if hits + misses == 0:
            return None
        return hits / (hits + misses)

    @property
    def total_compute_seconds(self):
        return sum(s.compute_seconds for s in self.supersteps)

    @property
    def total_wall_seconds(self):
        return sum(s.wall_seconds for s in self.supersteps)

    @property
    def parallel_efficiency(self):
        """Run-wide compute-seconds / wall-seconds ratio (None if untimed)."""
        wall = self.total_wall_seconds
        if wall <= 0.0:
            return None
        return self.total_compute_seconds / wall

    def summary(self):
        efficiency = self.parallel_efficiency
        parallel = (
            f", parallelism {efficiency:.2f}x" if efficiency is not None else ""
        )
        recovery = ""
        if self.rollback_count:
            recovery = (
                f", {self.rollback_count} rollback(s) "
                f"({self.recovered_supersteps} supersteps re-executed)"
            )
        spill = ""
        if self.total_store_bytes_spilled or self.total_store_bytes_loaded:
            hit_rate = self.page_cache_hit_rate
            cache = (
                f", page-cache {hit_rate:.0%}" if hit_rate is not None else ""
            )
            spill = (
                f", spilled {self.total_store_bytes_spilled} bytes / "
                f"loaded {self.total_store_bytes_loaded} bytes{cache}, "
                f"peak memory {self.peak_memory_bytes} bytes"
            )
        return (
            f"{self.num_supersteps} supersteps, "
            f"{self.total_compute_calls} compute calls, "
            f"{self.total_messages} messages "
            f"({self.total_bytes_sent} bytes), "
            f"{format_duration(self.total_seconds)} total{parallel}{recovery}"
            f"{spill}"
        )

    def to_dict(self):
        return run_metrics_to_dict(self)


# -- serialization ------------------------------------------------------------
#
# The per-job ``metrics.json`` file (written next to the trace files at
# debug_run completion) is plain JSON: one dict per superstep row plus a
# totals summary. The debug server's profiler endpoints and ``repro trace
# stats --json`` both read this file, so runs can be profiled long after
# the process that executed them is gone.

_SUPERSTEP_FIELDS = tuple(f.name for f in fields(SuperstepMetrics))

#: RunMetrics totals surfaced in the summary block, recomputed on load so
#: a hand-edited rows list stays consistent with its summary.
_SUMMARY_PROPERTIES = (
    "num_supersteps",
    "total_compute_calls",
    "total_messages",
    "total_messages_combined",
    "total_bytes_sent",
    "total_compute_seconds",
    "total_wall_seconds",
    "parallel_efficiency",
    "total_inboxes_permuted",
    "total_transport_bytes",
    "total_transport_batches",
    "total_pickle_fallbacks",
    "peak_memory_bytes",
    "total_store_bytes_spilled",
    "total_store_bytes_loaded",
    "page_cache_hit_rate",
)


def superstep_metrics_to_dict(metrics):
    """One superstep row as a JSON-safe dict (field name -> value)."""
    row = {name: getattr(metrics, name) for name in _SUPERSTEP_FIELDS}
    row["parallel_efficiency"] = metrics.parallel_efficiency
    return row


def superstep_metrics_from_dict(row):
    """Rebuild a :class:`SuperstepMetrics` from its dict form.

    Unknown keys (derived values like ``parallel_efficiency``, or fields
    added by a newer writer) are ignored, so older readers stay compatible.
    """
    kwargs = {
        name: row[name] for name in _SUPERSTEP_FIELDS if name in row
    }
    return SuperstepMetrics(**kwargs)


def run_metrics_to_dict(metrics):
    """A whole run's metrics as the ``metrics.json`` document."""
    summary = {
        name: getattr(metrics, name) for name in _SUMMARY_PROPERTIES
    }
    summary["total_seconds"] = metrics.total_seconds
    summary["rollback_count"] = metrics.rollback_count
    summary["recovered_supersteps"] = metrics.recovered_supersteps
    summary["checkpoints_skipped"] = metrics.checkpoints_skipped
    return {
        "rows": [superstep_metrics_to_dict(s) for s in metrics.supersteps],
        "summary": summary,
        "summary_line": metrics.summary(),
        "recovery_events": list(metrics.recovery_events),
    }


def run_metrics_from_dict(payload):
    """Rebuild a :class:`RunMetrics` from a ``metrics.json`` document."""
    metrics = RunMetrics()
    for row in payload.get("rows", ()):
        metrics.add_superstep(superstep_metrics_from_dict(row))
    summary = payload.get("summary", {})
    metrics.total_seconds = summary.get("total_seconds", 0.0)
    metrics.rollback_count = summary.get("rollback_count", 0)
    metrics.checkpoints_skipped = summary.get("checkpoints_skipped", 0)
    metrics.recovery_events = list(payload.get("recovery_events", ()))
    # recovered_supersteps was re-derived from the rows' recovered flags.
    return metrics
